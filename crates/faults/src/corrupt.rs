//! Byte-level corruption of `COFB` binary snapshots.
//!
//! `coflow_workloads::binio::from_bin` promises typed
//! [`BinError`](coflow_workloads::binio::BinError)s — never a panic — on
//! arbitrary input. These helpers produce the corrupted inputs the chaos
//! suite feeds it; they are pure byte transforms with no I/O.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The first `keep` bytes of `bytes` (the classic torn write).
pub fn truncated(bytes: &[u8], keep: usize) -> Vec<u8> {
    bytes[..keep.min(bytes.len())].to_vec()
}

/// `bytes` with bit `bit % 8` of byte `idx % len` flipped.
pub fn flip_bit(bytes: &[u8], idx: usize, bit: u32) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let i = idx % out.len();
        out[i] ^= 1u8 << (bit % 8);
    }
    out
}

/// A seeded corruption: either a truncation at a random offset or one to
/// four random bit flips. Same `seed`, same damage.
pub fn seeded_corruption(bytes: &[u8], seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    if bytes.is_empty() {
        return Vec::new();
    }
    if rng.random_bool(0.5) {
        truncated(bytes, rng.random_range(0..bytes.len()))
    } else {
        let mut out = bytes.to_vec();
        for _ in 0..rng.random_range(1..5usize) {
            let i = rng.random_range(0..out.len());
            out[i] ^= 1u8 << rng.random_range(0..8u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_core::{Coflow, FlowSpec, Instance};
    use coflow_net::{topo, NodeId};
    use coflow_workloads::binio::{from_bin, to_bin, BinError};

    fn snapshot() -> Vec<u8> {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(NodeId(0), NodeId(1), 2.0, 0.0)],
            )],
        );
        to_bin(&inst).expect("serialize")
    }

    #[test]
    fn truncation_yields_typed_errors() {
        let bytes = snapshot();
        for keep in 0..bytes.len() {
            let err = from_bin(&truncated(&bytes, keep)).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    BinError::Truncated | BinError::Malformed(_) | BinError::BadMagic
                ),
                "keep {keep}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn magic_flip_is_bad_magic() {
        let bytes = snapshot();
        assert_eq!(
            from_bin(&flip_bit(&bytes, 0, 0)).unwrap_err(),
            BinError::BadMagic
        );
    }

    #[test]
    fn seeded_corruption_never_panics_and_is_deterministic() {
        let bytes = snapshot();
        for seed in 0..200 {
            let bad = seeded_corruption(&bytes, seed);
            assert_eq!(bad, seeded_corruption(&bytes, seed), "seed {seed}");
            // A flipped payload bit can decode to a different valid
            // instance; the contract under test is typed-error-or-valid,
            // never a panic.
            if let Ok(inst) = from_bin(&bad) {
                let _ = inst.flow_count();
            }
        }
    }
}
