//! The end-to-end chaos harness.
//!
//! [`chaos_run`] executes one seeded scenario: a degraded fat-tree (links
//! removed by [`drop_links`](crate::netfail::drop_links)), a small
//! generated workload, and the online engine running the budgeted
//! column-generation LP policy with a [`FaultPlan`](crate::plan::FaultPlan)
//! installed — forced singular factorizations, pricing outages, perturbed
//! duals — on top of whatever natural degeneracy the instance brings.
//!
//! The run is expected to *succeed anyway*: the solver's recovery ladder
//! and the engine's degradation ladder absorb every fault, so the harness
//! returns the checker verdict, per-flow completions, and the rendered
//! logical-clock trace for the suite to assert on (no panic, zero
//! violations, full completion, byte-identical traces across repeat runs
//! and thread counts).

use crate::netfail::drop_links;
use crate::plan::{FaultPlan, FaultPlanConfig};
use coflow_engine::{run, EngineConfig, LpOrder};
use coflow_lp::{Budget, SolverOptions};
use coflow_net::topo;
use coflow_workloads::gen::{generate, GenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Once;

/// One chaos scenario. Everything but `threads` is derived from `seed`,
/// so `(seed, 1)` and `(seed, 4)` run the *same* scenario on different
/// worker counts — the pairing the byte-diff assertions depend on.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Scenario seed: drives topology damage, the workload, and the
    /// fault plan.
    pub seed: u64,
    /// `SolverOptions::threads` for the LP policy.
    pub threads: usize,
}

/// What one chaos run produced.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Per-flow completion times (flat order).
    pub completions: Vec<f64>,
    /// Feasibility violations reported by `CircuitSchedule::check`.
    pub violations: usize,
    /// Epochs the degradation ladder had to degrade.
    pub degraded_epochs: usize,
    /// Epochs served by the solver-free fallback policy.
    pub fallback_policy_uses: usize,
    /// Faults the plan actually injected into the solver.
    pub faults_injected: u64,
    /// Bidirectional links removed from the fat-tree.
    pub links_removed: usize,
    /// The engine trace rendered as `coflow-trace/v1` JSONL (logical
    /// clock: byte-identical across runs and thread counts).
    pub trace_jsonl: String,
}

/// Forces `COFLOW_OBS_CLOCK=logical` for this process, once.
///
/// Recorders read the variable at construction, so call this before any
/// engine or solver runs (the harness calls it first thing). Process-wide
/// by design: the chaos suite's byte-diff assertions are meaningless under
/// the wall clock.
pub fn force_logical_clock() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::env::set_var("COFLOW_OBS_CLOCK", "logical"));
}

/// Runs one seeded chaos scenario to completion and reports what happened.
///
/// Never panics for any seed: that is the property under test.
pub fn chaos_run(cfg: &ChaosConfig) -> ChaosOutcome {
    force_logical_clock();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Scenario: a k=4 fat-tree missing 0-2 links, 3 coflows x 2 flows
    // arriving over time. Small on purpose — the suite runs hundreds of
    // these — but multi-epoch, so the ladder has standing plans to reuse.
    let (t, links_removed) = drop_links(
        &topo::fat_tree(4, 1.0),
        rng.random_range(0..3usize),
        cfg.seed,
    );
    let inst = generate(
        &t,
        &GenConfig {
            n_coflows: 3,
            width: 2,
            size_mean: 2.0,
            arrival_rate: 0.75,
            jitter_rate: 2.0,
            seed: cfg.seed ^ 0xC0F_F0D,
            ..Default::default()
        },
    );

    // Budgeted colgen LP: tight enough that budgets genuinely truncate on
    // some seeds, generous enough that clean solves stay optimal.
    let lp_cfg = coflow_core::circuit::lp_free::FreePathsLpConfig {
        solver: SolverOptions {
            threads: cfg.threads,
            budget: Budget {
                max_pivots: Some(400),
                max_colgen_rounds: Some(4),
                deadline: None,
            },
            ..SolverOptions::for_experiments()
        },
        ..Default::default()
    };
    let round_cfg = coflow_core::circuit::round_free::FreeRoundingConfig {
        seed: cfg.seed,
        ..Default::default()
    };
    let mut policy = LpOrder::colgen(lp_cfg, round_cfg);
    let plan = FaultPlan::new(FaultPlanConfig {
        seed: cfg.seed ^ 0xFA17,
        ..Default::default()
    });
    let counters = plan.counters();
    policy.set_fault_hook(Some(Box::new(plan)));

    let out = run(&inst, &mut policy, &EngineConfig::default());

    let routed = inst.with_paths(&out.paths);
    let violations = out.schedule.check(&routed, 1e-6, 1e-6).len();
    ChaosOutcome {
        completions: out.flow_completion.clone(),
        violations,
        degraded_epochs: out.engine.degraded_epochs,
        fallback_policy_uses: out.engine.fallback_policy_uses,
        faults_injected: counters.total(),
        links_removed,
        trace_jsonl: out.trace.render_jsonl(),
    }
}
