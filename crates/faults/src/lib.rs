//! # coflow-faults
//!
//! Deterministic fault injection for the LP → engine pipeline, and the
//! chaos harness that proves the pipeline survives it.
//!
//! The production crates expose the *hook points* (`coflow_lp::FaultHook`,
//! the engine's [`RecoveryPolicy`](coflow_engine::RecoveryPolicy) ladder);
//! this crate supplies the *faults*:
//!
//! * [`plan`] — [`plan::FaultPlan`], a seeded plan of solver faults
//!   (forced singular factorizations, pricing-oracle outages, perturbed
//!   duals) driven by the vendored xoshiro generator. Same seed, same
//!   fault sequence — at any [`SolverOptions::threads`] setting, because
//!   the solver consults hooks only at serial points.
//! * [`netfail`] — connectivity-preserving link removal on a
//!   [`Topology`](coflow_net::topo::Topology): whole bidirectional pairs
//!   disappear *before* instance generation, so every admitted flow is
//!   still routable and faults degrade capacity rather than strand work.
//! * [`corrupt`] — byte-level corruption of `COFB` binary snapshots, for
//!   pinning `coflow_workloads::binio`'s typed-error contract.
//! * [`chaos`] — [`chaos::chaos_run`]: one seeded end-to-end run of the
//!   online engine with budgets, the degradation ladder, and a
//!   [`plan::FaultPlan`] installed, returning the rendered logical-clock
//!   trace for byte-diffing across runs and thread counts.
//!
//! Everything here is std-only and deterministic; nothing in this crate is
//! linked into production configurations.
//!
//! [`SolverOptions::threads`]: coflow_lp::SolverOptions

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod corrupt;
pub mod netfail;
pub mod plan;

pub use chaos::{chaos_run, force_logical_clock, ChaosConfig, ChaosOutcome};
pub use netfail::drop_links;
pub use plan::{FaultCounters, FaultPlan, FaultPlanConfig};
