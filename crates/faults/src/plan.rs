//! Seeded fault plans: the [`coflow_lp::FaultHook`] implementation.
//!
//! A [`FaultPlan`] draws one random decision per hook consultation from a
//! seeded [`StdRng`]. Because the solver consults hooks only at serial
//! points (see `coflow_lp::fault`), the decision sequence is a pure
//! function of the seed and the solve sequence — independent of thread
//! count, wall-clock time, and allocation addresses. Injection totals are
//! published through a shared [`FaultCounters`] handle so the harness can
//! observe what fired after the plan has been boxed into the solver.

use coflow_lp::{ColgenFault, FaultHook};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs of a [`FaultPlan`]. Probabilities are per consultation; the
/// default mix fires often enough to exercise every recovery rung on a
/// multi-epoch run while leaving most solves clean.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlanConfig {
    /// RNG seed; the whole fault sequence is a function of it.
    pub seed: u64,
    /// Probability that a basis (re)factorization reports singular.
    pub p_singular: f64,
    /// Probability that a column-generation round aborts its pricing call
    /// (simulated oracle outage).
    pub p_abort_pricing: f64,
    /// Probability that a round's duals are perturbed before pricing.
    pub p_perturb_duals: f64,
    /// Relative magnitude of the dual perturbation when it fires.
    pub perturb_eps: f64,
    /// Probability that a firing singular fault extends into a *burst* of
    /// consecutive singular factorizations. A lone failure is absorbed by
    /// the solver's first recovery rung; only a burst long enough to
    /// defeat refactorize → repair → cold-restart (and the engine's
    /// same-epoch retry) ever reaches the degradation ladder.
    pub p_burst: f64,
    /// Burst length is drawn uniformly from `2..=max_burst`.
    pub max_burst: usize,
    /// Hard cap on total injected faults (`None` = unlimited). The RNG is
    /// still advanced once per consultation after the cap, so reaching it
    /// does not shift later draws.
    pub max_faults: Option<u64>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            p_singular: 0.08,
            p_abort_pricing: 0.08,
            p_perturb_duals: 0.20,
            perturb_eps: 1e-4,
            p_burst: 0.12,
            max_burst: 10,
            max_faults: None,
        }
    }
}

/// Shared injection totals, updated by the plan as faults fire. Atomics
/// only because [`FaultHook`] is `Sync`; all updates happen on the solver's
/// coordinating thread.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Factorizations forced singular.
    pub singular: AtomicU64,
    /// Pricing rounds aborted.
    pub aborts: AtomicU64,
    /// Dual vectors perturbed.
    pub perturbs: AtomicU64,
}

impl FaultCounters {
    /// Total faults injected so far.
    pub fn total(&self) -> u64 {
        self.singular.load(Ordering::Relaxed)
            + self.aborts.load(Ordering::Relaxed)
            + self.perturbs.load(Ordering::Relaxed)
    }
}

/// A deterministic, seeded schedule of solver faults.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    rng: StdRng,
    counters: Arc<FaultCounters>,
    /// Remaining forced-singular factorizations of an active burst.
    burst: usize,
}

impl FaultPlan {
    /// A plan drawing from `cfg.seed`.
    pub fn new(cfg: FaultPlanConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            counters: Arc::new(FaultCounters::default()),
            burst: 0,
        }
    }

    /// A handle to the injection totals, valid after the plan is boxed
    /// into the solver.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    fn exhausted(&self) -> bool {
        self.cfg
            .max_faults
            .is_some_and(|cap| self.counters.total() >= cap)
    }
}

impl FaultHook for FaultPlan {
    fn on_factorization(&mut self) -> bool {
        if self.burst > 0 {
            self.burst -= 1;
            if self.exhausted() {
                return false;
            }
            self.counters.singular.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Draw first so the cap never shifts subsequent decisions.
        let fire = self.rng.random_bool(self.cfg.p_singular);
        if fire && !self.exhausted() {
            if self.cfg.max_burst >= 2 && self.rng.random_bool(self.cfg.p_burst) {
                self.burst = self.rng.random_range(2..=self.cfg.max_burst) - 1;
            }
            self.counters.singular.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    fn on_colgen_round(&mut self, _round: usize) -> ColgenFault {
        let u: f64 = self.rng.random();
        if self.exhausted() {
            return ColgenFault::None;
        }
        if u < self.cfg.p_abort_pricing {
            self.counters.aborts.fetch_add(1, Ordering::Relaxed);
            ColgenFault::AbortPricing
        } else if u < self.cfg.p_abort_pricing + self.cfg.p_perturb_duals {
            self.counters.perturbs.fetch_add(1, Ordering::Relaxed);
            ColgenFault::PerturbDuals(self.cfg.perturb_eps)
        } else {
            ColgenFault::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence(seed: u64, n: usize) -> (Vec<bool>, Vec<ColgenFault>) {
        let mut p = FaultPlan::new(FaultPlanConfig {
            seed,
            ..Default::default()
        });
        let facts = (0..n).map(|_| p.on_factorization()).collect();
        let rounds = (0..n).map(|r| p.on_colgen_round(r)).collect();
        (facts, rounds)
    }

    #[test]
    fn same_seed_same_sequence() {
        assert_eq!(sequence(7, 64), sequence(7, 64));
    }

    #[test]
    fn seeds_decorrelate() {
        // 64 draws at p >= 0.08 per surface: identical sequences across
        // two seeds would be astronomically unlikely.
        assert_ne!(sequence(1, 64), sequence(2, 64));
    }

    #[test]
    fn counters_track_fired_faults() {
        let mut p = FaultPlan::new(FaultPlanConfig {
            seed: 3,
            p_singular: 1.0,
            p_burst: 0.0,
            ..Default::default()
        });
        let c = p.counters();
        for _ in 0..5 {
            assert!(p.on_factorization());
        }
        assert_eq!(c.singular.load(Ordering::Relaxed), 5);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn fault_cap_stops_injection_without_shifting_draws() {
        let cfg = FaultPlanConfig {
            seed: 9,
            p_singular: 1.0,
            p_abort_pricing: 1.0,
            p_perturb_duals: 0.0,
            p_burst: 0.0,
            max_faults: Some(2),
            ..Default::default()
        };
        let mut p = FaultPlan::new(cfg);
        assert!(p.on_factorization());
        assert!(p.on_factorization());
        // Cap reached: nothing more fires, on either surface.
        assert!(!p.on_factorization());
        assert_eq!(p.on_colgen_round(0), ColgenFault::None);
        assert_eq!(p.counters().total(), 2);

        // The capped plan's RNG consumed one draw per call all the same:
        // an uncapped twin agrees with it on every pre-cap decision.
        let mut q = FaultPlan::new(FaultPlanConfig {
            max_faults: None,
            ..cfg
        });
        assert!(q.on_factorization());
        assert!(q.on_factorization());
        assert!(q.on_factorization());
        assert_eq!(q.on_colgen_round(0), ColgenFault::AbortPricing);
    }

    #[test]
    fn bursts_force_consecutive_failures() {
        let mut p = FaultPlan::new(FaultPlanConfig {
            seed: 5,
            p_singular: 1.0,
            p_burst: 1.0,
            max_burst: 4,
            ..Default::default()
        });
        // The first fire always starts a burst (p_burst = 1) of length
        // 2..=4, so at least the next call must also fail — the pattern
        // that defeats a whole recovery ladder pass.
        assert!(p.on_factorization());
        assert!(p.on_factorization());
        assert!(p.counters().singular.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn zero_probabilities_are_inert() {
        let mut p = FaultPlan::new(FaultPlanConfig {
            seed: 11,
            p_singular: 0.0,
            p_abort_pricing: 0.0,
            p_perturb_duals: 0.0,
            ..Default::default()
        });
        for r in 0..32 {
            assert!(!p.on_factorization());
            assert_eq!(p.on_colgen_round(r), ColgenFault::None);
        }
        assert_eq!(p.counters().total(), 0);
    }
}
