//! Connectivity-preserving link removal.
//!
//! The [`Graph`](coflow_net::Graph) API deliberately has no edge removal
//! (flat edge ids are load-bearing everywhere), and zeroing a capacity
//! would starve any flow later routed across it — the engine would spin on
//! a flow that can never finish. So link failure is modeled *upstream*:
//! [`drop_links`] rebuilds the topology's graph without the removed
//! bidirectional pairs **before** instance generation, so admission sees
//! the degraded network and every generated flow is routable by
//! construction.

use coflow_net::topo::Topology;
use coflow_net::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Removes up to `count` bidirectional links from `topo`, chosen by a
/// seeded shuffle, skipping any removal that would disconnect the host
/// set. Returns the degraded topology (same node ids, same hosts, edges
/// renumbered in original order) and the number of links actually removed.
///
/// Determinism: same `topo`, `count`, and `seed` produce byte-identical
/// results.
pub fn drop_links(topo: &Topology, count: usize, seed: u64) -> (Topology, usize) {
    let g = &topo.graph;
    // Undirected pairs (a, b), a < b, in first-direction edge order. The
    // in-tree builders create links exclusively with `add_bidi_edge`, but
    // a stray one-way edge would simply never be a removal candidate.
    let mut pairs: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter_map(|e| {
            let (a, b) = g.endpoints(e);
            (a.index() < b.index() && g.find_edge(b, a).is_some()).then_some((a, b))
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);

    let mut removed: Vec<(NodeId, NodeId)> = Vec::with_capacity(count);
    for &cand in &pairs {
        if removed.len() == count {
            break;
        }
        removed.push(cand);
        if !hosts_connected(topo, &removed) {
            removed.pop();
        }
    }

    let mut out = Graph::new();
    for v in g.nodes() {
        match g.label(v) {
            Some(l) => out.add_labeled_node(l),
            None => out.add_node(),
        };
    }
    for e in g.edges() {
        let (s, d) = g.endpoints(e);
        let gone = removed
            .iter()
            .any(|&(a, b)| (s, d) == (a, b) || (s, d) == (b, a));
        if !gone {
            out.add_edge(s, d, g.capacity(e));
        }
    }
    let n = removed.len();
    (
        Topology {
            graph: out,
            hosts: topo.hosts.clone(),
            name: format!("{}-drop{n}", topo.name),
        },
        n,
    )
}

/// True when every host is reachable from the first host over the links
/// that survive `removed`. Links are symmetric (whole pairs are removed),
/// so single-source reachability covers all host pairs.
fn hosts_connected(topo: &Topology, removed: &[(NodeId, NodeId)]) -> bool {
    let g = &topo.graph;
    let Some(&start) = topo.hosts.first() else {
        return true;
    };
    let mut seen = vec![false; g.node_count()];
    let mut queue = vec![start];
    seen[start.index()] = true;
    while let Some(v) = queue.pop() {
        for &e in g.out_edges(v) {
            let (a, b) = g.endpoints(e);
            let gone = removed
                .iter()
                .any(|&(x, y)| (a, b) == (x, y) || (a, b) == (y, x));
            if gone {
                continue;
            }
            let w = g.edge_dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push(w);
            }
        }
    }
    topo.hosts.iter().all(|h| seen[h.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_net::topo;

    /// Counts surviving undirected links.
    fn undirected_links(t: &Topology) -> usize {
        let g = &t.graph;
        assert_eq!(g.edge_count() % 2, 0, "links stay paired");
        g.edge_count() / 2
    }

    #[test]
    fn removal_is_deterministic_and_paired() {
        let t = topo::fat_tree(4, 1.0);
        let (a, na) = drop_links(&t, 3, 42);
        let (b, nb) = drop_links(&t, 3, 42);
        assert_eq!(na, 3);
        assert_eq!(na, nb);
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(undirected_links(&a), undirected_links(&t) - 3);
        assert_eq!(a.name, "fat-tree(k=4)-drop3");
        // Node ids and hosts are untouched.
        assert_eq!(a.graph.node_count(), t.graph.node_count());
        assert_eq!(a.hosts, t.hosts);
    }

    #[test]
    fn hosts_stay_connected_under_heavy_removal() {
        let t = topo::fat_tree(4, 1.0);
        for seed in 0..20 {
            // Ask for far more removals than connectivity can spare; the
            // skip logic must keep every host reachable.
            let (d, n) = drop_links(&t, 40, seed);
            assert!(n > 0, "seed {seed}: some links must be removable");
            assert!(
                hosts_connected(&d, &[]),
                "seed {seed}: hosts disconnected after {n} removals"
            );
        }
    }

    #[test]
    fn line_refuses_any_cut() {
        // Every link of a line is a bridge between hosts: nothing can go.
        let t = topo::line(4, 1.0);
        let (d, n) = drop_links(&t, 2, 7);
        assert_eq!(n, 0);
        assert_eq!(d.graph.edge_count(), t.graph.edge_count());
    }

    #[test]
    fn zero_count_is_identity_on_edges() {
        let t = topo::fat_tree(4, 1.0);
        let (d, n) = drop_links(&t, 0, 1);
        assert_eq!(n, 0);
        assert_eq!(d.graph.edge_count(), t.graph.edge_count());
    }
}
