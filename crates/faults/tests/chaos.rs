//! The seeded chaos suite (the tentpole's acceptance property).
//!
//! For every seed: the faulted end-to-end run must not panic, must produce
//! a checker-clean schedule that completes every coflow, and must render a
//! byte-identical `coflow-trace/v1` JSONL trace when repeated — including
//! across solver thread counts (1 vs 4), because faults are injected only
//! at serial points.
//!
//! `COFLOW_CHAOS_SEEDS` overrides the seed count (default 200); the CI
//! `chaos` lane runs a quick subset, the default run is the full suite.
//! `COFLOW_CHAOS_TRACE_OUT=<path>` additionally writes every seed's trace
//! to one file so CI can byte-diff two independent *processes* on top of
//! the in-process repeat/thread-count identities asserted here.

use coflow_faults::{chaos_run, ChaosConfig};

fn seed_count() -> u64 {
    std::env::var("COFLOW_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(200)
}

/// Asserts the per-run survival properties and returns the outcome.
fn surviving_run(seed: u64, threads: usize) -> coflow_faults::ChaosOutcome {
    let out = chaos_run(&ChaosConfig { seed, threads });
    assert_eq!(
        out.violations, 0,
        "seed {seed} threads {threads}: infeasible schedule"
    );
    assert!(
        !out.completions.is_empty() && out.completions.iter().all(|&c| c.is_finite() && c > 0.0),
        "seed {seed} threads {threads}: incomplete flows {:?}",
        out.completions
    );
    assert!(
        !out.trace_jsonl.is_empty(),
        "seed {seed} threads {threads}: empty trace"
    );
    out
}

#[test]
fn seeded_suite_survives_and_replays_byte_identically() {
    let n = seed_count();
    let mut faults_total = 0u64;
    let mut degraded_total = 0usize;
    let mut drops_total = 0usize;
    let mut suite_trace = String::new();
    for seed in 0..n {
        let a = surviving_run(seed, 1);
        // Repeatability at the same thread count.
        let b = surviving_run(seed, 1);
        assert_eq!(
            a.trace_jsonl, b.trace_jsonl,
            "seed {seed}: trace differs between identical runs"
        );
        assert_eq!(
            a.completions, b.completions,
            "seed {seed}: nondeterministic run"
        );
        // Thread-count independence: same scenario on 4 workers.
        let c = surviving_run(seed, 4);
        assert_eq!(
            a.trace_jsonl, c.trace_jsonl,
            "seed {seed}: trace differs between 1 and 4 threads"
        );
        assert_eq!(
            a.completions, c.completions,
            "seed {seed}: schedule differs between 1 and 4 threads"
        );
        assert_eq!(a.faults_injected, c.faults_injected, "seed {seed}");
        faults_total += a.faults_injected;
        degraded_total += a.degraded_epochs;
        drops_total += a.links_removed;
        suite_trace.push_str(&a.trace_jsonl);
    }
    if let Ok(path) = std::env::var("COFLOW_CHAOS_TRACE_OUT") {
        std::fs::write(&path, &suite_trace)
            .unwrap_or_else(|e| panic!("writing suite trace to {path}: {e}"));
    }
    // The suite must actually exercise the machinery, not vacuously pass.
    assert!(faults_total > 0, "no faults injected across {n} seeds");
    assert!(drops_total > 0, "no links removed across {n} seeds");
    // Degraded epochs are seed-dependent (most faults are absorbed below
    // the engine); at full scale some seed must climb the ladder.
    if n >= 100 {
        assert!(degraded_total > 0, "ladder never engaged across {n} seeds");
    }
}
