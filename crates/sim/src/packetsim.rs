//! Discrete store-and-forward execution of packet schemes.
//!
//! Wraps the core greedy list scheduler with a scheme-level interface:
//! given per-packet paths and a global priority order, every edge forwards
//! its highest-priority waiting packet each step (§3's model: "each link
//! can serve at most one packet at a time").

use coflow_core::model::Instance;
use coflow_core::objective::{metrics, Metrics};
use coflow_core::order::Priority;
use coflow_core::packet::listsched::{list_schedule, PacketTask};
use coflow_core::schedule::PacketSchedule;
use coflow_net::Path;

/// Packet simulation result.
#[derive(Clone, Debug)]
pub struct PacketSimOutcome {
    /// The realized schedule (checkable).
    pub schedule: PacketSchedule,
    /// Per-packet completion times.
    pub flow_completion: Vec<f64>,
    /// Objective metrics.
    pub metrics: Metrics,
}

/// Simulates the packet scheme (`paths`, `order`) from step 0.
pub fn simulate_packets(instance: &Instance, paths: &[Path], order: &Priority) -> PacketSimOutcome {
    let nf = instance.flow_count();
    assert_eq!(paths.len(), nf);
    assert_eq!(order.len(), nf);
    let tasks: Vec<PacketTask> = instance
        .flows()
        .map(|(_, flat, spec)| PacketTask {
            path: paths[flat].clone(),
            release: spec.release.ceil() as u64,
        })
        .collect();
    let ranks = order.ranks();
    let moves = list_schedule(&instance.graph, &tasks, 0, &ranks);
    let schedule = PacketSchedule { packets: moves };
    let completion = schedule.completion_times(instance);
    let m = metrics(instance, &completion);
    PacketSimOutcome {
        schedule,
        flow_completion: completion,
        metrics: m,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::model::{Coflow, FlowSpec};
    use coflow_net::{paths, topo, NodeId};

    #[test]
    fn end_to_end_grid() {
        let t = topo::grid(3, 3, 1.0);
        let coflows: Vec<Coflow> = (0..8)
            .map(|i| {
                let s = t.hosts[i];
                let d = t.hosts[8 - i];
                Coflow::new(1.0, vec![FlowSpec::new(s, d, 1.0, 0.0)])
            })
            .filter(|c| c.flows[0].src != c.flows[0].dst)
            .collect();
        let inst = Instance::new(t.graph.clone(), coflows);
        let route: Vec<Path> = inst
            .flows()
            .map(|(_, _, s)| paths::bfs_shortest_path(&inst.graph, s.src, s.dst).unwrap())
            .collect();
        let out = simulate_packets(&inst, &route, &Priority::identity(inst.flow_count()));
        assert!(out.schedule.check(&inst).is_empty());
        assert!(out.metrics.makespan >= 4.0); // corner-to-corner needs 4 hops
    }

    #[test]
    fn priority_changes_who_waits() {
        let t = topo::line(3, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(2)).unwrap();
        let mk = || Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(2), 1.0, 0.0)]);
        let inst = Instance::new(t.graph.clone(), vec![mk(), mk()]);
        // Same path, same remaining distance => rank decides.
        let a = simulate_packets(
            &inst,
            &[p.clone(), p.clone()],
            &Priority { order: vec![0, 1] },
        );
        assert_eq!(a.flow_completion, vec![2.0, 3.0]);
        let b = simulate_packets(&inst, &[p.clone(), p], &Priority { order: vec![1, 0] });
        assert_eq!(b.flow_completion, vec![3.0, 2.0]);
    }
}
