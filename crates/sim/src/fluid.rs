//! Event-driven fluid simulator.
//!
//! State advances between *events* (flow releases and completions). At each
//! event the allocation policy recomputes all active rates; between events
//! rates are constant, so the realized schedule is piecewise-constant
//! (exactly the Lemma 1 normal form) and is returned as a checkable
//! [`CircuitSchedule`].

use coflow_core::objective::{metrics, Metrics};
use coflow_core::order::Priority;
use coflow_core::schedule::{CircuitSchedule, FlowSchedule, Segment};
use coflow_core::Instance;
use coflow_net::Path;

/// Bandwidth allocation policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Serve flows in priority order; each gets the full residual
    /// bottleneck of its path ("each flow starts as soon as it can, in the
    /// prescribed order", §4.2).
    GreedyRate,
    /// Progressive-filling max–min fairness across active flows (the
    /// Figure 1 (s1) fair-sharing strawman).
    MaxMinFair,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Allocation policy.
    pub policy: AllocPolicy,
    /// Relative volume tolerance for deeming a flow complete.
    pub vol_eps: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            policy: AllocPolicy::GreedyRate,
            vol_eps: 1e-9,
        }
    }
}

/// Simulation result.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The realized piecewise-constant schedule.
    pub schedule: CircuitSchedule,
    /// Per-flow completion times (flat order).
    pub flow_completion: Vec<f64>,
    /// Objective metrics.
    pub metrics: Metrics,
    /// Number of events processed.
    pub events: usize,
}

/// Greedy priority-order rate allocation (§4.2): each flow in `active`
/// order (highest priority first) takes the full residual bottleneck of its
/// path. `rates` entries for active flows are written (others left
/// untouched); `residual` holds per-edge remaining capacity and is consumed.
///
/// Shared by [`simulate`] and the online engine's epoch executor
/// (`coflow-engine`), so both realize identical schedules for identical
/// priority orders.
pub fn greedy_fill(paths: &[Path], active: &[usize], rates: &mut [f64], residual: &mut [f64]) {
    for &f in active {
        let rate = paths[f]
            .edges
            .iter()
            .map(|e| residual[e.index()])
            .fold(f64::INFINITY, f64::min);
        let rate = if rate.is_finite() { rate.max(0.0) } else { 0.0 };
        if rate > 1e-12 {
            rates[f] = rate;
            for e in paths[f].edges.iter() {
                residual[e.index()] -= rate;
            }
        }
    }
}

/// Weighted progressive-filling max–min fairness across `active` flows.
///
/// `weights[f]` scales flow `f`'s share of every bottleneck (pass `None`
/// for the unweighted fair sharing of [`AllocPolicy::MaxMinFair`]); with
/// all weights 1 this is bit-identical to classic progressive filling.
/// `rates` entries for active flows are written; `residual` is consumed.
pub fn fair_fill(
    paths: &[Path],
    active: &[usize],
    weights: Option<&[f64]>,
    rates: &mut [f64],
    residual: &mut [f64],
) {
    let nf = rates.len();
    let w = |f: usize| weights.map(|w| w[f]).unwrap_or(1.0);
    let mut frozen = vec![true; nf];
    for &f in active {
        // Weight-0 (or negative) flows take no share: freezing them from
        // the start both defines their rate as 0 and keeps the filling
        // loop terminating (an unfrozen flow contributing nothing to any
        // edge's weight sum would never saturate or freeze).
        frozen[f] = w(f) <= 0.0;
    }
    // Progressive filling.
    loop {
        // Weighted share per edge of unfrozen flows.
        let mut wsum = vec![0.0_f64; residual.len()];
        let mut any = false;
        for &f in active {
            if frozen[f] {
                continue;
            }
            any = true;
            for e in paths[f].edges.iter() {
                wsum[e.index()] += w(f);
            }
        }
        if !any {
            break;
        }
        // Raise all unfrozen rates by the smallest per-edge fair share.
        let mut delta = f64::INFINITY;
        for (e, &s) in wsum.iter().enumerate() {
            if s > 0.0 {
                delta = delta.min(residual[e] / s);
            }
        }
        if !delta.is_finite() {
            // Every unfrozen flow has an empty path: nothing constrains
            // them, nothing can saturate — stop rather than spin.
            break;
        }
        if delta <= 1e-12 {
            // Saturated: freeze everything on saturated edges.
            delta = delta.max(0.0);
        }
        for (e, &s) in wsum.iter().enumerate() {
            if s > 0.0 {
                residual[e] -= delta * s;
            }
        }
        let mut progressed = false;
        for &f in active {
            if frozen[f] {
                continue;
            }
            rates[f] += delta * w(f);
            // Freeze flows crossing a saturated edge.
            if paths[f].edges.iter().any(|e| residual[e.index()] <= 1e-9) {
                frozen[f] = true;
                progressed = true;
            }
        }
        if !progressed && delta <= 1e-12 {
            // No residual and nobody newly frozen: freeze all.
            for &f in active {
                frozen[f] = true;
            }
        }
    }
}

/// Runs the fluid simulation of (`paths`, `order`) on `instance`.
///
/// # Panics
/// * if `paths`/`order` lengths disagree with the instance;
/// * if the simulation deadlocks (an active flow can never progress —
///   impossible when all path edges have positive capacity);
/// * if it fails to terminate within a generous event budget.
pub fn simulate(
    instance: &Instance,
    paths: &[Path],
    order: &Priority,
    cfg: &SimConfig,
) -> SimOutcome {
    let nf = instance.flow_count();
    assert_eq!(paths.len(), nf, "need one path per flow");
    assert_eq!(order.len(), nf, "need a total order over flows");
    let g = &instance.graph;

    let sizes: Vec<f64> = instance.flows().map(|(_, _, s)| s.size).collect();
    let releases: Vec<f64> = instance.flows().map(|(_, _, s)| s.release).collect();
    let mut remaining = sizes.clone();
    let mut done = vec![false; nf];
    let mut completion = vec![0.0_f64; nf];
    // Zero-size flows complete at release.
    for f in 0..nf {
        if sizes[f] <= 0.0 {
            done[f] = true;
            completion[f] = releases[f];
        }
    }

    let mut schedule = CircuitSchedule {
        flows: paths
            .iter()
            .map(|p| FlowSchedule {
                path: p.clone(),
                segments: Vec::new(),
            })
            .collect(),
    };

    let mut t = 0.0_f64;
    let mut events = 0usize;
    let mut rates = vec![0.0_f64; nf];
    let mut residual = vec![0.0_f64; g.edge_count()];
    let event_budget = 4 * nf + 16;

    loop {
        if done.iter().all(|&d| d) {
            break;
        }
        events += 1;
        assert!(
            events <= event_budget,
            "fluid simulator exceeded event budget (bug)"
        );

        // --- Allocate rates for active flows. ---
        for (e, r) in residual.iter_mut().enumerate() {
            *r = g.capacity(coflow_net::EdgeId(e as u32));
        }
        rates.fill(0.0);
        let active: Vec<usize> = order
            .order
            .iter()
            .copied()
            .filter(|&f| !done[f] && releases[f] <= t + 1e-12)
            .collect();
        match cfg.policy {
            AllocPolicy::GreedyRate => greedy_fill(paths, &active, &mut rates, &mut residual),
            AllocPolicy::MaxMinFair => fair_fill(paths, &active, None, &mut rates, &mut residual),
        }

        // --- Find the next event time. ---
        let mut next_t = f64::INFINITY;
        for &f in &active {
            if rates[f] > 1e-12 {
                next_t = next_t.min(t + remaining[f] / rates[f]);
            }
        }
        for f in 0..nf {
            if !done[f] && releases[f] > t + 1e-12 {
                next_t = next_t.min(releases[f]);
            }
        }
        assert!(
            next_t.is_finite(),
            "fluid simulator deadlocked at t={t}: active flows starved"
        );
        // Guard against zero-length steps from numerical ties.
        let next_t = next_t.max(t + 1e-12);

        // --- Advance, record segments. ---
        for f in 0..nf {
            if rates[f] > 1e-12 {
                push_segment(&mut schedule.flows[f].segments, t, next_t, rates[f]);
                remaining[f] -= rates[f] * (next_t - t);
                let tol = cfg.vol_eps * (1.0 + sizes[f]);
                if remaining[f] <= tol {
                    remaining[f] = 0.0;
                    done[f] = true;
                    completion[f] = next_t;
                }
            }
        }
        t = next_t;
    }

    let m = metrics(instance, &completion);
    SimOutcome {
        schedule,
        flow_completion: completion,
        metrics: m,
        events,
    }
}

/// Appends a segment, merging with the previous one when contiguous with an
/// identical rate (keeps schedules compact across no-op reallocations).
/// Shared with the online engine's executor so both emit identical
/// schedules for identical rate sequences.
pub fn push_segment(segs: &mut Vec<Segment>, start: f64, end: f64, rate: f64) {
    if let Some(last) = segs.last_mut() {
        if (last.end - start).abs() < 1e-12 && (last.rate - rate).abs() < 1e-12 {
            last.end = end;
            return;
        }
    }
    segs.push(Segment { start, end, rate });
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::model::{Coflow, FlowSpec};
    use coflow_net::{paths, topo, NodeId};

    /// The Figure 1 instance: coflow A = {A1: x->y size 2, A2: y->z size 1},
    /// B = {y->z size 1}, C = {x->y size 2}; unit capacities, unit weights.
    fn figure1() -> (Instance, Vec<Path>) {
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        let inst = Instance::new(
            t.graph.clone(),
            vec![
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(y, z, 1.0, 0.0)],
                ),
                Coflow::new(1.0, vec![FlowSpec::new(y, z, 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(x, y, 2.0, 0.0)]),
            ],
        );
        let route: Vec<Path> = inst
            .flows()
            .map(|(_, _, s)| paths::bfs_shortest_path(&inst.graph, s.src, s.dst).unwrap())
            .collect();
        (inst, route)
    }

    #[test]
    fn figure1_s1_fair_sharing_costs_10() {
        let (inst, route) = figure1();
        let out = simulate(
            &inst,
            &route,
            &Priority::identity(4),
            &SimConfig {
                policy: AllocPolicy::MaxMinFair,
                ..Default::default()
            },
        );
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        let total: f64 = out.metrics.coflow_completion.iter().sum();
        assert!(
            (total - 10.0).abs() < 1e-6,
            "fair sharing should cost 10, got {total}"
        );
    }

    #[test]
    fn figure1_s2_priority_a_b_c_costs_8() {
        let (inst, route) = figure1();
        // Order: A1, A2, B, C (flat order is already coflow-major).
        let out = simulate(&inst, &route, &Priority::identity(4), &SimConfig::default());
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        let total: f64 = out.metrics.coflow_completion.iter().sum();
        assert!(
            (total - 8.0).abs() < 1e-6,
            "priority A,B,C should cost 8, got {total}"
        );
        assert_eq!(out.metrics.coflow_completion, vec![2.0, 2.0, 4.0]);
    }

    #[test]
    fn figure1_s3_optimal_order_costs_7() {
        let (inst, route) = figure1();
        // Optimal: B first (y->z), C on x->y, then A1, A2.
        // Flat indices: A1=0, A2=1, B=2, C=3.
        let out = simulate(
            &inst,
            &route,
            &Priority {
                order: vec![2, 3, 0, 1],
            },
            &SimConfig::default(),
        );
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        let total: f64 = out.metrics.coflow_completion.iter().sum();
        assert!((total - 7.0).abs() < 1e-6, "optimal costs 7, got {total}");
        assert_eq!(out.metrics.coflow_completion, vec![4.0, 1.0, 2.0]);
    }

    #[test]
    fn single_flow_full_bottleneck() {
        let t = topo::line(3, 0.5);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(2)).unwrap();
        let inst = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(NodeId(0), NodeId(2), 2.0, 1.0)],
            )],
        );
        let out = simulate(&inst, &[p], &Priority::identity(1), &SimConfig::default());
        // Released at 1, rate 0.5 => done at 1 + 4 = 5.
        assert!((out.flow_completion[0] - 5.0).abs() < 1e-9);
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn greedy_respects_priority_not_index() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let mk = || Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]);
        let inst = Instance::new(t.graph.clone(), vec![mk(), mk()]);
        // Reverse priority: flow 1 first.
        let out = simulate(
            &inst,
            &[p.clone(), p],
            &Priority { order: vec![1, 0] },
            &SimConfig::default(),
        );
        assert_eq!(out.flow_completion, vec![2.0, 1.0]);
    }

    #[test]
    fn blocked_flow_waits_for_release_of_bandwidth() {
        // Flow 1 (lower priority) shares the edge; starts only after flow 0.
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(
                1.0,
                vec![
                    FlowSpec::new(NodeId(0), NodeId(1), 3.0, 0.0),
                    FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0),
                ],
            )],
        );
        let out = simulate(
            &inst,
            &[p.clone(), p],
            &Priority::identity(2),
            &SimConfig::default(),
        );
        assert_eq!(out.flow_completion, vec![3.0, 4.0]);
        // Flow 1's only segment must start at t = 3.
        assert_eq!(out.schedule.flows[1].segments[0].start, 3.0);
    }

    #[test]
    fn staggered_releases_preempt() {
        // Low-priority flow starts at 0; high-priority flow released at 1
        // takes the edge over (preemption via reallocation).
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph.clone(),
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 5.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 1.0)]),
            ],
        );
        let out = simulate(
            &inst,
            &[p.clone(), p],
            &Priority { order: vec![1, 0] },
            &SimConfig::default(),
        );
        // Flow 1: [1,2]. Flow 0: [0,1] + [2,6] => done at 6.
        assert_eq!(out.flow_completion[1], 2.0);
        assert_eq!(out.flow_completion[0], 6.0);
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn maxmin_shares_bottleneck_equally() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let mk = || Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]);
        let inst = Instance::new(t.graph.clone(), vec![mk(), mk()]);
        let out = simulate(
            &inst,
            &[p.clone(), p],
            &Priority::identity(2),
            &SimConfig {
                policy: AllocPolicy::MaxMinFair,
                ..Default::default()
            },
        );
        assert_eq!(out.flow_completion, vec![2.0, 2.0]);
    }

    #[test]
    fn maxmin_unconstrained_flow_gets_more() {
        // Flows: A on shared edge with B; C alone elsewhere gets full rate.
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        let inst = Instance::new(
            t.graph.clone(),
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(x, y, 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(x, y, 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(y, z, 1.0, 0.0)]),
            ],
        );
        let route: Vec<Path> = inst
            .flows()
            .map(|(_, _, s)| paths::bfs_shortest_path(&inst.graph, s.src, s.dst).unwrap())
            .collect();
        let out = simulate(
            &inst,
            &route,
            &Priority::identity(3),
            &SimConfig {
                policy: AllocPolicy::MaxMinFair,
                ..Default::default()
            },
        );
        assert_eq!(out.flow_completion[2], 1.0, "uncontended flow at full rate");
        assert_eq!(out.flow_completion[0], 2.0);
        assert_eq!(out.flow_completion[1], 2.0);
    }

    #[test]
    fn fair_fill_zero_weight_flow_gets_zero_rate_and_terminates() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let paths = vec![p.clone(), p];
        let mut rates = vec![0.0; 2];
        let mut residual = vec![1.0];
        // Flow 1 has weight 0: it must be starved, not spin the filling
        // loop forever; flow 0 takes the whole edge.
        fair_fill(
            &paths,
            &[0, 1],
            Some(&[2.0, 0.0]),
            &mut rates,
            &mut residual,
        );
        assert!((rates[0] - 1.0).abs() < 1e-9, "rates {rates:?}");
        assert_eq!(rates[1], 0.0);
        // All-zero weights: no allocation, no hang.
        let mut rates = vec![0.0; 2];
        let mut residual = vec![1.0];
        let paths2 = vec![
            paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap(),
            paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap(),
        ];
        fair_fill(
            &paths2,
            &[0, 1],
            Some(&[0.0, 0.0]),
            &mut rates,
            &mut residual,
        );
        assert_eq!(rates, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_size_flows_complete_at_release() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(NodeId(0), NodeId(1), 0.0, 3.5)],
            )],
        );
        let out = simulate(&inst, &[p], &Priority::identity(1), &SimConfig::default());
        assert_eq!(out.flow_completion[0], 3.5);
    }

    #[test]
    fn event_count_linearish() {
        // n flows on one edge: greedy serializes => ~2n events.
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let coflows: Vec<Coflow> = (0..20)
            .map(|i| {
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, i as f64 * 0.1)],
                )
            })
            .collect();
        let inst = Instance::new(t.graph.clone(), coflows);
        let route = vec![p; 20];
        let out = simulate(
            &inst,
            &route,
            &Priority::identity(20),
            &SimConfig::default(),
        );
        assert!(out.events <= 3 * 20 + 16);
        assert!(out.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    }
}
