//! # coflow-sim
//!
//! The evaluation substrate of §4.1: "like previous works, we developed a
//! flow-based simulator. At a high level, the simulator is an event queue.
//! Each flow corresponds to an event which happens at its release time. The
//! simulator chooses the next flow based on the ordering prescribed by a
//! scheduling algorithm or scheme. A second event occurs when a flow
//! completes; at which time, its reserved bandwidth is released."
//!
//! * [`fluid`] — the event-driven fluid (flow-level) simulator with two
//!   allocation policies: greedy priority-order rate reservation (the
//!   paper's §4.2 "each flow starts as soon as it can, in the order
//!   prescribed") and max–min fair sharing (the Figure 1 (s1) strawman);
//! * [`packetsim`] — discrete store-and-forward execution of packet
//!   schemes (one packet per edge per step), used by the packet-model
//!   experiments.
//!
//! Every simulation returns the realized [`coflow_core::CircuitSchedule`] /
//! [`coflow_core::PacketSchedule`] so tests can re-validate feasibility with
//! the core checkers — the simulator cannot silently cheat.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fluid;
pub mod packetsim;

pub use fluid::{simulate, AllocPolicy, SimConfig, SimOutcome};
pub use packetsim::{simulate_packets, PacketSimOutcome};
