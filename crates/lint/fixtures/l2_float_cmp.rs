// lint-fixture-expect: float_cmp=3
// Seeded L2 violations: raw float equality outside the tolerance module.

fn seeded(x: f64, y: f64) -> bool {
    let a = x == 0.0;
    let b = y != 1e-6;
    let c = x == f64::INFINITY;
    a && b && c
}

fn fine(n: usize, m: usize, t: (u32, u32)) -> bool {
    // Integer and tuple-field comparisons must NOT be flagged.
    let ints = n == m && t.0 == t.1;
    let range = (0..n).len() == m;
    ints && range
}
