// lint-fixture-expect: raw_timing=3
// Seeded L7 violations: direct clock reads in library code. Timing must go
// through a `coflow_obs::Recorder` so the logical clock can replace the
// wall clock and keep traces byte-reproducible.

use std::time::Instant; // flagged

/// A stopwatch around a solve: exactly the pattern the obs crate replaces.
fn seeded_stopwatch() -> f64 {
    let t0 = Instant::now(); // flagged
    t0.elapsed().as_secs_f64() * 1e3
}

/// Epoch stamping via the system clock is just as nondeterministic.
fn seeded_system_clock() -> bool {
    std::time::SystemTime::now() // flagged
        .duration_since(std::time::UNIX_EPOCH)
        .is_ok()
}

/// `Duration` is a value type, not a clock read: fine anywhere.
fn fine_duration(d: std::time::Duration) -> u128 {
    d.as_millis()
}

/// A documented waiver works like every other rule's.
fn fine_waived() -> f64 {
    // lint: allow(raw_timing) — coarse wall budget, never serialized
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
