// lint-fixture-expect:
// A clean library file: the engine must report nothing at all.

//! Module docs.

use std::collections::BTreeMap;

/// Nearly-equal within `eps` (stands in for `coflow_core::tol::approx_eq`).
fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Sums deterministic map contents; errors instead of panicking.
fn sum(m: &BTreeMap<u32, f64>) -> Result<f64, String> {
    let mut acc = 0.0;
    for (_, v) in m.iter() {
        if !v.is_finite() {
            return Err("non-finite value".to_string());
        }
        acc += v;
    }
    Ok(acc)
}

/// Strings and comments containing `x.unwrap()` or `a == 0.0` are ignored,
/// and so is this: `panic!("in a doc comment")`.
fn doc_noise() -> &'static str {
    "x.unwrap(); a == 0.0; println!(\"hi\")"
}

fn drive(m: &BTreeMap<u32, f64>) -> bool {
    let s = sum(m).unwrap_or(0.0);
    approx_eq(s, 0.0, 1e-9) || !doc_noise().is_empty()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let v: Option<f64> = Some(1.0);
        assert!(v.unwrap() == 1.0);
        println!("test output is fine");
    }
}
