// lint-fixture-expect: hot_alloc=4
// Seeded L6 violations: allocation inside `// lint: hot` functions.

/// Steady-state kernel: every acquisition must come from retained scratch.
// lint: hot
fn seeded(xs: &[u32], buf: &mut Vec<u32>) -> u32 {
    let scratch: Vec<u32> = Vec::new(); // flagged
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); // flagged
    let ring = vec![0u32; 8]; // flagged
    let boxed = Box::new(7u32); // flagged
    buf.clear();
    buf.extend_from_slice(xs);
    scratch.len() as u32 + doubled.len() as u32 + ring[0] + *boxed
}

/// Same constructs outside a hot function: not L6's business.
fn fine_cold(xs: &[u32]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    out.extend(xs.iter().map(|x| x + 1));
    out
}

/// A hot function that plays by the rules: clear + extend on reusable
/// buffers, `with_capacity` for genuinely escaping output.
// lint: hot
fn fine_hot(xs: &[u32], buf: &mut Vec<u32>) -> u32 {
    buf.clear();
    buf.extend_from_slice(xs);
    let mut out = Vec::with_capacity(xs.len());
    out.extend_from_slice(buf);
    out.iter().sum()
}

/// A documented escape hatch: the marker waives the rule.
// lint: hot
fn waived_hot(xs: &[u32]) -> u32 {
    // lint: allow(hot_alloc) — output vector escapes into the caller's result
    let out: Vec<u32> = xs.to_vec().into_iter().collect();
    out.len() as u32
}
