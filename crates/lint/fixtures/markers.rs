// lint-fixture-expect: bad_marker=1, no_panic=1
// Marker behavior: a justified marker waives its site; a bare marker is
// itself a violation and waives nothing.

fn waived(xs: &[u32]) -> u32 {
    // lint: allow(no_panic) — `xs` is non-empty by construction in new()
    *xs.first().unwrap()
}

fn not_waived(xs: &[u32]) -> u32 {
    // lint: allow(no_panic)
    *xs.last().unwrap()
}
