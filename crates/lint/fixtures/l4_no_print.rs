// lint-fixture-expect: no_print=3
// Seeded L4 violations: console output from library code.

fn seeded(x: u32) -> u32 {
    println!("x = {x}");
    eprintln!("warning");
    dbg!(x)
}

fn fine(x: u32) -> String {
    // Formatting into values must NOT be flagged.
    format!("x = {x}")
}
