// lint-fixture-expect: no_print=1
// lint-fixture-class: fault_harness
// The `crates/faults/` file class: deliberate failure-injection code may
// fail fast on chaos invariants (L1 waived) and time fault windows
// directly (L7 waived), but every other rule still applies — injection
// hooks stay deterministic and print-free.

/// Chaos invariants fail fast: not flagged under this class.
fn seeded_invariant(violations: usize) {
    if violations > 0 {
        panic!("checker found {violations} violations under injected faults");
    }
}

/// Harness-side timing of a fault window: not flagged under this class.
fn seeded_fault_window() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Fail-fast accessors are fine too.
fn seeded_unwrap(x: Option<u64>) -> u64 {
    x.unwrap()
}

/// But output still routes through returned values, even in chaos code.
fn seeded_print() {
    println!("fault fired"); // flagged
}
