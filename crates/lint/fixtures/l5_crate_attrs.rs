// lint-fixture-expect: crate_attrs=2, unsafe_code=1
// lint-fixture-class: crate_root
// Seeded L5 violations: a crate root missing both required attributes,
// plus a non-allowlisted `unsafe` block.

fn seeded(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
