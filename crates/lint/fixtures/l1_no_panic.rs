// lint-fixture-expect: no_panic=4
// Seeded L1 violations: panicking constructs in library code.

fn seeded(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("second element");
    if *first == 0 {
        panic!("zero first element");
    }
    match second {
        0 => unreachable!(),
        v => *v,
    }
}

fn fine(xs: &[u32]) -> u32 {
    // These must NOT be flagged: non-panicking variants and test code.
    xs.first().copied().unwrap_or(0).saturating_add(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // tests are exempt from L1
    }
}
