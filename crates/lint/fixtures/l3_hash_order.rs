// lint-fixture-expect: hash_order=2
// Seeded L3 violations: hash-ordered collection imports in library code.

use std::collections::HashMap;
use std::collections::HashSet;

fn seeded(m: &HashMap<u32, u32>, s: &HashSet<u32>) -> usize {
    m.len() + s.len()
}

mod fine {
    // BTree collections are deterministic and must NOT be flagged.
    use std::collections::BTreeMap;

    pub fn ok(m: &BTreeMap<u32, u32>) -> usize {
        m.len()
    }
}
