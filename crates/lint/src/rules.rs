//! The rule engine: domain policies L1–L5 over cleaned source text.
//!
//! | id | rule | policy |
//! |----|------|--------|
//! | L1 | `no_panic`   | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library `src/` |
//! | L2 | `float_cmp`  | no raw `==` / `!=` where an operand is float-like — compare through `coflow_core::tol` |
//! | L3 | `hash_order` | no `std::collections::HashMap`/`HashSet` imports in library `src/` (iteration order leaks break byte-reproducibility; use `BTreeMap`/`BTreeSet` or justify) |
//! | L4 | `no_print`   | no `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` in library `src/` |
//! | L5 | `crate_attrs` + `unsafe_code` | crate roots carry `#![deny(missing_docs)]` and `#![forbid(unsafe_code)]` (or `deny` where an allowlisted `unsafe` exists); `unsafe` only in allowlisted files with a `// SAFETY:` comment |
//! | L6 | `hot_alloc`  | no `Vec::new` / `vec![` / `.collect()` / `Box::new` inside a function annotated `// lint: hot` — acquire from reusable scratch or hoist the allocation out |
//! | L7 | `raw_timing` | no `std::time::Instant` / `SystemTime` in library `src/` outside `coflow-obs` and the bench harness — record through a `coflow_obs::Recorder` so the logical clock keeps traces reproducible |
//!
//! Sites with a documented invariant are waived by a marker comment on the
//! same or the preceding line:
//!
//! ```text
//! // lint: allow(no_panic) — index is produced by the loop above
//! ```
//!
//! A marker with no justification text is itself a violation
//! (`bad_marker`); `#[cfg(test)]` items are exempt from L1–L4.

use crate::clean::{clean, find, Cleaned};

/// One reported policy violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line in the offending file.
    pub line: usize,
    /// Rule identifier (`no_panic`, `float_cmp`, ...).
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

/// Every rule id the engine can emit (used by `--self-test` and markers).
pub const ALL_RULES: &[&str] = &[
    "no_panic",
    "float_cmp",
    "hash_order",
    "no_print",
    "crate_attrs",
    "unsafe_code",
    "hot_alloc",
    "raw_timing",
    "bad_marker",
];

/// How a file participates in the pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Library-crate `src/` code: rules L1–L4 + the unsafe scan apply.
    pub library: bool,
    /// A crate root (`lib.rs`): rule L5 attribute checks apply.
    pub crate_root: bool,
    /// On the explicit `unsafe` allowlist (requires a `// SAFETY:` comment).
    pub unsafe_ok: bool,
    /// Allowed to read clocks directly (`coflow-obs` itself and the bench
    /// harness); everywhere else timing goes through a `Recorder`.
    pub timing_ok: bool,
    /// Deliberate failure-injection code (`crates/faults`): chaos
    /// invariants fail fast (L1 `no_panic` waived) and the harness may
    /// time fault windows directly (L7 `raw_timing` waived). All other
    /// rules still apply — injection hooks must stay deterministic and
    /// print-free.
    pub fault_harness: bool,
}

/// An allow marker parsed from a raw source line.
struct Marker {
    line: usize,
    rules: Vec<String>,
    has_reason: bool,
}

fn parse_markers(raw: &str) -> Vec<Marker> {
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(p) = line
            .find("lint: allow(")
            .or_else(|| line.find("lint:allow("))
        else {
            continue;
        };
        let after = &line[p..];
        let Some(open) = after.find('(') else {
            continue;
        };
        let Some(close) = after.find(')') else {
            continue;
        };
        if close < open {
            continue;
        }
        let rules = after[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim_start_matches([' ', '-', '—', '–', ':'])
            .trim();
        out.push(Marker {
            line: idx + 1,
            rules,
            has_reason: reason.len() >= 3,
        });
    }
    out
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Iterator over maximal identifier tokens `(start, end)` in cleaned text.
fn idents(text: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < text.len() {
        if is_ident(text[i]) {
            let s = i;
            while i < text.len() && is_ident(text[i]) {
                i += 1;
            }
            out.push((s, i));
        } else {
            i += 1;
        }
    }
    out
}

fn next_nonws(text: &[u8], mut i: usize) -> Option<u8> {
    while i < text.len() {
        if !text[i].is_ascii_whitespace() {
            return Some(text[i]);
        }
        i += 1;
    }
    None
}

fn prev_nonws(text: &[u8], mut i: usize) -> Option<u8> {
    while i > 0 {
        i -= 1;
        if !text[i].is_ascii_whitespace() {
            return Some(text[i]);
        }
    }
    None
}

/// Does `window` contain a float-like token: a float literal (`1.0`, `2.`,
/// `1e-6`), an `f64`/`f32` type mention, or an `_f64`-suffixed literal?
fn looks_float(window: &[u8]) -> bool {
    for (s, e) in idents(window) {
        let tok = &window[s..e];
        if tok == b"f64" || tok == b"f32" {
            return true;
        }
        if !tok[0].is_ascii_digit() {
            continue;
        }
        // A numeric token: float if it has an exponent or float suffix, or
        // is followed by a decimal point (`1.0`, `1.` — but not `1..`
        // ranges, and not tuple/field access where the token follows `.`).
        let preceded_by_dot = s > 0 && window[s - 1] == b'.';
        if preceded_by_dot {
            continue; // `.0` of `a.0` or the fraction of an already-seen literal
        }
        if tok.starts_with(b"0x") || tok.starts_with(b"0b") || tok.starts_with(b"0o") {
            continue;
        }
        let has_suffix = tok.ends_with(b"f64") || tok.ends_with(b"f32");
        // `1e9` is one token; `1e-6` splits at the sign, so a trailing
        // `e`/`E` with a signed digit right after the token is an exponent.
        let exponent_inside = tok.iter().any(|&b| b == b'e' || b == b'E')
            && tok
                .iter()
                .all(|&b| b.is_ascii_digit() || b == b'e' || b == b'E' || b == b'_');
        let exponent_split = (tok.ends_with(b"e") || tok.ends_with(b"E"))
            && matches!(window.get(e), Some(b'+') | Some(b'-'))
            && window.get(e + 1).is_some_and(|b| b.is_ascii_digit());
        if has_suffix || exponent_inside || exponent_split {
            return true;
        }
        if e < window.len() && window[e] == b'.' && window.get(e + 1) != Some(&b'.') {
            return true;
        }
    }
    false
}

/// The identifier following `::` after byte `e` (`Vec::new` → `new`).
fn path_seg_after(text: &[u8], mut e: usize) -> Option<&[u8]> {
    while e < text.len() && text[e].is_ascii_whitespace() {
        e += 1;
    }
    if text.get(e) != Some(&b':') || text.get(e + 1) != Some(&b':') {
        return None;
    }
    e += 2;
    while e < text.len() && text[e].is_ascii_whitespace() {
        e += 1;
    }
    let s = e;
    while e < text.len() && is_ident(text[e]) {
        e += 1;
    }
    (e > s).then(|| &text[s..e])
}

/// Body spans of functions annotated `// lint: hot`: the marker sits on
/// its own line directly above the item (attributes and doc comments may
/// intervene); the body is the brace-matched block of the next `fn`.
fn hot_fn_bodies(raw: &str, cleaned: &Cleaned) -> Vec<(usize, usize)> {
    let text = &cleaned.text;
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        // The marker must be a standalone comment line (prose *mentioning*
        // `// lint: hot` must not annotate whatever function follows it).
        if !line.trim_start().starts_with("// lint: hot") {
            continue;
        }
        let from = cleaned.line_starts[idx];
        let Some(fn_pos) = idents(&text[from..])
            .into_iter()
            .find(|&(s, e)| &text[from + s..from + e] == b"fn")
            .map(|(s, _)| from + s)
        else {
            continue;
        };
        // The body opens at the first `{` after the `fn`; a `;` first means
        // a bodyless declaration (trait method) — nothing to scan.
        let mut i = fn_pos;
        let mut open = None;
        while i < text.len() {
            match text[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => {}
            }
            i += 1;
        }
        let Some(start) = open else { continue };
        let mut depth = 0usize;
        let mut end = start;
        while end < text.len() {
            match text[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((start, end));
    }
    out
}

/// The operand window around a comparison operator at `[op, op+2)`:
/// backwards and forwards to the nearest expression boundary.
fn operand_windows(text: &[u8], op: usize) -> (usize, usize, usize, usize) {
    let boundary = |b: u8| matches!(b, b',' | b';' | b'{' | b'}' | b'\n');
    let mut l = op;
    while l > 0 {
        let b = text[l - 1];
        // A bare `=` left of the operator is an assignment / `let` — the
        // comparison operand cannot extend past it (stops `let x: f64 =`
        // type annotations from tainting the window).
        if boundary(b)
            || b == b'='
            || (b == b'&' && l >= 2 && text[l - 2] == b'&')
            || (b == b'|' && l >= 2 && text[l - 2] == b'|')
        {
            break;
        }
        l -= 1;
    }
    let mut r = op + 2;
    while r < text.len() {
        let b = text[r];
        if boundary(b)
            || (b == b'&' && text.get(r + 1) == Some(&b'&'))
            || (b == b'|' && text.get(r + 1) == Some(&b'|'))
        {
            break;
        }
        r += 1;
    }
    (l, op, op + 2, r)
}

/// Runs every applicable rule over one file.
pub fn check_file(raw: &str, class: FileClass) -> Vec<Violation> {
    let cleaned = clean(raw.as_bytes());
    let markers = parse_markers(raw);
    let mut out = Vec::new();

    for m in &markers {
        for r in &m.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                out.push(Violation {
                    line: m.line,
                    rule: "bad_marker",
                    msg: format!("unknown rule `{r}` in allow marker"),
                });
            }
        }
        if !m.has_reason {
            out.push(Violation {
                line: m.line,
                rule: "bad_marker",
                msg: "allow marker has no justification text".into(),
            });
        }
    }

    let waived = |line: usize, rule: &str| {
        markers.iter().any(|m| {
            m.has_reason
                && (m.line == line || m.line + 1 == line)
                && m.rules.iter().any(|r| r == rule)
        })
    };
    let mut push = |cleaned: &Cleaned, pos: usize, rule: &'static str, msg: String| {
        let line = cleaned.line_of(pos);
        if !cleaned.in_test(pos) && !waived(line, rule) {
            out.push(Violation { line, rule, msg });
        }
    };

    if class.library {
        let text = &cleaned.text;
        for &(s, e) in &idents(text) {
            let tok = &text[s..e];
            match tok {
                b"unwrap" | b"expect"
                    if !class.fault_harness
                        && prev_nonws(text, s) == Some(b'.')
                        && next_nonws(text, e) == Some(b'(') =>
                {
                    let name = String::from_utf8_lossy(tok);
                    push(
                        &cleaned,
                        s,
                        "no_panic",
                        format!("`.{name}()` in library code — return a typed error or document the invariant with an allow marker"),
                    );
                }
                b"panic" | b"unreachable" | b"todo" | b"unimplemented"
                    if !class.fault_harness && next_nonws(text, e) == Some(b'!') =>
                {
                    let name = String::from_utf8_lossy(tok);
                    push(
                        &cleaned,
                        s,
                        "no_panic",
                        format!("`{name}!` in library code — return a typed error or document the invariant with an allow marker"),
                    );
                }
                b"println" | b"eprintln" | b"print" | b"eprint" | b"dbg"
                    if next_nonws(text, e) == Some(b'!') =>
                {
                    let name = String::from_utf8_lossy(tok);
                    push(
                        &cleaned,
                        s,
                        "no_print",
                        format!("`{name}!` in library code — route output through a returned value or metrics struct"),
                    );
                }
                b"Instant" | b"SystemTime" if !class.timing_ok && !class.fault_harness => {
                    let name = String::from_utf8_lossy(tok);
                    push(
                        &cleaned,
                        s,
                        "raw_timing",
                        format!("`{name}` in library code — time through a `coflow_obs::Recorder` span or accumulator so the logical clock keeps traces reproducible"),
                    );
                }
                b"HashMap" | b"HashSet" => {
                    let line_text = cleaned.line_text(s);
                    let trimmed: &[u8] = {
                        let mut t = line_text;
                        while let [b' ' | b'\t', rest @ ..] = t {
                            t = rest;
                        }
                        t
                    };
                    let is_import = trimmed.starts_with(b"use ")
                        || trimmed.starts_with(b"pub use ")
                        || find(line_text, b"std::collections", 0).is_some();
                    if is_import {
                        let name = String::from_utf8_lossy(tok);
                        push(
                            &cleaned,
                            s,
                            "hash_order",
                            format!("`{name}` import in library code — iteration order is nondeterministic; use the BTree variant or justify that it is never iterated into output"),
                        );
                    }
                }
                _ => {}
            }
        }

        // L2: raw float comparisons.
        let mut i = 0;
        while i + 1 < text.len() {
            let two = (text[i], text[i + 1]);
            let is_eq = two == (b'=', b'=')
                && text.get(i + 2) != Some(&b'=')
                && (i == 0 || !matches!(text[i - 1], b'=' | b'!' | b'<' | b'>'));
            let is_ne = two == (b'!', b'=') && text.get(i + 2) != Some(&b'=');
            if is_eq || is_ne {
                let (l, a, b, r) = operand_windows(text, i);
                if looks_float(&text[l..a]) || looks_float(&text[b..r]) {
                    let op = if is_eq { "==" } else { "!=" };
                    push(
                        &cleaned,
                        i,
                        "float_cmp",
                        format!("raw `{op}` on a float operand — use coflow_core::tol (approx_eq/rel_eq/is_zero) with a named epsilon"),
                    );
                }
                i += 2;
                continue;
            }
            i += 1;
        }

        // L6: allocation calls inside `// lint: hot` functions.
        for (b0, b1) in hot_fn_bodies(raw, &cleaned) {
            let body = &text[b0..b1];
            for &(s, e) in &idents(body) {
                let tok = &body[s..e];
                let abs = b0 + s;
                match tok {
                    b"Vec" | b"Box" if path_seg_after(body, e) == Some(b"new".as_slice()) => {
                        let name = String::from_utf8_lossy(tok);
                        push(
                            &cleaned,
                            abs,
                            "hot_alloc",
                            format!("`{name}::new` in a `// lint: hot` function — acquire from reusable scratch (prep/reserve) or hoist the allocation out of the hot path"),
                        );
                    }
                    b"vec" if next_nonws(body, e) == Some(b'!') => {
                        push(
                            &cleaned,
                            abs,
                            "hot_alloc",
                            "`vec![...]` in a `// lint: hot` function — acquire from reusable scratch (prep/reserve) or hoist the allocation out of the hot path".into(),
                        );
                    }
                    b"collect"
                        if prev_nonws(body, s) == Some(b'.')
                            && matches!(next_nonws(body, e), Some(b'(') | Some(b':')) =>
                    {
                        push(
                            &cleaned,
                            abs,
                            "hot_alloc",
                            "`.collect()` in a `// lint: hot` function — fill a reusable buffer with clear + extend instead".into(),
                        );
                    }
                    _ => {}
                }
            }
        }

        // Unsafe scan (part of L5).
        for &(s, e) in &idents(&cleaned.text) {
            if &cleaned.text[s..e] == b"unsafe" {
                if !class.unsafe_ok {
                    push(
                        &cleaned,
                        s,
                        "unsafe_code",
                        "`unsafe` outside the allowlisted files — extend UNSAFE_ALLOWED only with a SAFETY-commented invariant".into(),
                    );
                } else if !raw.contains("// SAFETY:") {
                    push(
                        &cleaned,
                        s,
                        "unsafe_code",
                        "allowlisted `unsafe` lacks a `// SAFETY:` comment stating the invariant"
                            .into(),
                    );
                }
            }
        }
    }

    if class.crate_root {
        let text = &cleaned.text;
        if find(text, b"#![deny(missing_docs)]", 0).is_none() {
            out.push(Violation {
                line: 1,
                rule: "crate_attrs",
                msg: "crate root must carry `#![deny(missing_docs)]`".into(),
            });
        }
        if find(text, b"#![forbid(unsafe_code)]", 0).is_none()
            && find(text, b"#![deny(unsafe_code)]", 0).is_none()
        {
            out.push(Violation {
                line: 1,
                rule: "crate_attrs",
                msg: "crate root must carry `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` when the crate has an allowlisted unsafe block)".into(),
            });
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    const LIB: FileClass = FileClass {
        library: true,
        crate_root: false,
        unsafe_ok: false,
        timing_ok: false,
        fault_harness: false,
    };

    const FAULTS: FileClass = FileClass {
        fault_harness: true,
        ..LIB
    };

    fn rules_hit(src: &str, class: FileClass) -> Vec<&'static str> {
        check_file(src, class).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_unwrap_but_not_unwrap_or() {
        assert_eq!(rules_hit("fn f() { x.unwrap(); }", LIB), ["no_panic"]);
        assert!(rules_hit("fn f() { x.unwrap_or(0); }", LIB).is_empty());
        assert!(rules_hit("fn f() { x.unwrap_or_default(); }", LIB).is_empty());
    }

    #[test]
    fn flags_macros() {
        assert_eq!(rules_hit("fn f() { panic!(\"x\"); }", LIB), ["no_panic"]);
        assert_eq!(rules_hit("fn f() { println!(\"x\"); }", LIB), ["no_print"]);
        assert!(rules_hit("fn f() { assert!(true); }", LIB).is_empty());
        assert!(rules_hit("fn f() { writeln!(w, \"x\").ok(); }", LIB).is_empty());
    }

    #[test]
    fn fault_harness_waives_panics_and_timing_only() {
        assert!(rules_hit("fn f() { x.unwrap(); }", FAULTS).is_empty());
        assert!(rules_hit("fn f() { panic!(\"chaos invariant\"); }", FAULTS).is_empty());
        assert!(rules_hit("fn f() { let t = std::time::Instant::now(); }", FAULTS).is_empty());
        // Everything else still applies to injection code.
        assert_eq!(
            rules_hit("fn f() { println!(\"x\"); }", FAULTS),
            ["no_print"]
        );
        assert_eq!(
            rules_hit("use std::collections::HashMap;", FAULTS),
            ["hash_order"]
        );
    }

    #[test]
    fn float_eq_heuristic() {
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { x == 0.0 }", LIB),
            ["float_cmp"]
        );
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { 1e-6 != x }", LIB),
            ["float_cmp"]
        );
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { x == f64::INFINITY }", LIB),
            ["float_cmp"]
        );
        assert!(rules_hit("fn f(n: usize) -> bool { n == 0 }", LIB).is_empty());
        assert!(rules_hit("fn f(a: (u8, u8), b: (u8, u8)) -> bool { a.0 == b.0 }", LIB).is_empty());
        assert!(rules_hit("fn f(n: usize) { for i in 0..n { let _ = i; } }", LIB).is_empty());
    }

    #[test]
    fn hash_imports_flagged() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;", LIB),
            ["hash_order"]
        );
        assert!(rules_hit("use std::collections::BTreeMap;", LIB).is_empty());
    }

    #[test]
    fn markers_waive_with_reason_only() {
        let with = "// lint: allow(no_panic) — index produced above\nfn f() { x.unwrap(); }";
        assert!(rules_hit(with, LIB).is_empty());
        let without = "// lint: allow(no_panic)\nfn f() { x.unwrap(); }";
        assert_eq!(rules_hit(without, LIB), ["bad_marker", "no_panic"]);
        let unknown = "// lint: allow(nonsense) — reason\nfn f() {}";
        assert_eq!(rules_hit(unknown, LIB), ["bad_marker"]);
    }

    #[test]
    fn cfg_test_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); assert!(a == 0.0); }\n}\n";
        assert!(rules_hit(src, LIB).is_empty());
    }

    #[test]
    fn crate_root_attrs() {
        let root = FileClass {
            crate_root: true,
            ..LIB
        };
        assert_eq!(
            rules_hit("//! docs\n", root),
            ["crate_attrs", "crate_attrs"]
        );
        let good = "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n";
        assert!(rules_hit(good, root).is_empty());
    }

    #[test]
    fn hot_alloc_flags_allocation_in_hot_fns_only() {
        // Outside a hot function: allocation is fine.
        assert!(rules_hit("fn f() -> Vec<u32> { Vec::new() }", LIB).is_empty());
        // Inside: all four patterns are flagged.
        let hot = "// lint: hot\nfn f() { let v: Vec<u32> = Vec::new(); }";
        assert_eq!(rules_hit(hot, LIB), ["hot_alloc"]);
        let hot = "// lint: hot\nfn f() { let v = vec![0; 4]; }";
        assert_eq!(rules_hit(hot, LIB), ["hot_alloc"]);
        let hot =
            "// lint: hot\nfn f(xs: &[u32]) { let v: Vec<u32> = xs.iter().copied().collect(); }";
        assert_eq!(rules_hit(hot, LIB), ["hot_alloc"]);
        let hot = "// lint: hot\nfn f() { let b = Box::new(3); }";
        assert_eq!(rules_hit(hot, LIB), ["hot_alloc"]);
        // Scratch-style reuse and with_capacity stay legal.
        let ok = "// lint: hot\nfn f(buf: &mut Vec<u32>) { buf.clear(); buf.extend(0..4); let c = Vec::with_capacity(8); }";
        assert!(rules_hit(ok, LIB).is_empty(), "{:?}", rules_hit(ok, LIB));
        // The body ends where its braces do: code after is exempt.
        let after = "// lint: hot\nfn f() {}\nfn g() -> Vec<u32> { Vec::new() }";
        assert!(rules_hit(after, LIB).is_empty());
    }

    #[test]
    fn hot_alloc_waivable_with_marker() {
        let src = "// lint: hot\nfn f() {\n    // lint: allow(hot_alloc) — output vector escapes into the result\n    let v: Vec<u32> = Vec::new();\n    let _ = v;\n}";
        assert!(rules_hit(src, LIB).is_empty(), "{:?}", rules_hit(src, LIB));
    }

    #[test]
    fn raw_timing_flags_clock_types_unless_timing_ok() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); let _ = t; }";
        assert_eq!(rules_hit(src, LIB), ["raw_timing", "raw_timing"]);
        assert_eq!(
            rules_hit(
                "fn f() { let t = std::time::SystemTime::now(); let _ = t; }",
                LIB
            ),
            ["raw_timing"]
        );
        // Duration is a value type, not a clock read: fine anywhere.
        assert!(rules_hit("use std::time::Duration;", LIB).is_empty());
        // The obs crate and the bench harness read clocks by design.
        let timed = FileClass {
            timing_ok: true,
            ..LIB
        };
        assert!(rules_hit("use std::time::Instant;", timed).is_empty());
        // A documented waiver works like every other rule.
        let waived =
            "// lint: allow(raw_timing) — coarse wall budget, never serialized\nuse std::time::Instant;";
        assert!(rules_hit(waived, LIB).is_empty());
    }

    #[test]
    fn unsafe_policy() {
        assert_eq!(rules_hit("fn f() { unsafe { g() } }", LIB), ["unsafe_code"]);
        let ok = FileClass {
            unsafe_ok: true,
            ..LIB
        };
        assert_eq!(rules_hit("fn f() { unsafe { g() } }", ok), ["unsafe_code"]);
        let with_safety = "// SAFETY: g is in bounds by construction\nfn f() { unsafe { g() } }";
        assert!(rules_hit(with_safety, ok).is_empty());
    }
}
