//! `coflow-lint` — the workspace's in-tree domain static-analysis pass.
//!
//! Self-contained and std-only (no registry access, so no `syn`): a
//! comment/string-stripping cleaner ([`clean`]) feeds a rule engine
//! ([`rules`]) that enforces the domain policies L1–L7 described in the
//! rule-catalog table in `rules.rs` and in README § "Static analysis".
//!
//! ```text
//! coflow-lint --check [paths...]   # lint the workspace (default) or files
//! coflow-lint --self-test          # run the engine against seeded fixtures
//! coflow-lint --list-rules         # print the rule catalog
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (or fixture mismatch), 2 = usage
//! or I/O error.

mod clean;
mod rules;

use rules::{check_file, FileClass, Violation, ALL_RULES};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to contain `unsafe` (each must carry a `// SAFETY:`
/// comment; the owning crate root downgrades to `#![deny(unsafe_code)]`).
/// Currently empty: the 2026-08 audit found no unsafe anywhere in the
/// workspace, so every crate root carries `#![forbid(unsafe_code)]`.
const UNSAFE_ALLOWED: &[&str] = &[];

/// Directories never walked (vendored shims emulate external crates and are
/// exempt by policy; fixtures are deliberately violating).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode_check = false;
    let mut mode_self_test = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode_check = true,
            "--self-test" => mode_self_test = true,
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "coflow-lint: domain lint pass (rules: {})\n\
                     usage: coflow-lint [--check] [--self-test] [--root DIR] [paths...]",
                    ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if !mode_check && !mode_self_test {
        mode_check = true;
    }

    let mut failed = false;
    if mode_self_test {
        match self_test(&root) {
            Ok(ok) => failed |= !ok,
            Err(e) => {
                eprintln!("self-test error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if mode_check {
        let result = if paths.is_empty() {
            check_workspace(&root)
        } else {
            check_paths(&paths)
        };
        match result {
            Ok(n) => failed |= n > 0,
            Err(e) => {
                eprintln!("lint error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies a workspace-relative path. `None` = not linted (bins, tests,
/// benches, examples, non-library crates).
fn classify(rel: &str, root: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel.split('/').collect();
    // Library files live at `src/...` of the root package or `crates/<c>/src/...`.
    let (crate_dir, in_src) = if parts.first() == Some(&"src") {
        (root.to_path_buf(), &parts[1..])
    } else if parts.first() == Some(&"crates") && parts.len() >= 3 && parts[2] == "src" {
        (root.join(parts[0]).join(parts[1]), &parts[3..])
    } else {
        return None;
    };
    if in_src.is_empty() || in_src.first() == Some(&"bin") {
        return None; // bins are exempt from the library rules
    }
    if !crate_dir.join("src/lib.rs").exists() {
        return None; // bin-only crate (e.g. coflow-lint itself)
    }
    Some(FileClass {
        library: true,
        crate_root: in_src == ["lib.rs"],
        unsafe_ok: UNSAFE_ALLOWED.contains(&rel),
        // The obs crate is where clock reads live; the bench harness times
        // whole experiment runs and is the other sanctioned reader.
        timing_ok: rel.starts_with("crates/obs/") || rel.starts_with("crates/bench/"),
        // Fault-injection code asserts chaos invariants fail-fast and may
        // time fault windows; L1/L7 are waived there (rules.rs has the
        // rationale), everything else still applies.
        fault_harness: rel.starts_with("crates/faults/"),
    })
}

fn report(path: &str, violations: &[Violation]) {
    for v in violations {
        println!(
            "{path}:{line}: [{rule}] {msg}",
            line = v.line,
            rule = v.rule,
            msg = v.msg
        );
    }
}

/// Lints every library `.rs` file in the workspace; returns violation count.
fn check_workspace(root: &Path) -> std::io::Result<usize> {
    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut total = 0;
    let mut scanned = 0;
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(class) = classify(&rel, root) else {
            continue;
        };
        let raw = fs::read_to_string(&path)?;
        let vs = check_file(&raw, class);
        report(&rel, &vs);
        total += vs.len();
        scanned += 1;
    }
    println!("coflow-lint: {scanned} files scanned, {total} violation(s)");
    Ok(total)
}

/// Lints explicitly named files as library code (fixture-class headers in
/// the file may add the crate-root check).
fn check_paths(paths: &[PathBuf]) -> std::io::Result<usize> {
    let mut total = 0;
    for path in paths {
        let raw = fs::read_to_string(path)?;
        let class = FileClass {
            library: true,
            crate_root: raw.contains("// lint-fixture-class: crate_root"),
            unsafe_ok: false,
            timing_ok: raw.contains("// lint-fixture-class: timing_ok"),
            fault_harness: raw.contains("// lint-fixture-class: fault_harness"),
        };
        let vs = check_file(&raw, class);
        report(&path.to_string_lossy(), &vs);
        total += vs.len();
    }
    Ok(total)
}

/// Parses a fixture's `// lint-fixture-expect: rule=count, ...` header.
fn parse_expect(raw: &str) -> Option<Vec<(String, usize)>> {
    let line = raw.lines().find(|l| l.contains("lint-fixture-expect:"))?;
    let spec = line.split("lint-fixture-expect:").nth(1)?;
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (rule, count) = part.split_once('=')?;
        out.push((rule.trim().to_string(), count.trim().parse().ok()?));
    }
    Some(out)
}

/// Runs the rule engine against the seeded fixtures: every declared
/// violation must be found (exact per-rule counts), clean fixtures must
/// produce nothing. Returns `Ok(true)` when all fixtures behave.
fn self_test(root: &Path) -> std::io::Result<bool> {
    let dir = root.join("crates/lint/fixtures");
    let mut files = Vec::new();
    if dir.is_dir() {
        collect_rs_unfiltered(&dir, &mut files)?;
    }
    if files.is_empty() {
        eprintln!("self-test: no fixtures found under {}", dir.display());
        return Ok(false);
    }
    let mut all_ok = true;
    for path in files {
        let raw = fs::read_to_string(&path)?;
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let name = name.as_deref().unwrap_or("<fixture>");
        let Some(expect) = parse_expect(&raw) else {
            eprintln!("self-test FAIL {name}: missing `lint-fixture-expect:` header");
            all_ok = false;
            continue;
        };
        let class = FileClass {
            library: true,
            crate_root: raw.contains("// lint-fixture-class: crate_root"),
            unsafe_ok: raw.contains("// lint-fixture-class: unsafe_ok"),
            timing_ok: raw.contains("// lint-fixture-class: timing_ok"),
            fault_harness: raw.contains("// lint-fixture-class: fault_harness"),
        };
        let vs = check_file(&raw, class);
        let mut ok = true;
        for rule in ALL_RULES {
            let want = expect
                .iter()
                .find(|(r, _)| r == rule)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            let got = vs.iter().filter(|v| v.rule == *rule).count();
            if want != got {
                eprintln!("self-test FAIL {name}: rule {rule}: expected {want}, got {got}");
                ok = false;
            }
        }
        for (rule, _) in &expect {
            if !ALL_RULES.contains(&rule.as_str()) {
                eprintln!("self-test FAIL {name}: header names unknown rule `{rule}`");
                ok = false;
            }
        }
        if ok {
            println!("self-test ok: {name}");
        } else {
            report(name, &vs);
        }
        all_ok &= ok;
    }
    Ok(all_ok)
}

/// Like [`collect_rs`] but without the skip list (fixtures live in a
/// skipped directory on purpose).
fn collect_rs_unfiltered(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        if path.is_dir() {
            collect_rs_unfiltered(&path, out)?;
        } else if path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
