//! Source cleaning: blank out comments, string/char literals, and locate
//! `#[cfg(test)]` regions, so the rule engine scans only live library code.
//!
//! The cleaned text has exactly the same byte length and newline positions
//! as the input — every blanked byte becomes a space — so byte offsets and
//! line numbers computed on it map 1:1 onto the original file.

/// A cleaned view of one source file.
pub struct Cleaned {
    /// Same length as the input; comments and literals are spaces.
    pub text: Vec<u8>,
    /// Byte offset of the start of each line (line 1 at index 0).
    pub line_starts: Vec<usize>,
    /// Sorted, disjoint byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
}

impl Cleaned {
    /// 1-based line number containing byte offset `pos`.
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `pos` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, pos: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// The cleaned text of the line containing `pos` (without newline).
    pub fn line_text(&self, pos: usize) -> &[u8] {
        let line = self.line_of(pos);
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.text.len());
        &self.text[start..end.max(start)]
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Returns `Some(total_prefix_len, hashes)` if `src[i..]` starts a raw (or
/// raw byte) string literal: `r"`, `r#"`, `br"`, `b"` is *not* raw but is
/// handled by the plain-string state, so only `r`-forms are detected here.
fn raw_string_start(src: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if src.get(j) == Some(&b'b') {
        j += 1;
    }
    if src.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while src.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if src.get(j) == Some(&b'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// Blanks comments and string/char literals (newlines preserved).
pub fn clean(src: &[u8]) -> Cleaned {
    let mut out = src.to_vec();
    let mut i = 0;
    let n = src.len();
    let blank = |out: &mut [u8], from: usize, to: usize| {
        let to = to.min(out.len());
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < n {
        let b = src[i];
        // Line comment.
        if b == b'/' && src.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < n && src[i] != b'\n' {
                i += 1;
            }
            blank(&mut out, start, i);
            continue;
        }
        // Block comment (nested).
        if b == b'/' && src.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Raw strings (r"...", r#"..."#, br"...").
        let prev_ident = i > 0 && is_ident(src[i - 1]);
        if !prev_ident {
            if let Some((plen, hashes)) = raw_string_start(src, i) {
                let start = i;
                i += plen;
                'raw: while i < n {
                    if src[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && src.get(i + 1 + k) == Some(&b'#') {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                blank(&mut out, start, i);
                continue;
            }
        }
        // Plain (and byte) strings.
        if b == b'"' || (b == b'b' && !prev_ident && src.get(i + 1) == Some(&b'"')) {
            let start = i;
            i += if b == b'b' { 2 } else { 1 };
            while i < n {
                match src[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, start, i);
            continue;
        }
        // Char literal vs lifetime.
        if b == b'\'' {
            let next = src.get(i + 1).copied().unwrap_or(0);
            let is_char = next == b'\\'
                || (src.get(i + 2) == Some(&b'\'') && next != b'\'')
                || (!is_ident(next) && next != b'\'' && src.get(i + 2) == Some(&b'\''));
            if is_char {
                let start = i;
                i += 1;
                let mut steps = 0;
                while i < n && steps < 16 {
                    match src[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                    steps += 1;
                }
                blank(&mut out, start, i);
                continue;
            }
            // Lifetime: skip the quote and the identifier after it.
            i += 1;
            while i < n && is_ident(src[i]) {
                i += 1;
            }
            continue;
        }
        i += 1;
    }

    let mut line_starts = vec![0];
    for (p, &b) in src.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(p + 1);
        }
    }
    let test_regions = find_test_regions(&out);
    Cleaned {
        text: out,
        line_starts,
        test_regions,
    }
}

/// Finds `#[cfg(test)]`-gated items in cleaned text by brace matching.
fn find_test_regions(text: &[u8]) -> Vec<(usize, usize)> {
    const NEEDLE: &[u8] = b"#[cfg(test)]";
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(rel) = find(text, NEEDLE, from) {
        let start = rel;
        let mut i = rel + NEEDLE.len();
        // Skip whitespace and any further attributes.
        loop {
            while i < text.len() && text[i].is_ascii_whitespace() {
                i += 1;
            }
            if text.get(i) == Some(&b'#') && text.get(i + 1) == Some(&b'[') {
                let mut depth = 0;
                while i < text.len() {
                    match text[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The gated item: ends at the matching `}` of its first brace, or at
        // `;` for brace-less items (`mod tests;`, `use …;`).
        let mut end = i;
        let mut depth = 0usize;
        while end < text.len() {
            match text[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        regions.push((start, end));
        from = end.max(rel + 1);
    }
    regions
}

/// First occurrence of `needle` in `hay[from..]`, as an absolute offset.
pub fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| &hay[i..i + needle.len()] == needle)
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn cleaned_str(src: &str) -> String {
        String::from_utf8(clean(src.as_bytes()).text).unwrap()
    }

    #[test]
    fn blanks_comments_and_strings() {
        let c = cleaned_str("let x = \"a == b\"; // x.unwrap()\nlet y = 1;");
        assert!(!c.contains("=="), "{c}");
        assert!(!c.contains("unwrap"), "{c}");
        assert!(c.contains("let y = 1;"));
    }

    #[test]
    fn blanks_raw_strings_and_chars() {
        let c = cleaned_str(r##"let s = r#"panic!("x")"#; let c = '"'; let l: &'static str = s;"##);
        assert!(!c.contains("panic"), "{c}");
        assert!(c.contains("'static"), "lifetimes survive: {c}");
    }

    #[test]
    fn nested_block_comments() {
        let c = cleaned_str("/* a /* b */ c.unwrap() */ let z = 2;");
        assert!(!c.contains("unwrap"), "{c}");
        assert!(c.contains("let z = 2;"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let c = clean(src.as_bytes());
        let pos = find(&c.text, b"unwrap", 0).unwrap();
        assert!(c.in_test(pos));
        let cpos = find(&c.text, b"fn c", 0).unwrap();
        assert!(!c.in_test(cpos));
    }

    #[test]
    fn line_numbers_are_stable() {
        let src = "a\nbb\nccc\n";
        let c = clean(src.as_bytes());
        assert_eq!(c.line_of(0), 1);
        assert_eq!(c.line_of(2), 2);
        assert_eq!(c.line_of(5), 3);
    }
}
