//! Criterion microbenchmarks for the network substrate: path search,
//! enumeration, max-flow and flow decomposition on evaluation-scale
//! topologies.

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_net::flow::{decompose_flow, max_flow};
use coflow_net::{paths, topo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("paths");
    for k in [4usize, 8] {
        let t = topo::fat_tree(k, 1.0);
        let (s, d) = (t.hosts[0], *t.hosts.last().unwrap());
        g.bench_with_input(BenchmarkId::new("bfs_fat_tree", k), &t, |b, t| {
            b.iter(|| black_box(paths::bfs_shortest_path(&t.graph, s, d)))
        });
        g.bench_with_input(BenchmarkId::new("enumerate_ecmp", k), &t, |b, t| {
            b.iter(|| black_box(paths::candidate_paths(&t.graph, s, d, 0, 32)))
        });
        let gc = t.graph.clone();
        g.bench_with_input(BenchmarkId::new("widest_path", k), &t, |b, t| {
            b.iter(|| black_box(paths::widest_path(&t.graph, s, d, |e| gc.capacity(e), 0.0)))
        });
    }
    g.finish();
}

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("flows");
    for k in [4usize, 8] {
        let t = topo::fat_tree(k, 1.0);
        let (s, d) = (t.hosts[0], *t.hosts.last().unwrap());
        g.bench_with_input(BenchmarkId::new("max_flow", k), &t, |b, t| {
            b.iter(|| black_box(max_flow(&t.graph, s, d).value))
        });
        let mf = max_flow(&t.graph, s, d);
        g.bench_with_input(BenchmarkId::new("decompose", k), &t, |b, t| {
            b.iter(|| black_box(decompose_flow(&t.graph, s, d, &mf.flow).paths.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_paths, bench_flows);
criterion_main!(benches);
