//! Criterion microbenchmarks for the simulators: fluid event loop
//! throughput under both allocation policies, and the packet stepper.

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_core::baselines::{baseline_random, BaselineConfig};
use coflow_core::order::Priority;
use coflow_net::topo;
use coflow_sim::fluid::{simulate, AllocPolicy, SimConfig};
use coflow_sim::packetsim::simulate_packets;
use coflow_workloads::gen::{generate, generate_packets, GenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_simulator");
    let topo = topo::fat_tree(4, 1.0);
    for flows in [40usize, 160, 480] {
        let inst = generate(
            &topo,
            &GenConfig {
                n_coflows: flows / 16,
                width: 16,
                seed: 1,
                ..Default::default()
            },
        );
        let scheme = baseline_random(&inst, &BaselineConfig::default());
        for policy in [AllocPolicy::GreedyRate, AllocPolicy::MaxMinFair] {
            let name = format!("{policy:?}");
            g.bench_with_input(BenchmarkId::new(name, flows), &inst, |b, inst| {
                b.iter(|| {
                    black_box(
                        simulate(
                            inst,
                            &scheme.paths,
                            &scheme.order,
                            &SimConfig {
                                policy,
                                ..Default::default()
                            },
                        )
                        .metrics
                        .weighted_sum,
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_simulator");
    let topo = topo::grid(4, 4, 1.0);
    for packets in [16usize, 64, 256] {
        let inst = generate_packets(
            &topo,
            &GenConfig {
                n_coflows: packets / 4,
                width: 4,
                seed: 2,
                ..Default::default()
            },
        );
        let routes: Vec<_> = inst
            .flows()
            .map(|(_, _, f)| {
                coflow_net::paths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap()
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::new("store_and_forward", packets),
            &inst,
            |b, inst| {
                b.iter(|| {
                    black_box(
                        simulate_packets(inst, &routes, &Priority::identity(inst.flow_count()))
                            .metrics
                            .makespan,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fluid, bench_packets);
criterion_main!(benches);
