//! Criterion microbenchmarks for the simplex solver (substrate #2):
//! scaling of the §2.2 path LP with coflow width (fat-tree k=4, the
//! paper-scale k=8, and the scale-up k=16), a pure-LP transportation
//! stress series (including transport/1000 and a candidate-pricing
//! 4-thread A/B at transport/500), the dense-inverse baseline, a
//! warm-vs-cold grid-sequence comparison, and the
//! delayed-column-generation vs eager-enumeration A/B.
//!
//! Besides the console report, the run writes a machine-readable snapshot
//! to `results/BENCH_lp.json` (wall times + per-solve [`SolveStats`] with
//! the pricing/FTRAN-BTRAN/factorization time breakdown), so factorization
//! behavior, the warm-start win, and the column-generation win are
//! *measured* artifacts, not claims. Every point runs ≥ 3 samples and
//! reports the median **and** the min; `--quick` /
//! `COFLOW_BENCH_QUICK=1` drops from 7 to the 3-sample floor for CI runs.

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_core::circuit::lp_free::{
    solve_free_paths_lp_colgen_on_grid, solve_free_paths_lp_paths,
    solve_free_paths_lp_paths_on_grid, ColumnMode, FreePathsLpConfig, PathPool,
};
use coflow_core::intervals::IntervalGrid;
use coflow_core::model::Instance;
use coflow_core::tol;
use coflow_lp::{
    solve_colgen, Backend, Cmp, ColGenStats, Model, Pricing, RowId, SolveStats, SolverOptions,
    WarmChain,
};
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Transportation-style stress LP: `n` supplies, `n` demands, `n²`
/// variables, dense-ish costs — the classic degenerate phase-1 workload.
fn transport(n: usize) -> Model {
    let mut m = Model::new();
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            row.push(m.add_nonneg(transport_cost(i, j), format!("x{i}_{j}")));
        }
    }
    for (i, row) in vars.iter().enumerate() {
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_row(Cmp::Eq, transport_supply(i), &terms);
    }
    for j in 0..n {
        let terms: Vec<_> = vars.iter().map(|row| (row[j], 1.0)).collect();
        m.add_row(Cmp::Le, transport_demand_cap(n), &terms);
    }
    m
}

fn transport_cost(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 13) % 10) as f64 + 1.0
}

fn transport_supply(i: usize) -> f64 {
    1.0 + (i % 3) as f64
}

fn transport_demand_cap(n: usize) -> f64 {
    let total: f64 = (0..n).map(transport_supply).sum();
    total / n as f64 + 1.0
}

/// The same transport LP solved by delayed column generation: the
/// restricted master seeds four spread columns per supply row and each
/// pricing round injects the most-negative-reduced-cost column per supply
/// row (`d_ij = c_ij − y_supply(i) − y_demand(j)` — no search structure
/// needed, the oracle is a scan). Returns the final master's solve stats,
/// the colgen stats, and the objective.
fn transport_colgen(n: usize, opts: &SolverOptions) -> (SolveStats, ColGenStats, f64) {
    let mut m = Model::new();
    let supply_rows: Vec<RowId> = (0..n)
        .map(|i| m.add_row(Cmp::Eq, transport_supply(i), &[]))
        .collect();
    let demand_rows: Vec<RowId> = (0..n)
        .map(|_| m.add_row(Cmp::Le, transport_demand_cap(n), &[]))
        .collect();
    let mut present = vec![false; n * n];
    let add_col = |m: &mut Model, i: usize, j: usize| {
        m.add_column(
            transport_cost(i, j),
            0.0,
            f64::INFINITY,
            format!("x{i}_{j}"),
            &[(supply_rows[i], 1.0), (demand_rows[j], 1.0)],
        );
    };
    for i in 0..n {
        // Small contiguous offsets: enough spread for a feasible seed
        // (any contiguous supply run of length L reaches L+3 demands,
        // comfortably within the demand caps) without accidentally
        // aligning with the periodic cost lattice — the cheap columns
        // still have to be *priced in*.
        for o in [0, 1, 2, 3] {
            let j = (i + o) % n;
            if !std::mem::replace(&mut present[i * n + j], true) {
                add_col(&mut m, i, j);
            }
        }
    }
    let mut chain = WarmChain::new();
    let (sol, cg) = solve_colgen(&mut m, opts, &mut chain, 500, |sol, m| {
        let mut added = 0usize;
        for i in 0..n {
            let yi = sol.dual(supply_rows[i]);
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                if present[i * n + j] {
                    continue;
                }
                let d = transport_cost(i, j) - yi - sol.dual(demand_rows[j]);
                if d < -tol::DUAL_EPS && best.is_none_or(|(_, b)| d < b) {
                    best = Some((j, d));
                }
            }
            if let Some((j, _)) = best {
                present[i * n + j] = true;
                add_col(m, i, j);
                added += 1;
            }
        }
        added
    })
    .expect("transport colgen master must stay solvable");
    (sol.stats, cg, sol.objective)
}

/// Production solver options for benchmarking (no debug verification).
fn production_opts() -> SolverOptions {
    SolverOptions {
        verify: false,
        ..Default::default()
    }
}

/// The threaded configuration for the large points: candidate-list
/// pricing (scattered list rescans most pivots, parallel sectioned
/// window scans on refill) at a fixed four workers. Fixed rather than
/// detected so the recorded numbers are comparable across machines; the
/// pivot sequence itself is thread-count invariant by construction.
fn parallel_opts() -> SolverOptions {
    SolverOptions {
        verify: false,
        pricing: Pricing::Candidate,
        threads: 4,
        ..Default::default()
    }
}

/// The historical solver configuration: explicit dense `B⁻¹`, full devex
/// pricing, exact phase-1 costs — the baseline the sparse rewrite is
/// measured against.
fn dense_baseline_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::DenseInverse,
        pricing: Pricing::Full,
        phase1_jitter: 0.0,
        verify: false,
        ..Default::default()
    }
}

fn bench_free_paths_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("free_paths_lp");
    g.sample_size(10);
    let t4 = topo::fat_tree(4, 1.0);
    for width in [2usize, 4, 8] {
        let inst = generate(&t4, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("fat_tree_k4", width), &inst, |b, inst| {
            b.iter(|| {
                let lp = solve_free_paths_lp_paths(black_box(inst), &FreePathsLpConfig::default())
                    .unwrap();
                black_box(lp.base.objective)
            })
        });
    }
    // The paper-scale topology (k=8, 128 hosts): the point the ROADMAP
    // calls LP-solve dominated.
    let t8 = topo::fat_tree(8, 1.0);
    for width in [2usize, 8] {
        let inst = generate(&t8, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("fat_tree_k8", width), &inst, |b, inst| {
            b.iter(|| {
                let lp = solve_free_paths_lp_paths(black_box(inst), &FreePathsLpConfig::default())
                    .unwrap();
                black_box(lp.base.objective)
            })
        });
    }
    g.finish();
}

fn bench_raw_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("raw_simplex");
    g.sample_size(10);
    for n in [20usize, 50, 100, 250, 500] {
        if n >= 250 {
            g.sample_size(3);
        }
        // Build the model once: the sample loop should time the solve, not
        // the O(n²) topology generation.
        let m = transport(n);
        g.bench_with_input(BenchmarkId::new("transport", n), &m, |b, m| {
            b.iter(|| {
                black_box(
                    m.solve_with(&production_opts())
                        .map(|s| s.objective)
                        .unwrap_or(f64::NAN),
                )
            })
        });
    }
    g.finish();
}

// ---------------------------------------------------------------------------
// Machine-readable snapshot: results/BENCH_lp.json
// ---------------------------------------------------------------------------

struct Point {
    name: String,
    backend: &'static str,
    wall_ms_median: f64,
    wall_ms_min: f64,
    samples: usize,
    stats: SolveStats,
}

/// One colgen-vs-eager comparison row.
struct ColgenRow {
    name: String,
    eager_wall_ms: f64,
    colgen_wall_ms: f64,
    eager_cols: usize,
    colgen_cols: usize,
    colgen: ColGenStats,
    eager_objective: f64,
    objective_delta: f64,
}

fn fmt_stats(s: &SolveStats) -> String {
    format!(
        concat!(
            "{{\"iterations\":{},\"phase1_iterations\":{},\"refactorizations\":{},",
            "\"factor_nnz\":{},\"basis_nnz\":{},\"fill_ratio\":{:.4},",
            "\"rows\":{},\"cols\":{},\"warm_attempted\":{},\"warm_used\":{},",
            "\"allocs\":{},\"scratch_reuse\":{},",
            "\"pricing_full_scans\":{},\"pricing_list_hits\":{},\"threads\":{},",
            "\"pricing_ms\":{:.3},\"ftran_btran_ms\":{:.3},\"factor_ms\":{:.3}}}"
        ),
        s.iterations,
        s.phase1_iterations,
        s.refactorizations,
        s.factor_nnz,
        s.basis_nnz,
        s.fill_ratio(),
        s.rows,
        s.cols,
        s.warm_attempted,
        s.warm_used,
        s.allocs,
        s.scratch_reuse,
        s.pricing_full_scans,
        s.pricing_list_hits,
        s.threads,
        s.pricing_ms,
        s.ftran_btran_ms,
        s.factor_ms,
    )
}

/// Times `solve` over `samples` runs; returns `(median, min, last result)`
/// wall times in ms.
fn measure_with<T>(samples: usize, mut solve: impl FnMut() -> T) -> (f64, f64, T) {
    assert!(samples >= 3, "report median + min over at least 3 samples");
    let mut times = Vec::with_capacity(samples);
    let mut out = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        out = Some(solve());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], times[0], out.unwrap())
}

fn k8_instance() -> Instance {
    generate(&topo::fat_tree(8, 1.0), &fig3_config(8, 0))
}

fn bench_snapshot(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("COFLOW_BENCH_QUICK").is_some_and(|v| v != "0");
    // ≥ 3 samples even in quick mode: single-sample medians are noise.
    let samples = if quick { 3 } else { 7 };
    let mut points: Vec<Point> = Vec::new();
    let mut colgen_rows: Vec<ColgenRow> = Vec::new();

    // Transportation series, production configuration; the 250/500 points
    // double as the eager side of the colgen A/B.
    for n in [100usize, 250, 500] {
        let m = transport(n);
        let (ms, ms_min, sol) = measure_with(samples, || m.solve_with(&production_opts()).unwrap());
        points.push(Point {
            name: format!("raw_simplex/transport/{n}"),
            backend: "sparse-lu",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats: sol.stats,
        });
        if n >= 250 {
            let (cg_ms, _, (cg_stats, cg, cg_obj)) =
                measure_with(samples, || transport_colgen(n, &production_opts()));
            colgen_rows.push(ColgenRow {
                name: format!("raw_simplex/transport/{n}"),
                eager_wall_ms: ms,
                colgen_wall_ms: cg_ms,
                eager_cols: sol.stats.cols,
                colgen_cols: cg_stats.cols,
                colgen: cg,
                eager_objective: sol.objective,
                objective_delta: (cg_obj - sol.objective).abs(),
            });
        }
    }
    // The same transport/500 model under the threaded candidate-pricing
    // configuration: the pricing_ms delta against the serial "sparse-lu"
    // point above is the headline parallel-pricing measurement (guarded
    // against the committed baseline by `perf_gate`).
    {
        let m = transport(500);
        let (ms, ms_min, sol) = measure_with(samples, || m.solve_with(&parallel_opts()).unwrap());
        points.push(Point {
            name: "raw_simplex/transport/500".into(),
            backend: "sparse-lu-parallel",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats: sol.stats,
        });
    }
    // The scale-up transport point only runs under the threaded
    // configuration: serially it is a multi-second solve per sample.
    {
        let m = transport(1000);
        let (ms, ms_min, sol) = measure_with(samples, || m.solve_with(&parallel_opts()).unwrap());
        points.push(Point {
            name: "raw_simplex/transport/1000".into(),
            backend: "sparse-lu-parallel",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats: sol.stats,
        });
    }
    // The dense-inverse baseline at the ROADMAP's reference point.
    {
        let m = transport(100);
        let (ms, ms_min, stats) = measure_with(samples, || {
            m.solve_with(&dense_baseline_opts()).unwrap().stats
        });
        points.push(Point {
            name: "raw_simplex/transport/100".into(),
            backend: "dense-inverse-baseline",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats,
        });
    }
    // Paper-scale interval LP (fat-tree k=8, width 8), eager and colgen.
    {
        let inst = k8_instance();
        let cfg = FreePathsLpConfig {
            solver: production_opts(),
            ..Default::default()
        };
        let (ms, ms_min, eager) =
            measure_with(samples, || solve_free_paths_lp_paths(&inst, &cfg).unwrap());
        points.push(Point {
            name: "free_paths_lp/fat_tree_k8/8".into(),
            backend: "sparse-lu",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats: eager.base.stats,
        });
        let cfg_cg = FreePathsLpConfig {
            columns: ColumnMode::delayed(),
            ..cfg
        };
        let (cg_ms, cg_ms_min, (cg_lp, cg)) = measure_with(samples, || {
            let grid = IntervalGrid::cover(cfg_cg.eps, inst.horizon());
            let mut pool = PathPool::new();
            solve_free_paths_lp_colgen_on_grid(
                &inst,
                &cfg_cg,
                grid,
                &mut WarmChain::new(),
                &mut pool,
            )
            .unwrap()
        });
        points.push(Point {
            name: "free_paths_lp/fat_tree_k8/8".into(),
            backend: "sparse-lu-colgen",
            wall_ms_median: cg_ms,
            wall_ms_min: cg_ms_min,
            samples,
            stats: cg_lp.base.stats,
        });
        colgen_rows.push(ColgenRow {
            name: "free_paths_lp/fat_tree_k8/8".into(),
            eager_wall_ms: ms,
            colgen_wall_ms: cg_ms,
            eager_cols: eager.base.stats.cols,
            colgen_cols: cg_lp.base.stats.cols,
            colgen: cg,
            eager_objective: eager.base.objective,
            objective_delta: (cg_lp.base.objective - eager.base.objective).abs(),
        });
    }
    // Scale-up interval LP (fat-tree k=16, 1024 hosts, width 8) under the
    // threaded configuration: ~20k eager path columns, so this point is
    // only tractable as a colgen-vs-eager A/B with concurrent oracles.
    {
        let inst = generate(&topo::fat_tree(16, 1.0), &fig3_config(8, 0));
        let cfg = FreePathsLpConfig {
            solver: parallel_opts(),
            ..Default::default()
        };
        let (ms, ms_min, eager) =
            measure_with(samples, || solve_free_paths_lp_paths(&inst, &cfg).unwrap());
        points.push(Point {
            name: "free_paths_lp/fat_tree_k16/8".into(),
            backend: "sparse-lu-parallel",
            wall_ms_median: ms,
            wall_ms_min: ms_min,
            samples,
            stats: eager.base.stats,
        });
        let cfg_cg = FreePathsLpConfig {
            columns: ColumnMode::delayed(),
            ..cfg
        };
        let (cg_ms, cg_ms_min, (cg_lp, cg)) = measure_with(samples, || {
            let grid = IntervalGrid::cover(cfg_cg.eps, inst.horizon());
            let mut pool = PathPool::new();
            solve_free_paths_lp_colgen_on_grid(
                &inst,
                &cfg_cg,
                grid,
                &mut WarmChain::new(),
                &mut pool,
            )
            .unwrap()
        });
        points.push(Point {
            name: "free_paths_lp/fat_tree_k16/8".into(),
            backend: "sparse-lu-colgen-parallel",
            wall_ms_median: cg_ms,
            wall_ms_min: cg_ms_min,
            samples,
            stats: cg_lp.base.stats,
        });
        colgen_rows.push(ColgenRow {
            name: "free_paths_lp/fat_tree_k16/8".into(),
            eager_wall_ms: ms,
            colgen_wall_ms: cg_ms,
            eager_cols: eager.base.stats.cols,
            colgen_cols: cg_lp.base.stats.cols,
            colgen: cg,
            eager_objective: eager.base.objective,
            objective_delta: (cg_lp.base.objective - eager.base.objective).abs(),
        });
    }

    // Warm vs cold across a *sweep* of distinct same-shape trial instances
    // (the fig3/fig4 pattern). `coflow_bench::run_point` now defaults this
    // chaining OFF (`WarmPolicy::Off`) because the measurement below is
    // negative for independent instances; the block stays as the evidence.
    let sweep: Vec<Instance> = (0..4)
        .map(|trial| generate(&topo::fat_tree(4, 1.0), &fig3_config(4, trial)))
        .collect();
    let sweep_cfg = FreePathsLpConfig {
        solver: production_opts(),
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut sweep_chain = WarmChain::new();
    for inst in &sweep {
        let grid = IntervalGrid::cover(sweep_cfg.eps, inst.horizon());
        solve_free_paths_lp_paths_on_grid(inst, &sweep_cfg, grid, &mut sweep_chain).unwrap();
    }
    let sweep_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sweep_warm = sweep_chain.stats();
    let t0 = Instant::now();
    let mut sweep_cold_iters = 0usize;
    for inst in &sweep {
        let grid = IntervalGrid::cover(sweep_cfg.eps, inst.horizon());
        let sol = solve_free_paths_lp_paths_on_grid(inst, &sweep_cfg, grid, &mut WarmChain::new())
            .unwrap();
        sweep_cold_iters += sol.base.iterations;
    }
    let sweep_cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Warm vs cold on a growing grid sequence of the path LP.
    let inst = generate(&topo::fat_tree(4, 1.0), &fig3_config(4, 0));
    let cfg = FreePathsLpConfig {
        solver: production_opts(),
        ..Default::default()
    };
    let h = inst.horizon();
    let scales = [1.0, 2.0, 4.0];
    let t0 = Instant::now();
    let mut chain = WarmChain::new();
    for s in scales {
        let grid = IntervalGrid::cover(cfg.eps, h * s);
        solve_free_paths_lp_paths_on_grid(&inst, &cfg, grid, &mut chain).unwrap();
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_stats = chain.stats();
    let t0 = Instant::now();
    let mut cold_iters = 0usize;
    for s in scales {
        let grid = IntervalGrid::cover(cfg.eps, h * s);
        let sol =
            solve_free_paths_lp_paths_on_grid(&inst, &cfg, grid, &mut WarmChain::new()).unwrap();
        cold_iters += sol.base.iterations;
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Derived headline numbers.
    let sparse100 = points
        .iter()
        .find(|p| p.name.ends_with("transport/100") && p.backend == "sparse-lu")
        .unwrap()
        .wall_ms_median;
    let dense100 = points
        .iter()
        .find(|p| p.backend == "dense-inverse-baseline")
        .unwrap()
        .wall_ms_median;
    let serial500 = points
        .iter()
        .find(|p| p.name.ends_with("transport/500") && p.backend == "sparse-lu")
        .unwrap();
    let par500 = points
        .iter()
        .find(|p| p.name.ends_with("transport/500") && p.backend == "sparse-lu-parallel")
        .unwrap();
    let pricing_speedup = serial500.stats.pricing_ms / par500.stats.pricing_ms;

    let mut json = String::from("{\n  \"schema\": \"coflow-lp-bench/v2\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"points\": [\n"));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\":\"{}\",\"backend\":\"{}\",\"wall_ms_median\":{:.3},\"wall_ms_min\":{:.3},\"samples\":{},\"stats\":{}}}{}\n",
            p.name,
            p.backend,
            p.wall_ms_median,
            p.wall_ms_min,
            p.samples,
            fmt_stats(&p.stats),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"colgen_vs_eager\": [\n");
    for (i, r) in colgen_rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\":\"{}\",\"eager_wall_ms\":{:.3},\"colgen_wall_ms\":{:.3},",
                "\"speedup\":{:.2},\"eager_cols\":{},\"colgen_cols\":{},\"column_fraction\":{:.4},",
                "\"rounds\":{},\"seeded_cols\":{},\"generated_cols\":{},",
                "\"pricing_ms\":{:.3},\"master_ms\":{:.3},\"objective_delta\":{:.3e}}}{}\n"
            ),
            r.name,
            r.eager_wall_ms,
            r.colgen_wall_ms,
            r.eager_wall_ms / r.colgen_wall_ms,
            r.eager_cols,
            r.colgen_cols,
            r.colgen_cols as f64 / r.eager_cols as f64,
            r.colgen.rounds,
            r.colgen.seeded_cols,
            r.colgen.generated_cols,
            r.colgen.pricing_ms,
            r.colgen.master_ms,
            r.objective_delta,
            if i + 1 < colgen_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        concat!(
            "  \"warm_vs_cold\": {{\"sequence\":\"free_paths_lp/fat_tree_k4/4 grids x{}\",",
            "\"warm_total_iterations\":{},\"cold_total_iterations\":{},",
            "\"warm_total_phase1\":{},\"warm_used\":{},\"warm_wall_ms\":{:.3},\"cold_wall_ms\":{:.3}}},\n"
        ),
        scales.len(),
        warm_stats.total_iterations,
        cold_iters,
        warm_stats.total_phase1,
        warm_stats.warm_used,
        warm_ms,
        cold_ms,
    ));
    json.push_str(&format!(
        concat!(
            "  \"sweep_warm_vs_cold\": {{\"sequence\":\"fig3 fat_tree_k4 width-4 trials x{}\",",
            "\"warm_total_iterations\":{},\"cold_total_iterations\":{},",
            "\"warm_used\":{},\"warm_wall_ms\":{:.3},\"cold_wall_ms\":{:.3}}},\n"
        ),
        sweep.len(),
        sweep_warm.total_iterations,
        sweep_cold_iters,
        sweep_warm.warm_used,
        sweep_warm_ms,
        sweep_cold_ms,
    ));
    json.push_str(&format!(
        concat!(
            "  \"derived\": {{\"transport100_speedup_vs_dense_baseline\":{:.2},",
            "\"transport500_pricing_speedup_candidate4t_vs_serial\":{:.2}}}\n}}\n"
        ),
        dense100 / sparse100,
        pricing_speedup,
    ));

    // Cargo runs benches with the package dir as CWD; anchor the artifact
    // at the workspace-level results/ directory.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).ok();
    std::fs::write(results.join("BENCH_lp.json"), &json).expect("write results/BENCH_lp.json");

    // One traced k16 colgen solve through a persistent chain. The chain's
    // recorder backs both the ColGenStats view and the trace, so the
    // master/oracle span sums must reproduce the stats to float rounding;
    // the JSONL lands next to BENCH_lp.json for `trace_view` and for the
    // CI lane that byte-diffs logical-clock traces between runs.
    {
        let inst = generate(&topo::fat_tree(16, 1.0), &fig3_config(8, 0));
        let cfg_cg = FreePathsLpConfig {
            solver: parallel_opts(),
            columns: ColumnMode::delayed(),
            ..Default::default()
        };
        let grid = IntervalGrid::cover(cfg_cg.eps, inst.horizon());
        let mut pool = PathPool::new();
        let mut chain = WarmChain::new();
        let (_, cg) =
            solve_free_paths_lp_colgen_on_grid(&inst, &cfg_cg, grid, &mut chain, &mut pool)
                .unwrap();
        let trace = chain.take_trace();
        let master_ms = trace.span_total_ms(coflow_obs::SpanName::Master);
        let oracle_ms = trace.span_total_ms(coflow_obs::SpanName::Oracle);
        assert!(
            (master_ms - cg.master_ms).abs() <= tol::OBJ_REL_EPS * (1.0 + cg.master_ms.abs()),
            "trace master span sum {master_ms} disagrees with ColGenStats.master_ms {}",
            cg.master_ms
        );
        assert!(
            (oracle_ms - cg.pricing_ms).abs() <= tol::OBJ_REL_EPS * (1.0 + cg.pricing_ms.abs()),
            "trace oracle span sum {oracle_ms} disagrees with ColGenStats.pricing_ms {}",
            cg.pricing_ms
        );
        assert_eq!(trace.span_count(coflow_obs::SpanName::Master), cg.rounds);
        coflow_workloads::io::write_trace(&results.join("TRACE_lp.jsonl"), &trace)
            .expect("write results/TRACE_lp.jsonl");
        println!(
            "  trace k16 colgen: {} spans ({} rounds), master {master_ms:.1}ms oracle \
             {oracle_ms:.1}ms, clock {} — results/TRACE_lp.jsonl",
            trace.spans.len(),
            cg.rounds,
            trace.mode.as_str(),
        );
    }
    println!(
        "lp_snapshot: transport/100 sparse {sparse100:.1}ms vs dense baseline {dense100:.1}ms \
         ({:.1}x); warm grid chain {} iters vs cold {}; warm trial sweep {} iters vs cold {} \
         — results/BENCH_lp.json",
        dense100 / sparse100,
        warm_stats.total_iterations,
        cold_iters,
        sweep_warm.total_iterations,
        sweep_cold_iters
    );
    println!(
        "  parallel pricing transport/500: candidate/4t pricing {:.1}ms vs serial {:.1}ms \
         ({pricing_speedup:.2}x), wall {:.1}ms vs {:.1}ms",
        par500.stats.pricing_ms,
        serial500.stats.pricing_ms,
        par500.wall_ms_median,
        serial500.wall_ms_median,
    );
    for r in &colgen_rows {
        println!(
            "  colgen {}: {:.1}ms vs eager {:.1}ms ({:.1}x), {} of {} cols ({:.0}%), \
             {} rounds, obj delta {:.2e}",
            r.name,
            r.colgen_wall_ms,
            r.eager_wall_ms,
            r.eager_wall_ms / r.colgen_wall_ms,
            r.colgen_cols,
            r.eager_cols,
            100.0 * r.colgen_cols as f64 / r.eager_cols as f64,
            r.colgen.rounds,
            r.objective_delta,
        );
    }
    assert!(
        warm_stats.total_iterations < cold_iters,
        "warm-started sequence must need fewer total iterations"
    );
    // Column generation must reproduce the eager optimum on every recorded
    // point and materialize at most a quarter of the eager columns on the
    // headline points (transport/500, fat-tree k8/k16); transport/500 and
    // the k16 scale-up must also be measured wall-clock wins.
    for r in &colgen_rows {
        assert!(
            r.objective_delta <= tol::OBJ_REL_EPS * (1.0 + r.eager_objective.abs()),
            "{}: colgen objective drifted by {:.3e} (eager {})",
            r.name,
            r.objective_delta,
            r.eager_objective
        );
        if r.name.ends_with("transport/500")
            || r.name.contains("fat_tree_k8")
            || r.name.contains("fat_tree_k16")
        {
            assert!(
                4 * r.colgen_cols <= r.eager_cols,
                "{}: colgen cols {} exceed 25% of eager {}",
                r.name,
                r.colgen_cols,
                r.eager_cols
            );
        }
        if r.name.ends_with("transport/500") || r.name.contains("fat_tree_k16") {
            assert!(
                r.colgen_wall_ms < r.eager_wall_ms,
                "{}: colgen {:.1}ms not faster than eager {:.1}ms",
                r.name,
                r.colgen_wall_ms,
                r.eager_wall_ms
            );
        }
    }
}

criterion_group!(
    benches,
    bench_free_paths_lp,
    bench_raw_simplex,
    bench_snapshot
);
criterion_main!(benches);
