//! Criterion microbenchmarks for the simplex solver (substrate #2):
//! scaling of the §2.2 path LP with coflow width (fat-tree k=4 and the
//! paper-scale k=8), a pure-LP transportation stress series, the
//! dense-inverse baseline, and a warm-vs-cold grid-sequence comparison.
//!
//! Besides the console report, the run writes a machine-readable snapshot
//! to `results/BENCH_lp.json` (wall times + per-solve [`SolveStats`]), so
//! factorization behavior and the warm-start win are *measured* artifacts,
//! not claims. `--quick` / `COFLOW_BENCH_QUICK=1` drops to one sample per
//! point for CI smoke runs.

use coflow_core::circuit::lp_free::{
    solve_free_paths_lp_paths, solve_free_paths_lp_paths_on_grid, FreePathsLpConfig,
};
use coflow_core::intervals::IntervalGrid;
use coflow_core::model::Instance;
use coflow_lp::{Backend, Cmp, Model, Pricing, SolveStats, SolverOptions, WarmChain};
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Transportation-style stress LP: `n` supplies, `n` demands, `n²`
/// variables, dense-ish costs — the classic degenerate phase-1 workload.
fn transport(n: usize) -> Model {
    let mut m = Model::new();
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            let cost = ((i * 7 + j * 13) % 10) as f64 + 1.0;
            row.push(m.add_nonneg(cost, format!("x{i}_{j}")));
        }
    }
    for (i, row) in vars.iter().enumerate() {
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_row(Cmp::Eq, 1.0 + (i % 3) as f64, &terms);
    }
    for j in 0..n {
        let terms: Vec<_> = (0..n).map(|i| (vars[i][j], 1.0)).collect();
        let total: f64 = (0..n).map(|i| 1.0 + (i % 3) as f64).sum();
        m.add_row(Cmp::Le, total / n as f64 + 1.0, &terms);
    }
    m
}

/// Production solver options for benchmarking (no debug verification).
fn production_opts() -> SolverOptions {
    SolverOptions {
        verify: false,
        ..Default::default()
    }
}

/// The historical solver configuration: explicit dense `B⁻¹`, full devex
/// pricing, exact phase-1 costs — the baseline the sparse rewrite is
/// measured against.
fn dense_baseline_opts() -> SolverOptions {
    SolverOptions {
        backend: Backend::DenseInverse,
        pricing: Pricing::Full,
        phase1_jitter: 0.0,
        verify: false,
        ..Default::default()
    }
}

fn bench_free_paths_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("free_paths_lp");
    g.sample_size(10);
    let t4 = topo::fat_tree(4, 1.0);
    for width in [2usize, 4, 8] {
        let inst = generate(&t4, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("fat_tree_k4", width), &inst, |b, inst| {
            b.iter(|| {
                let lp = solve_free_paths_lp_paths(black_box(inst), &FreePathsLpConfig::default())
                    .unwrap();
                black_box(lp.base.objective)
            })
        });
    }
    // The paper-scale topology (k=8, 128 hosts): the point the ROADMAP
    // calls LP-solve dominated.
    let t8 = topo::fat_tree(8, 1.0);
    for width in [2usize, 8] {
        let inst = generate(&t8, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("fat_tree_k8", width), &inst, |b, inst| {
            b.iter(|| {
                let lp = solve_free_paths_lp_paths(black_box(inst), &FreePathsLpConfig::default())
                    .unwrap();
                black_box(lp.base.objective)
            })
        });
    }
    g.finish();
}

fn bench_raw_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("raw_simplex");
    g.sample_size(10);
    for n in [20usize, 50, 100, 250, 500] {
        if n >= 250 {
            g.sample_size(3);
        }
        g.bench_with_input(BenchmarkId::new("transport", n), &n, |b, &n| {
            b.iter(|| {
                let m = transport(n);
                black_box(
                    m.solve_with(&production_opts())
                        .map(|s| s.objective)
                        .unwrap_or(f64::NAN),
                )
            })
        });
    }
    g.finish();
}

// ---------------------------------------------------------------------------
// Machine-readable snapshot: results/BENCH_lp.json
// ---------------------------------------------------------------------------

struct Point {
    name: String,
    backend: &'static str,
    wall_ms_median: f64,
    samples: usize,
    stats: SolveStats,
}

fn fmt_stats(s: &SolveStats) -> String {
    format!(
        concat!(
            "{{\"iterations\":{},\"phase1_iterations\":{},\"refactorizations\":{},",
            "\"factor_nnz\":{},\"basis_nnz\":{},\"fill_ratio\":{:.4},",
            "\"rows\":{},\"cols\":{},\"warm_attempted\":{},\"warm_used\":{}}}"
        ),
        s.iterations,
        s.phase1_iterations,
        s.refactorizations,
        s.factor_nnz,
        s.basis_nnz,
        s.fill_ratio(),
        s.rows,
        s.cols,
        s.warm_attempted,
        s.warm_used,
    )
}

/// Times `solve` (which must return the stats of one solve) over `samples`
/// runs; returns the median wall time in ms and the last run's stats.
fn measure(samples: usize, mut solve: impl FnMut() -> SolveStats) -> (f64, SolveStats) {
    let mut times = Vec::with_capacity(samples);
    let mut stats = SolveStats::default();
    for _ in 0..samples {
        let t0 = Instant::now();
        stats = solve();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], stats)
}

fn k8_instance() -> Instance {
    generate(&topo::fat_tree(8, 1.0), &fig3_config(8, 0))
}

fn bench_snapshot(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var_os("COFLOW_BENCH_QUICK").is_some_and(|v| v != "0");
    let samples = if quick { 1 } else { 5 };
    let mut points: Vec<Point> = Vec::new();

    // Transportation series, production configuration.
    for n in [100usize, 250, 500] {
        let m = transport(n);
        let (ms, stats) = measure(samples, || m.solve_with(&production_opts()).unwrap().stats);
        points.push(Point {
            name: format!("raw_simplex/transport/{n}"),
            backend: "sparse-lu",
            wall_ms_median: ms,
            samples,
            stats,
        });
    }
    // The dense-inverse baseline at the ROADMAP's reference point.
    {
        let m = transport(100);
        let (ms, stats) = measure(samples, || {
            m.solve_with(&dense_baseline_opts()).unwrap().stats
        });
        points.push(Point {
            name: "raw_simplex/transport/100".into(),
            backend: "dense-inverse-baseline",
            wall_ms_median: ms,
            samples,
            stats,
        });
    }
    // Paper-scale interval LP (fat-tree k=8, width 8).
    {
        let inst = k8_instance();
        let cfg = FreePathsLpConfig {
            solver: production_opts(),
            ..Default::default()
        };
        let (ms, stats) = measure(samples, || {
            solve_free_paths_lp_paths(&inst, &cfg).unwrap().base.stats
        });
        points.push(Point {
            name: "free_paths_lp/fat_tree_k8/8".into(),
            backend: "sparse-lu",
            wall_ms_median: ms,
            samples,
            stats,
        });
    }

    // Warm vs cold across a *sweep* of distinct same-shape trial instances
    // (the fig3/fig4 pattern): one chain threaded through consecutive
    // trials, exactly what `coflow_bench::run_point` now does per worker
    // thread.
    let sweep: Vec<Instance> = (0..4)
        .map(|trial| generate(&topo::fat_tree(4, 1.0), &fig3_config(4, trial)))
        .collect();
    let sweep_cfg = FreePathsLpConfig {
        solver: production_opts(),
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut sweep_chain = WarmChain::new();
    for inst in &sweep {
        let grid = IntervalGrid::cover(sweep_cfg.eps, inst.horizon());
        solve_free_paths_lp_paths_on_grid(inst, &sweep_cfg, grid, &mut sweep_chain).unwrap();
    }
    let sweep_warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let sweep_warm = sweep_chain.stats();
    let t0 = Instant::now();
    let mut sweep_cold_iters = 0usize;
    for inst in &sweep {
        let grid = IntervalGrid::cover(sweep_cfg.eps, inst.horizon());
        let sol = solve_free_paths_lp_paths_on_grid(inst, &sweep_cfg, grid, &mut WarmChain::new())
            .unwrap();
        sweep_cold_iters += sol.base.iterations;
    }
    let sweep_cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Warm vs cold on a growing grid sequence of the path LP.
    let inst = generate(&topo::fat_tree(4, 1.0), &fig3_config(4, 0));
    let cfg = FreePathsLpConfig {
        solver: production_opts(),
        ..Default::default()
    };
    let h = inst.horizon();
    let scales = [1.0, 2.0, 4.0];
    let t0 = Instant::now();
    let mut chain = WarmChain::new();
    for s in scales {
        let grid = IntervalGrid::cover(cfg.eps, h * s);
        solve_free_paths_lp_paths_on_grid(&inst, &cfg, grid, &mut chain).unwrap();
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm_stats = chain.stats();
    let t0 = Instant::now();
    let mut cold_iters = 0usize;
    for s in scales {
        let grid = IntervalGrid::cover(cfg.eps, h * s);
        let sol =
            solve_free_paths_lp_paths_on_grid(&inst, &cfg, grid, &mut WarmChain::new()).unwrap();
        cold_iters += sol.base.iterations;
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Derived headline numbers.
    let sparse100 = points
        .iter()
        .find(|p| p.name.ends_with("transport/100") && p.backend == "sparse-lu")
        .unwrap()
        .wall_ms_median;
    let dense100 = points
        .iter()
        .find(|p| p.backend == "dense-inverse-baseline")
        .unwrap()
        .wall_ms_median;

    let mut json = String::from("{\n  \"schema\": \"coflow-lp-bench/v1\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"points\": [\n"));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\":\"{}\",\"backend\":\"{}\",\"wall_ms_median\":{:.3},\"samples\":{},\"stats\":{}}}{}\n",
            p.name,
            p.backend,
            p.wall_ms_median,
            p.samples,
            fmt_stats(&p.stats),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        concat!(
            "  \"warm_vs_cold\": {{\"sequence\":\"free_paths_lp/fat_tree_k4/4 grids x{}\",",
            "\"warm_total_iterations\":{},\"cold_total_iterations\":{},",
            "\"warm_total_phase1\":{},\"warm_used\":{},\"warm_wall_ms\":{:.3},\"cold_wall_ms\":{:.3}}},\n"
        ),
        scales.len(),
        warm_stats.total_iterations,
        cold_iters,
        warm_stats.total_phase1,
        warm_stats.warm_used,
        warm_ms,
        cold_ms,
    ));
    json.push_str(&format!(
        concat!(
            "  \"sweep_warm_vs_cold\": {{\"sequence\":\"fig3 fat_tree_k4 width-4 trials x{}\",",
            "\"warm_total_iterations\":{},\"cold_total_iterations\":{},",
            "\"warm_used\":{},\"warm_wall_ms\":{:.3},\"cold_wall_ms\":{:.3}}},\n"
        ),
        sweep.len(),
        sweep_warm.total_iterations,
        sweep_cold_iters,
        sweep_warm.warm_used,
        sweep_warm_ms,
        sweep_cold_ms,
    ));
    json.push_str(&format!(
        "  \"derived\": {{\"transport100_speedup_vs_dense_baseline\":{:.2}}}\n}}\n",
        dense100 / sparse100
    ));

    // Cargo runs benches with the package dir as CWD; anchor the artifact
    // at the workspace-level results/ directory.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).ok();
    std::fs::write(results.join("BENCH_lp.json"), &json).expect("write results/BENCH_lp.json");
    println!(
        "lp_snapshot: transport/100 sparse {sparse100:.1}ms vs dense baseline {dense100:.1}ms \
         ({:.1}x); warm grid chain {} iters vs cold {}; warm trial sweep {} iters vs cold {} \
         — results/BENCH_lp.json",
        dense100 / sparse100,
        warm_stats.total_iterations,
        cold_iters,
        sweep_warm.total_iterations,
        sweep_cold_iters
    );
    assert!(
        warm_stats.total_iterations < cold_iters,
        "warm-started sequence must need fewer total iterations"
    );
}

criterion_group!(
    benches,
    bench_free_paths_lp,
    bench_raw_simplex,
    bench_snapshot
);
criterion_main!(benches);
