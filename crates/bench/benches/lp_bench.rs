//! Criterion microbenchmarks for the simplex solver (substrate #2):
//! scaling of the §2.2 path LP with coflow width, plus a pure-LP
//! transportation-style stress case.

use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_lp::{Cmp, Model};
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_free_paths_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("free_paths_lp");
    g.sample_size(10);
    let topo = topo::fat_tree(4, 1.0);
    for width in [2usize, 4, 8] {
        let inst = generate(&topo, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("fat_tree_k4", width), &inst, |b, inst| {
            b.iter(|| {
                let lp = solve_free_paths_lp_paths(black_box(inst), &FreePathsLpConfig::default())
                    .unwrap();
                black_box(lp.base.objective)
            })
        });
    }
    g.finish();
}

fn bench_raw_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("raw_simplex");
    g.sample_size(10);
    for n in [20usize, 50, 100] {
        // Transportation problem: n supplies, n demands, dense-ish costs.
        g.bench_with_input(BenchmarkId::new("transport", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Model::new();
                let mut vars = vec![vec![]; n];
                for (i, row) in vars.iter_mut().enumerate() {
                    for j in 0..n {
                        let cost = ((i * 7 + j * 13) % 10) as f64 + 1.0;
                        row.push(m.add_nonneg(cost, format!("x{i}_{j}")));
                    }
                }
                for (i, row) in vars.iter().enumerate() {
                    let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
                    m.add_row(Cmp::Eq, 1.0 + (i % 3) as f64, &terms);
                }
                for j in 0..n {
                    let terms: Vec<_> = (0..n).map(|i| (vars[i][j], 1.0)).collect();
                    let total: f64 = (0..n).map(|i| 1.0 + (i % 3) as f64).sum();
                    m.add_row(Cmp::Le, total / n as f64 + 1.0, &terms);
                }
                black_box(m.solve().map(|s| s.objective).unwrap_or(f64::NAN))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_free_paths_lp, bench_raw_simplex);
criterion_main!(benches);
