//! Criterion benchmark of a full experiment trial — the unit of work behind
//! every Figure 3 / Figure 4 data point (LP solve + rounding + 4 simulated
//! schemes).

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::run_trial;
use coflow_core::circuit::lp_free::FreePathsLpConfig;
use coflow_lp::SolverOptions;
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_trial");
    g.sample_size(10);
    let topo = topo::fat_tree(4, 1.0);
    let lp_cfg = FreePathsLpConfig {
        solver: SolverOptions::for_experiments(),
        ..Default::default()
    };
    for width in [2usize, 4] {
        let inst = generate(&topo, &fig3_config(width, 0));
        g.bench_with_input(BenchmarkId::new("width", width), &inst, |b, inst| {
            b.iter(|| {
                let (outs, diag) = run_trial(black_box(inst), &lp_cfg, 7);
                black_box((outs.len(), diag.lp_objective))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trial);
criterion_main!(benches);
