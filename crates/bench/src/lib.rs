//! Shared experiment machinery for regenerating the paper's tables and
//! figures (§4).
//!
//! Every binary in `src/bin/` composes the same pieces:
//!
//! 1. generate seeded instances ([`coflow_workloads`]);
//! 2. build the four §4.3 schemes — **LP-Based** (the §2.2 algorithm:
//!    path LP → randomized rounding → LP-completion-time order) and the
//!    three heuristics (Baseline, Schedule-only, Route-only);
//! 3. execute all schemes on the same fluid simulator
//!    ([`coflow_sim::fluid`]) with greedy priority-order allocation (§4.2's
//!    "start each flow as soon as possible" tweak);
//! 4. aggregate over trials, print the two panels of the paper's figures
//!    (absolute average completion time, ratio w.r.t. Baseline) and write
//!    CSV artifacts into `results/`.
//!
//! Trials run in parallel with `std::thread::scope` (the LP solve dominates
//! wall time).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use coflow_core::baselines::{self, BaselineConfig, Scheme};
use coflow_core::bounds;
use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths_on_grid, FreePathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig, PathSelection};
use coflow_core::intervals::IntervalGrid;
use coflow_core::model::Instance;
use coflow_core::order::lp_order;
use coflow_lp::WarmChain;
use coflow_sim::fluid::{simulate, SimConfig};
use std::io::Write as _;
use std::time::Instant;

/// Names of the four §4.3 schemes, in the paper's plotting order.
pub const SCHEME_NAMES: [&str; 4] = ["LP-Based", "Route-only", "Schedule-only", "Baseline"];

/// Per-trial, per-scheme outcome.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// Scheme name.
    pub scheme: &'static str,
    /// Unweighted average coflow completion time (the figures' y-axis).
    pub avg_completion: f64,
    /// `Σ ω_k C_k`.
    pub weighted_sum: f64,
}

/// Per-trial diagnostics of the LP-based pipeline.
#[derive(Clone, Debug, Default)]
pub struct LpDiagnostics {
    /// LP objective.
    pub lp_objective: f64,
    /// Lemma 5 lower bound (`LP*/2` at ε = 1).
    pub lower_bound: f64,
    /// Mean number of fractional paths per flow before rounding (§4.3).
    pub paths_per_flow: f64,
    /// Simplex pivots.
    pub iterations: usize,
    /// Phase-1 (feasibility) pivots.
    pub phase1_iterations: usize,
    /// Basis refactorizations.
    pub refactorizations: usize,
    /// Fill-in ratio of the last basis factorization.
    pub fill_ratio: f64,
    /// LP solve wall time in milliseconds.
    pub solve_ms: f64,
    /// Trials whose LP solve attempted a warm start (sum over trials when
    /// aggregated).
    pub warm_attempted: usize,
    /// Trials whose warm basis was accepted.
    pub warm_used: usize,
}

/// One experiment trial: run all four schemes on `instance`.
///
/// Returns the four outcomes plus LP diagnostics. All schemes use the same
/// candidate-path budget and the same simulator.
pub fn run_trial(
    instance: &Instance,
    lp_cfg: &FreePathsLpConfig,
    seed: u64,
) -> (Vec<TrialOutcome>, LpDiagnostics) {
    run_trial_chained(instance, lp_cfg, seed, &mut WarmChain::new())
}

/// [`run_trial`] with the LP solve warm-started through `chain`.
///
/// Sweep drivers thread one chain per worker thread across consecutive
/// trials (see [`run_point`]): trial instances of one figure point share
/// topology and shape, so their LPs are structurally close enough for the
/// previous optimal basis to be a useful start — the cross-instance
/// counterpart of the growing-grid warm starts inside `coflow-core`. A
/// rejected warm start silently degrades to the cold crash basis and
/// changes nothing; an *accepted* one keeps the objective optimal but may
/// land on a different optimal vertex than a cold solve would, so callers
/// that promise reproducible artifacts must thread chains deterministically
/// (see [`run_point`]).
pub fn run_trial_chained(
    instance: &Instance,
    lp_cfg: &FreePathsLpConfig,
    seed: u64,
    chain: &mut WarmChain,
) -> (Vec<TrialOutcome>, LpDiagnostics) {
    let sim_cfg = SimConfig::default();
    let mut outcomes = Vec::with_capacity(4);

    // --- LP-Based (§2.2 + §4.2 tweaks). ---
    let t0 = Instant::now();
    let grid = IntervalGrid::cover(lp_cfg.eps, instance.horizon());
    let lp = solve_free_paths_lp_paths_on_grid(instance, lp_cfg, grid, chain)
        // lint: allow(no_panic) — harness crate: generated instances are always feasible
        .expect("free-paths LP must be feasible on valid instances");
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rounding = round_free_paths(
        instance,
        &lp,
        &FreeRoundingConfig {
            seed,
            selection: PathSelection::LoadAware,
            ..Default::default()
        },
    );
    let order = lp_order(instance, &lp.base);
    let out = simulate(instance, &rounding.paths, &order, &sim_cfg);
    outcomes.push(TrialOutcome {
        scheme: "LP-Based",
        avg_completion: out.metrics.avg_coflow_completion,
        weighted_sum: out.metrics.weighted_sum,
    });
    let diag = LpDiagnostics {
        lp_objective: lp.base.objective,
        lower_bound: bounds::circuit_lower_bound(lp.base.objective, lp.base.grid.eps),
        paths_per_flow: rounding.paths_per_flow.iter().sum::<usize>() as f64
            / rounding.paths_per_flow.len().max(1) as f64,
        iterations: lp.base.iterations,
        phase1_iterations: lp.base.stats.phase1_iterations,
        refactorizations: lp.base.stats.refactorizations,
        fill_ratio: lp.base.stats.fill_ratio(),
        solve_ms,
        warm_attempted: lp.base.stats.warm_attempted as usize,
        warm_used: lp.base.stats.warm_used as usize,
    };

    // --- Heuristics (§4.3). ---
    let bcfg = BaselineConfig {
        path_slack: lp_cfg.path_slack,
        max_paths: lp_cfg.max_paths,
        seed,
    };
    let schemes: Vec<Scheme> = vec![
        baselines::route_only(instance, &bcfg),
        baselines::schedule_only(instance, &bcfg),
        baselines::baseline_random(instance, &bcfg),
    ];
    for s in schemes {
        let out = simulate(instance, &s.paths, &s.order, &sim_cfg);
        outcomes.push(TrialOutcome {
            scheme: s.name,
            avg_completion: out.metrics.avg_coflow_completion,
            weighted_sum: out.metrics.weighted_sum,
        });
    }
    (outcomes, diag)
}

/// Aggregated point (one x-axis value of a figure).
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// Label, e.g. "4 flows" or "10 coflows".
    pub label: String,
    /// `(scheme, mean avg-completion, mean weighted-sum)` in
    /// [`SCHEME_NAMES`] order.
    pub schemes: Vec<(String, f64, f64)>,
    /// Mean LP diagnostics across trials.
    pub diag: LpDiagnostics,
    /// Number of trials aggregated.
    pub trials: usize,
}

impl PointSummary {
    /// Mean average-completion of a scheme.
    pub fn avg_of(&self, scheme: &str) -> f64 {
        self.schemes
            .iter()
            .find(|(n, _, _)| n == scheme)
            .map(|&(_, a, _)| a)
            .unwrap_or(f64::NAN)
    }

    /// Ratio of a scheme's mean completion to Baseline's.
    pub fn ratio_to_baseline(&self, scheme: &str) -> f64 {
        self.avg_of(scheme) / self.avg_of("Baseline")
    }
}

/// Whether a sweep's per-worker trial chunks attempt cross-instance warm
/// starts (see [`run_point_with`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WarmPolicy {
    /// Never attempt a warm start: the measured verdict for sweeps of
    /// *independent* random instances (`sweep_warm_vs_cold` in
    /// `results/BENCH_lp.json`) is that every cross-instance basis mapping
    /// is rejected — identically-named variables describe different
    /// candidate paths — so even the single rejected mapping per worker
    /// the adaptive mode pays is pure waste. The default.
    #[default]
    Off,
    /// Thread one [`WarmChain`] through each worker's chunk, adaptively:
    /// stop attempting after the first rejected mapping. For sweeps whose
    /// consecutive trials genuinely share structure.
    Adaptive,
}

/// Runs `instances` as parallel trials of one figure point with the
/// default [`WarmPolicy::Off`] (independent-instance semantics — every
/// trial solves cold and `diag.warm_attempted` is asserted zero).
pub fn run_point(
    label: &str,
    instances: &[Instance],
    lp_cfg: &FreePathsLpConfig,
    threads: usize,
) -> PointSummary {
    run_point_with(label, instances, lp_cfg, threads, WarmPolicy::Off)
}

/// [`run_point`] with an explicit [`WarmPolicy`].
///
/// Trials are split into **contiguous chunks, one per worker**; under
/// [`WarmPolicy::Adaptive`] each chunk threads one [`WarmChain`] through
/// its trials in order, so consecutive same-shape LP solves can warm-start
/// off each other (`diag.warm_used` counts how many trials accepted the
/// basis). The chunking is static — not work-stealing — so which trials
/// share a chain is a pure function of `(instances, threads)`: an accepted
/// warm start may land the simplex on a different (equally optimal)
/// vertex, and dynamic scheduling would make the produced CSVs depend on
/// thread timing. Chaining is *adaptive*: once a chunk sees its warm basis
/// rejected, it stops attempting and runs its remaining trials cold, so a
/// non-transferring sweep pays for at most one rejected mapping per chunk.
/// [`WarmPolicy::Off`] skips even that, running every trial cold.
pub fn run_point_with(
    label: &str,
    instances: &[Instance],
    lp_cfg: &FreePathsLpConfig,
    threads: usize,
    warm: WarmPolicy,
) -> PointSummary {
    let workers = threads.max(1).min(instances.len().max(1));
    let per_chunk = chunk_len(instances.len(), workers);
    let chunks: Vec<(usize, &[Instance])> = instances
        .chunks(per_chunk)
        .enumerate()
        .map(|(c, chunk)| (c * per_chunk, chunk))
        .collect();
    let results: Vec<(Vec<TrialOutcome>, LpDiagnostics)> =
        run_parallel(&chunks, workers, |_, &(start, chunk)| {
            let mut chain = WarmChain::new();
            let mut gave_up = false;
            chunk
                .iter()
                .enumerate()
                .map(|(k, inst)| {
                    let seed = 1000 + (start + k) as u64;
                    if warm == WarmPolicy::Off {
                        let out = run_trial(inst, lp_cfg, seed);
                        assert_eq!(
                            out.1.warm_attempted, 0,
                            "WarmPolicy::Off trials must never attempt a warm start"
                        );
                        return out;
                    }
                    if gave_up {
                        chain.reset();
                    }
                    let out = run_trial_chained(inst, lp_cfg, seed, &mut chain);
                    if out.1.warm_attempted > out.1.warm_used {
                        gave_up = true;
                    }
                    out
                })
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

    let trials = results.len();
    let mut schemes = Vec::new();
    for name in SCHEME_NAMES {
        let mut avg = 0.0;
        let mut wsum = 0.0;
        for (outs, _) in &results {
            let o = outs
                .iter()
                .find(|o| o.scheme == name)
                // lint: allow(no_panic) — harness crate: every trial runs every scheme
                .expect("scheme missing");
            avg += o.avg_completion;
            wsum += o.weighted_sum;
        }
        schemes.push((name.to_string(), avg / trials as f64, wsum / trials as f64));
    }
    let diag = LpDiagnostics {
        lp_objective: results.iter().map(|(_, d)| d.lp_objective).sum::<f64>() / trials as f64,
        lower_bound: results.iter().map(|(_, d)| d.lower_bound).sum::<f64>() / trials as f64,
        paths_per_flow: results.iter().map(|(_, d)| d.paths_per_flow).sum::<f64>() / trials as f64,
        iterations: results.iter().map(|(_, d)| d.iterations).sum::<usize>() / trials,
        phase1_iterations: results
            .iter()
            .map(|(_, d)| d.phase1_iterations)
            .sum::<usize>()
            / trials,
        refactorizations: results
            .iter()
            .map(|(_, d)| d.refactorizations)
            .sum::<usize>()
            / trials,
        fill_ratio: results.iter().map(|(_, d)| d.fill_ratio).sum::<f64>() / trials as f64,
        solve_ms: results.iter().map(|(_, d)| d.solve_ms).sum::<f64>() / trials as f64,
        // Counts, not means: how many of the point's trials warm-started.
        warm_attempted: results.iter().map(|(_, d)| d.warm_attempted).sum(),
        warm_used: results.iter().map(|(_, d)| d.warm_used).sum(),
    };
    PointSummary {
        label: label.to_string(),
        schemes,
        diag,
        trials,
    }
}

// The worker pool lives in `coflow_lp::par` (the solver's own parallel
// pricing uses it); the harness re-exports it for the figure binaries.
pub use coflow_lp::par::{run_parallel, run_parallel_with};

/// Contiguous-chunk length for splitting `n` trials across `workers`
/// (callers guarantee `workers >= 1`): `ceil(n / workers)`, floored at 1
/// so `chunks(per_chunk)` is well-defined even for an empty sweep.
pub fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers).max(1)
}

/// Prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    // lint: allow(no_print) — this helper IS the experiment binaries' console output
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        s
    };
    let header: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    // lint: allow(no_print) — this helper IS the experiment binaries' console output
    println!("{}", line(&header));
    // lint: allow(no_print) — this helper IS the experiment binaries' console output
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        // lint: allow(no_print) — this helper IS the experiment binaries' console output
        println!("{}", line(row));
    }
}

/// Writes a CSV file (creating parent directories).
pub fn write_csv(path: &str, headers: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Prints the paper-style improvement summary:
/// improvement of LP over X = `(avg_X − avg_LP) / avg_LP × 100%` (§4.3).
pub fn print_improvements(points: &[PointSummary]) {
    let mut rows = Vec::new();
    for other in ["Baseline", "Schedule-only", "Route-only"] {
        let mut impr = 0.0;
        for p in points {
            impr += (p.avg_of(other) - p.avg_of("LP-Based")) / p.avg_of("LP-Based") * 100.0;
        }
        rows.push(vec![
            other.to_string(),
            format!("{:.0}%", impr / points.len() as f64),
        ]);
    }
    print_table(
        "Average improvement of LP-Based (paper §4.3: Fig3 = 126/96/22%, Fig4 = 110/72/26%)",
        &["vs scheme", "improvement"],
        &rows,
    );
}

/// Shared CLI parsing for the figure binaries: `--k`, `--trials`,
/// `--threads`, `--out`.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Fat-tree arity (4 → 16 hosts; 8 → the paper's 128 servers).
    pub k: usize,
    /// Trials per point (paper: 10).
    pub trials: usize,
    /// Worker threads.
    pub threads: usize,
    /// CSV output path.
    pub out: Option<String>,
}

impl CommonArgs {
    /// Parses from `std::env::args`, with defaults scaled to finish in
    /// minutes on a laptop (`--k 8 --trials 10` reproduces the paper's
    /// exact setting).
    pub fn parse(default_out: &str) -> Self {
        let mut a = Self {
            k: 4,
            trials: 5,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            out: Some(default_out.to_string()),
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--k" => {
                    // lint: allow(no_panic) — CLI arg parsing: fail fast with usage text
                    a.k = argv[i + 1].parse().expect("--k <even int>");
                    i += 2;
                }
                "--trials" => {
                    // lint: allow(no_panic) — CLI arg parsing: fail fast with usage text
                    a.trials = argv[i + 1].parse().expect("--trials <int>");
                    i += 2;
                }
                "--threads" => {
                    // lint: allow(no_panic) — CLI arg parsing: fail fast with usage text
                    a.threads = argv[i + 1].parse().expect("--threads <int>");
                    i += 2;
                }
                "--out" => {
                    a.out = Some(argv[i + 1].clone());
                    i += 2;
                }
                "--no-csv" => {
                    a.out = None;
                    i += 1;
                }
                // lint: allow(no_panic) — CLI arg parsing: fail fast with usage text
                other => panic!("unknown argument {other}"),
            }
        }
        a
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::tol;
    use coflow_net::topo;
    use coflow_workloads::gen::{generate, GenConfig};

    fn small_instance(seed: u64) -> Instance {
        let t = topo::fat_tree(4, 1.0);
        generate(
            &t,
            &GenConfig {
                n_coflows: 3,
                width: 3,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn trial_produces_all_four_schemes() {
        let inst = small_instance(5);
        let (outs, diag) = run_trial(&inst, &FreePathsLpConfig::default(), 0);
        assert_eq!(outs.len(), 4);
        for name in SCHEME_NAMES {
            assert!(outs.iter().any(|o| o.scheme == name), "missing {name}");
        }
        assert!(diag.lower_bound > 0.0);
        assert!(diag.paths_per_flow >= 1.0);
        // Lower bound must not exceed any scheme's weighted cost.
        for o in &outs {
            assert!(
                diag.lower_bound <= o.weighted_sum + tol::FEAS_EPS,
                "{}: LB {} > cost {}",
                o.scheme,
                diag.lower_bound,
                o.weighted_sum
            );
        }
    }

    #[test]
    fn point_aggregates_trials() {
        let instances: Vec<Instance> = (0..2).map(small_instance).collect();
        let p = run_point("test", &instances, &FreePathsLpConfig::default(), 2);
        assert_eq!(p.trials, 2);
        assert_eq!(p.schemes.len(), 4);
        assert!(p.avg_of("LP-Based") > 0.0);
        assert!(tol::rel_eq(
            p.ratio_to_baseline("Baseline"),
            1.0,
            tol::OBJ_REL_EPS
        ));
    }

    /// Chained trials must reproduce unchained results (warm starts are a
    /// speed lever, never a result change) while actually warm-starting.
    #[test]
    fn chained_trials_match_cold_and_warm_start() {
        let instances: Vec<Instance> = (0..3).map(small_instance).collect();
        let lp_cfg = FreePathsLpConfig::default();
        let mut chain = WarmChain::new();
        let mut attempted = 0;
        for (i, inst) in instances.iter().enumerate() {
            let (warm_outs, warm_diag) =
                run_trial_chained(inst, &lp_cfg, 1000 + i as u64, &mut chain);
            let (cold_outs, cold_diag) = run_trial(inst, &lp_cfg, 1000 + i as u64);
            assert!(
                tol::rel_eq(
                    warm_diag.lp_objective,
                    cold_diag.lp_objective,
                    tol::OBJ_REL_EPS
                ),
                "trial {i}: warm obj {} vs cold {}",
                warm_diag.lp_objective,
                cold_diag.lp_objective
            );
            for (w, c) in warm_outs.iter().zip(&cold_outs) {
                assert_eq!(w.scheme, c.scheme);
                assert!(
                    tol::rel_eq(w.avg_completion, c.avg_completion, tol::OBJ_REL_EPS),
                    "{}: warm {} vs cold {}",
                    w.scheme,
                    w.avg_completion,
                    c.avg_completion
                );
            }
            attempted += warm_diag.warm_attempted;
            assert_eq!(cold_diag.warm_attempted, 0);
        }
        assert_eq!(attempted, 2, "every trial after the first attempts warm");
    }

    /// The default sweep policy runs every trial cold: no warm start is
    /// ever attempted (independent instances never transfer a basis, so
    /// even one rejected mapping per worker is waste).
    #[test]
    fn warm_policy_off_never_attempts() {
        let instances: Vec<Instance> = (0..3).map(small_instance).collect();
        let p = run_point("off", &instances, &FreePathsLpConfig::default(), 2);
        assert_eq!(p.diag.warm_attempted, 0);
        assert_eq!(p.diag.warm_used, 0);
        assert_eq!(p.trials, 3);
    }

    /// The adaptive policy still threads chains for sweeps that want it.
    #[test]
    fn warm_policy_adaptive_attempts_within_chunks() {
        let instances: Vec<Instance> = (0..3).map(small_instance).collect();
        let p = run_point_with(
            "adaptive",
            &instances,
            &FreePathsLpConfig::default(),
            1,
            WarmPolicy::Adaptive,
        );
        assert!(
            p.diag.warm_attempted >= 1,
            "one chunk must attempt at least once"
        );
    }

    #[test]
    fn parallel_with_threads_state_through_workers() {
        let items: Vec<usize> = (0..9).collect();
        // Single worker: the counter state sees every item in order.
        let out = run_parallel_with(
            &items,
            1,
            || 0usize,
            |seen, _, &x| {
                *seen += 1;
                (*seen, x * 2)
            },
        );
        assert_eq!(
            out.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            (1..=9).collect::<Vec<_>>()
        );
        assert_eq!(
            out.iter().map(|&(_, d)| d).collect::<Vec<_>>(),
            (0..9).map(|x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..17).collect();
        let out = run_parallel(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..17).map(|x| x * 2).collect::<Vec<_>>());
    }

    /// Every item lands in exactly one chunk, chunk count never exceeds
    /// the worker count, and degenerate shapes (empty sweep, more workers
    /// than items) stay well-defined.
    #[test]
    fn chunk_len_partitions_exactly() {
        for n in [0usize, 1, 2, 5, 16, 17, 100] {
            for workers in [1usize, 2, 3, 4, 8] {
                let per = chunk_len(n, workers);
                assert!(per >= 1);
                let chunks = n.div_ceil(per);
                assert!(
                    chunks <= workers,
                    "n={n} workers={workers}: {chunks} chunks"
                );
                let covered: usize = (0..chunks).map(|c| per.min(n - c * per)).sum();
                assert_eq!(covered, n, "n={n} workers={workers}");
            }
        }
        assert_eq!(chunk_len(0, 4), 1, "empty sweep yields empty chunk iter");
        assert_eq!(chunk_len(10, 3), 4);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("coflow-bench-test");
        let path = dir.join("t.csv");
        write_csv(
            path.to_str().unwrap(),
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        std::fs::remove_file(&path).ok();
    }
}
