//! **Ablation A2**: sensitivity of the §2.1 α-point rounding to its
//! parameters (α, D, ε). The paper optimizes (α=0.5, D=3, ε≈0.5436) for the
//! worst-case factor 17.54 (Eq. 12–14); this ablation shows the measured
//! cost and stretch across the parameter grid, on given-path (star)
//! instances.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin ablation_alpha [--trials N]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{print_table, write_csv, CommonArgs};
use coflow_core::bounds;
use coflow_core::circuit::lp_given::{solve_given_paths_lp, GivenPathsLpConfig};
use coflow_core::circuit::round_given::{round_given_paths, RoundingConfig};
use coflow_core::model::Instance;
use coflow_net::{paths as netpaths, topo};
use coflow_workloads::gen::{generate, GenConfig};

fn main() {
    let args = CommonArgs::parse("results/ablation_alpha.csv");
    let trials = args.trials.max(3);
    let t = topo::star(8, 1.0);
    println!(
        "α/D/ε ablation of the given-paths rounding, {} trials per cell",
        trials
    );

    let instances: Vec<Instance> = (0..trials)
        .map(|trial| {
            let inst = generate(
                &t,
                &GenConfig {
                    n_coflows: 5,
                    width: 4,
                    size_mean: 6.0,
                    seed: 0xA1FA + trial as u64,
                    ..Default::default()
                },
            );
            let paths: Vec<_> = inst
                .flows()
                .map(|(_, _, f)| netpaths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap())
                .collect();
            inst.with_paths(&paths)
        })
        .collect();

    let mut rows = Vec::new();
    for &eps in &[0.3, coflow_core::PAPER_EPS, 1.0] {
        // LP once per ε (rounding params don't change the LP).
        let lps: Vec<_> = instances
            .iter()
            .map(|inst| {
                solve_given_paths_lp(
                    inst,
                    &GivenPathsLpConfig {
                        eps,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
            .collect();
        for &alpha in &[0.25, 0.5, 0.75, 1.0] {
            for &d in &[1usize, 2, 3, 4] {
                let mut ratio_sum = 0.0;
                let mut stretch_max = 0.0_f64;
                for (inst, lp) in instances.iter().zip(&lps) {
                    let r = round_given_paths(
                        inst,
                        lp,
                        &RoundingConfig {
                            alpha,
                            displacement: d,
                        },
                    );
                    debug_assert!(r.schedule.check(inst, 1e-6, 1e-6).is_empty());
                    let lb = bounds::circuit_lower_bound(lp.objective, eps);
                    ratio_sum += r.metrics.weighted_sum / lb;
                    stretch_max = stretch_max.max(r.max_stretch);
                }
                rows.push(vec![
                    format!("{eps:.4}"),
                    format!("{alpha:.2}"),
                    format!("{d}"),
                    format!("{:.2}", ratio_sum / instances.len() as f64),
                    format!("{stretch_max:.2}"),
                ]);
            }
        }
    }
    print_table(
        "α-point rounding sensitivity (mean cost/LB, max interval stretch); paper picks ε=0.5436, α=0.5, D=3",
        &["eps", "alpha", "D", "cost/LB", "max stretch"],
        &rows,
    );

    if let Some(out) = &args.out {
        write_csv(
            out,
            &["eps", "alpha", "D", "cost_over_lb", "max_stretch"],
            &rows,
        )
        .expect("csv write");
        println!("\nWrote {out}");
    }
}
