//! **Table 1** counterpart: empirical approximation ratios for all four
//! models, measured as `realized cost / LP lower bound` on random
//! instances, printed next to the paper's proven bounds.
//!
//! The theory bounds are worst-case; the measured ratios being far below
//! them (and the packet models' being small constants) is the expected
//! outcome — §4.3 notes "the worst-case approximation ratio ... does not
//! happen in practice".
//!
//! ```text
//! cargo run --release -p coflow-bench --bin table1_ratios [--trials N]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{print_table, write_csv, CommonArgs};
use coflow_core::bounds;
use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_core::circuit::lp_given::{solve_given_paths_lp, GivenPathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig};
use coflow_core::circuit::round_given::{round_given_paths, RoundingConfig};
use coflow_core::packet::free::{route_and_schedule, PacketFreeConfig};
use coflow_core::packet::jobshop::{schedule_given_paths, PacketConfig};
use coflow_net::{paths as netpaths, topo};
use coflow_workloads::gen::{generate, generate_packets, GenConfig};

struct Row {
    model: &'static str,
    paths: &'static str,
    theory: &'static str,
    ratios: Vec<f64>,
}

fn main() {
    let args = CommonArgs::parse("results/table1_ratios.csv");
    let trials = args.trials.max(3);
    println!("Table 1 counterpart: measured approximation ratios over {trials} trials/model");

    let mut rows: Vec<Row> = Vec::new();

    // --- Circuit, given paths (§2.1, bound 17.6). On a star every pair has
    // a unique path, the canonical given-paths topology. Sizes are >= 1 so
    // the interval normalization is meaningful.
    {
        let t = topo::star(8, 1.0);
        let mut ratios = Vec::new();
        for trial in 0..trials {
            let cfg = GenConfig {
                n_coflows: 4,
                width: 4,
                size_mean: 6.0,
                seed: 0xAA00 + trial as u64,
                ..Default::default()
            };
            let inst = generate(&t, &cfg);
            let routed = {
                let paths: Vec<_> = inst
                    .flows()
                    .map(|(_, _, f)| {
                        netpaths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap()
                    })
                    .collect();
                inst.with_paths(&paths)
            };
            let lp = solve_given_paths_lp(&routed, &GivenPathsLpConfig::default()).unwrap();
            let r = round_given_paths(&routed, &lp, &RoundingConfig::default());
            assert!(r.schedule.check(&routed, 1e-6, 1e-6).is_empty());
            let lb = bounds::circuit_lower_bound(lp.objective, lp.grid.eps);
            ratios.push(r.metrics.weighted_sum / lb);
        }
        rows.push(Row {
            model: "Circuit",
            paths: "given",
            theory: "17.6 (O(1))",
            ratios,
        });
    }

    // --- Circuit, paths not given (§2.2, bound O(log E / log log E)).
    {
        let t = topo::fat_tree(4, 1.0);
        let mut ratios = Vec::new();
        for trial in 0..trials {
            let cfg = GenConfig {
                n_coflows: 4,
                width: 4,
                size_mean: 6.0,
                seed: 0xBB00 + trial as u64,
                ..Default::default()
            };
            let inst = generate(&t, &cfg);
            let lp = solve_free_paths_lp_paths(&inst, &FreePathsLpConfig::default()).unwrap();
            let r = round_free_paths(
                &inst,
                &lp,
                &FreeRoundingConfig {
                    seed: trial as u64,
                    ..Default::default()
                },
            );
            let routed = inst.with_paths(&r.paths);
            assert!(r.rounded.schedule.check(&routed, 1e-6, 1e-6).is_empty());
            let lb = bounds::circuit_lower_bound(lp.base.objective, lp.base.grid.eps);
            ratios.push(r.rounded.metrics.weighted_sum / lb);
        }
        rows.push(Row {
            model: "Circuit",
            paths: "not given",
            theory: "O(log E/loglog E)",
            ratios,
        });
    }

    // --- Packet, given paths (§3.1, O(1)).
    {
        let t = topo::grid(3, 3, 1.0);
        let mut ratios = Vec::new();
        for trial in 0..trials {
            let cfg = GenConfig {
                n_coflows: 4,
                width: 3,
                seed: 0xCC00 + trial as u64,
                ..Default::default()
            };
            let inst = generate_packets(&t, &cfg);
            let routed = {
                let paths: Vec<_> = inst
                    .flows()
                    .map(|(_, _, f)| {
                        netpaths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap()
                    })
                    .collect();
                inst.with_paths(&paths)
            };
            let r = schedule_given_paths(&routed, &PacketConfig::default()).unwrap();
            assert!(r.schedule.check(&routed).is_empty());
            let lb = bounds::packet_lower_bound(r.lp_objective);
            ratios.push(r.metrics.weighted_sum / lb);
        }
        rows.push(Row {
            model: "Packet",
            paths: "given",
            theory: "O(1)",
            ratios,
        });
    }

    // --- Packet, paths not given (§3.2, O(1)).
    {
        let t = topo::grid(3, 3, 1.0);
        let mut ratios = Vec::new();
        for trial in 0..trials {
            let cfg = GenConfig {
                n_coflows: 4,
                width: 3,
                seed: 0xDD00 + trial as u64,
                ..Default::default()
            };
            let inst = generate_packets(&t, &cfg);
            let r = route_and_schedule(&inst, &PacketFreeConfig::default()).unwrap();
            assert!(r.schedule.check(&inst).is_empty());
            let lb = bounds::packet_lower_bound(r.lp_objective);
            ratios.push(r.metrics.weighted_sum / lb);
        }
        rows.push(Row {
            model: "Packet",
            paths: "not given",
            theory: "O(1)",
            ratios,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mean = r.ratios.iter().sum::<f64>() / r.ratios.len() as f64;
            let max = r.ratios.iter().copied().fold(0.0_f64, f64::max);
            vec![
                r.model.to_string(),
                r.paths.to_string(),
                r.theory.to_string(),
                format!("{mean:.2}"),
                format!("{max:.2}"),
            ]
        })
        .collect();
    print_table(
        "Measured approximation ratios (cost / LP lower bound)",
        &["model", "paths", "theory bound", "mean ratio", "max ratio"],
        &table,
    );

    if let Some(out) = &args.out {
        write_csv(
            out,
            &["model", "paths", "theory", "mean_ratio", "max_ratio"],
            &table,
        )
        .expect("csv write");
        println!("\nWrote {out}");
    }
}
