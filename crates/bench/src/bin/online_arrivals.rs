//! **Online arrivals**: arrival-rate × policy sweep of the online engine
//! on a fat-tree, the workspace's first experiment in the coflows-arrive-
//! over-time regime (the setting of the iterated-rounding and
//! parallel-networks follow-up papers).
//!
//! For each Poisson arrival rate, every [`OnlinePolicy`] schedules the
//! same trace; `LpOrder` additionally runs twice — once threading its
//! [`WarmChain`] across epoch re-solves and once forced cold — so the
//! warm-start pivot saving is a *measured* artifact. Results (per-policy
//! objectives plus per-epoch `SolveStats`) land in
//! `results/BENCH_online.json` through the same hand-rolled JSON as the
//! instance snapshots.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin online_arrivals \
//!     [--k 4] [--coflows 8] [--width 4] [--trials 3] [--smoke] [--out results/BENCH_online.json]
//! ```
//!
//! [`OnlinePolicy`]: coflow_engine::OnlinePolicy
//! [`WarmChain`]: coflow_lp::WarmChain

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::print_table;
use coflow_core::circuit::lp_free::FreePathsLpConfig;
use coflow_core::circuit::round_free::{FreeRoundingConfig, PathSelection};
use coflow_engine::{run, EngineConfig, EngineMetrics, Fifo, Greedy, LpOrder, WeightedFair};
use coflow_faults::{FaultPlan, FaultPlanConfig};
use coflow_lp::Budget;
use coflow_net::topo;
use coflow_workloads::gen::{generate, GenConfig};
use coflow_workloads::io::Value;

struct Args {
    k: usize,
    coflows: usize,
    width: usize,
    trials: usize,
    rates: Vec<f64>,
    out: String,
}

fn parse_args() -> Args {
    let smoke_env = std::env::var_os("COFLOW_BENCH_QUICK").is_some_and(|v| v != "0");
    let mut a = Args {
        k: 4,
        coflows: 8,
        width: 4,
        trials: 3,
        rates: vec![0.25, 0.5, 1.0],
        out: "results/BENCH_online.json".into(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut smoke = smoke_env;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--k" => {
                a.k = argv[i + 1].parse().expect("--k <even int>");
                i += 2;
            }
            "--coflows" => {
                a.coflows = argv[i + 1].parse().expect("--coflows <int>");
                i += 2;
            }
            "--width" => {
                a.width = argv[i + 1].parse().expect("--width <int>");
                i += 2;
            }
            "--trials" => {
                a.trials = argv[i + 1].parse().expect("--trials <int>");
                i += 2;
            }
            "--rates" => {
                a.rates = argv[i + 1]
                    .split(',')
                    .map(|s| s.parse().expect("--rates <f,f,f>"))
                    .collect();
                i += 2;
            }
            "--out" => {
                a.out = argv[i + 1].clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if smoke {
        a.coflows = a.coflows.min(5);
        a.width = a.width.min(3);
        a.trials = 1;
    }
    assert!(a.rates.len() >= 3, "need at least 3 arrival rates");
    assert!(a.trials >= 1, "need at least 1 trial (--trials)");
    a
}

fn lp_cfgs(seed: u64) -> (FreePathsLpConfig, FreeRoundingConfig) {
    let lp_cfg = FreePathsLpConfig {
        solver: coflow_lp::SolverOptions::for_experiments(),
        ..Default::default()
    };
    let round_cfg = FreeRoundingConfig {
        seed,
        selection: PathSelection::LoadAware,
        ..Default::default()
    };
    (lp_cfg, round_cfg)
}

fn lp_policy(seed: u64, warm: bool) -> LpOrder {
    let (lp_cfg, round_cfg) = lp_cfgs(seed);
    if warm {
        LpOrder::new(lp_cfg, round_cfg)
    } else {
        LpOrder::cold(lp_cfg, round_cfg)
    }
}

/// The column-generation policies of the pooled-vs-cold-pool A/B: one
/// keeps its path pool (and warm chain) across epochs, the other clears
/// both every epoch.
fn lp_colgen_policy(seed: u64, pooled: bool) -> LpOrder {
    let (lp_cfg, round_cfg) = lp_cfgs(seed);
    if pooled {
        LpOrder::colgen(lp_cfg, round_cfg)
    } else {
        LpOrder::colgen_cold_pool(lp_cfg, round_cfg)
    }
}

/// The faulted series: the warm LP policy under a solver budget with a
/// seeded [`FaultPlan`] injecting singular factorizations and pricing
/// faults — the measured cost of surviving (budgets + recovery ladder +
/// degradation ladder) relative to the clean `LpOrder` series.
fn lp_faulted_policy(seed: u64) -> (LpOrder, std::sync::Arc<coflow_faults::FaultCounters>) {
    let (lp_cfg, round_cfg) = lp_cfgs(seed);
    let lp_cfg = FreePathsLpConfig {
        solver: coflow_lp::SolverOptions {
            budget: Budget {
                max_pivots: Some(2_000),
                ..Budget::default()
            },
            ..lp_cfg.solver
        },
        ..lp_cfg
    };
    let mut pol = LpOrder::new(lp_cfg, round_cfg);
    let plan = FaultPlan::new(FaultPlanConfig {
        seed: seed ^ 0xFA17,
        ..Default::default()
    });
    let counters = plan.counters();
    pol.set_fault_hook(Some(Box::new(plan)));
    (pol, counters)
}

/// Sums a metric over per-trial engine metrics.
fn total(ms: &[EngineMetrics], f: impl Fn(&EngineMetrics) -> f64) -> f64 {
    ms.iter().map(f).sum()
}

fn main() {
    let args = parse_args();
    let t = topo::fat_tree(args.k, 1.0);
    println!(
        "Online arrivals on {} ({} hosts): {} coflows x width {}, rates {:?}, {} trial(s)/rate",
        t.name,
        t.host_count(),
        args.coflows,
        args.width,
        args.rates,
        args.trials
    );
    let cfg = EngineConfig::default();

    let mut points: Vec<Value> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut warm_pivots_total = 0usize;
    let mut cold_pivots_total = 0usize;
    let mut warm_ms_total = 0.0;
    let mut cold_ms_total = 0.0;
    let mut pooled: Vec<EngineMetrics> = Vec::new();
    let mut coldpool: Vec<EngineMetrics> = Vec::new();

    for (ri, &rate) in args.rates.iter().enumerate() {
        let instances: Vec<_> = (0..args.trials)
            .map(|trial| {
                generate(
                    &t,
                    &GenConfig {
                        n_coflows: args.coflows,
                        width: args.width,
                        size_mean: 3.0,
                        arrival_rate: rate,
                        jitter_rate: 2.0,
                        // Keyed by sweep position, not the rate value:
                        // nearby rates must not collide to one seed.
                        seed: 0x011E_0000 + (ri as u64) * 10_000 + trial as u64,
                        ..Default::default()
                    },
                )
            })
            .collect();

        // name -> per-trial engine metrics
        let mut per_policy: Vec<(&str, Vec<EngineMetrics>)> = vec![
            ("LpOrder", Vec::new()),
            ("Greedy", Vec::new()),
            ("WeightedFair", Vec::new()),
            ("Fifo", Vec::new()),
        ];
        let mut lp_cold: Vec<EngineMetrics> = Vec::new();
        let mut lp_faulted: Vec<EngineMetrics> = Vec::new();
        let mut faults_injected = 0u64;

        for (trial, inst) in instances.iter().enumerate() {
            let seed = trial as u64;
            for (name, metrics) in per_policy.iter_mut() {
                let out = match *name {
                    "LpOrder" => run(inst, &mut lp_policy(seed, true), &cfg),
                    "Greedy" => run(inst, &mut Greedy, &cfg),
                    "WeightedFair" => run(inst, &mut WeightedFair, &cfg),
                    "Fifo" => run(inst, &mut Fifo, &cfg),
                    _ => unreachable!(),
                };
                // Feasibility is asserted on every run: the online engine
                // must never oversubscribe a link or jump a release.
                let routed = inst.with_paths(&out.paths);
                let violations = out.schedule.check(&routed, 1e-6, 1e-6);
                assert!(violations.is_empty(), "{name}: {violations:?}");
                metrics.push(out.engine);
            }
            // The warm-vs-cold A/B for the LP policy.
            lp_cold.push(run(inst, &mut lp_policy(seed, false), &cfg).engine);
            // The pooled-vs-cold-pool A/B for the column-generation mode
            // (both feasibility-checked like the main policies).
            for (pooled_mode, sink) in [(true, &mut pooled), (false, &mut coldpool)] {
                let out = run(inst, &mut lp_colgen_policy(seed, pooled_mode), &cfg);
                let routed = inst.with_paths(&out.paths);
                let violations = out.schedule.check(&routed, 1e-6, 1e-6);
                assert!(violations.is_empty(), "colgen lp: {violations:?}");
                sink.push(out.engine);
            }
            // The faulted series: same workload, solver faults injected.
            // Feasibility and full completion must survive the faults —
            // that is the series' whole point.
            let (mut faulted_pol, counters) = lp_faulted_policy(seed);
            let out = run(inst, &mut faulted_pol, &cfg);
            let routed = inst.with_paths(&out.paths);
            let violations = out.schedule.check(&routed, 1e-6, 1e-6);
            assert!(violations.is_empty(), "faulted lp: {violations:?}");
            assert!(
                out.flow_completion.iter().all(|&c| c > 0.0),
                "faulted lp left flows unfinished"
            );
            faults_injected += counters.total();
            lp_faulted.push(out.engine);
        }

        let warm = &per_policy[0].1;
        let wp = total(warm, |m| m.total_pivots as f64) as usize;
        let cp = total(&lp_cold, |m| m.total_pivots as f64) as usize;
        warm_pivots_total += wp;
        cold_pivots_total += cp;
        warm_ms_total += total(warm, |m| m.total_resolve_ms);
        cold_ms_total += total(&lp_cold, |m| m.total_resolve_ms);
        println!(
            "  rate {rate}: LpOrder re-solves warm {} pivots vs cold {} ({} of {} epochs reused the basis)",
            wp,
            cp,
            total(warm, |m| m.warm_used as f64) as usize,
            total(warm, |m| m.epochs as f64) as usize,
        );

        for (name, ms) in &per_policy {
            let trials = ms.len() as f64;
            rows.push(vec![
                format!("{rate}"),
                name.to_string(),
                format!("{:.2}", total(ms, |m| m.weighted_sum) / trials),
                format!("{:.2}", total(ms, |m| m.avg_coflow_completion) / trials),
                format!("{:.0}", total(ms, |m| m.epochs as f64) / trials),
                format!("{:.0}", total(ms, |m| m.total_pivots as f64) / trials),
                format!("{:.1}", total(ms, |m| m.total_resolve_ms) / trials),
            ]);
        }

        points.push(Value::Obj(vec![
            ("arrival_rate".into(), Value::Num(rate)),
            ("trials".into(), Value::Num(args.trials as f64)),
            (
                "policies".into(),
                Value::Arr(per_policy.iter().map(|(_, ms)| summarize(ms)).collect()),
            ),
            ("lp_cold".into(), summarize(&lp_cold)),
            (
                "lp_faulted".into(),
                Value::Obj(vec![
                    ("summary".into(), summarize(&lp_faulted)),
                    ("faults_injected".into(), Value::Num(faults_injected as f64)),
                    (
                        "degraded_epochs".into(),
                        Value::Num(total(&lp_faulted, |m| m.degraded_epochs as f64)),
                    ),
                    (
                        "fallback_policy_uses".into(),
                        Value::Num(total(&lp_faulted, |m| m.fallback_policy_uses as f64)),
                    ),
                    (
                        "stale_schedule_ms".into(),
                        Value::Num(total(&lp_faulted, |m| m.stale_schedule_ms)),
                    ),
                ]),
            ),
            // Full per-epoch SolveStats of the first trial's warm LP run.
            ("lp_warm_trial0".into(), warm[0].to_json()),
        ]));
        println!(
            "  rate {rate}: faulted LpOrder survived {faults_injected} injected faults \
             ({} degraded epochs, {} fallback epochs)",
            total(&lp_faulted, |m| m.degraded_epochs as f64) as usize,
            total(&lp_faulted, |m| m.fallback_policy_uses as f64) as usize,
        );
    }

    print_table(
        "Online engine: mean weighted objective per policy",
        &[
            "rate",
            "policy",
            "Σ ω·C",
            "avg C",
            "epochs",
            "pivots",
            "resolve ms",
        ],
        &rows,
    );
    println!(
        "\nwarm-started epoch re-solves: {warm_pivots_total} total pivots vs {cold_pivots_total} cold \
         ({:.2}x), {warm_ms_total:.0} ms vs {cold_ms_total:.0} ms",
        cold_pivots_total as f64 / warm_pivots_total.max(1) as f64
    );
    assert!(
        warm_pivots_total < cold_pivots_total,
        "warm-started re-solves must need fewer total pivots than cold"
    );

    // Pooled vs cold-pool column generation, aggregated over all rates.
    let agg = |ms: &[EngineMetrics]| {
        (
            total(ms, |m| m.total_pivots as f64) as usize,
            total(ms, |m| m.total_columns_generated as f64) as usize,
            total(ms, |m| m.total_columns as f64) as usize,
            total(ms, |m| m.total_resolve_ms),
        )
    };
    let (pooled_pivots, pooled_generated, pooled_columns, pooled_ms) = agg(&pooled);
    let (cp_pivots, cp_generated, cp_columns, cp_ms) = agg(&coldpool);
    // No directional assert on the column totals: the two runs follow
    // different trajectories (a different optimal vertex changes routing
    // commitments, hence residuals, hence pricing demand), so only the
    // within-trajectory comparison — tested deterministically in
    // `crates/engine/tests/online_props.rs` — is an invariant. The pivot
    // total is the headline: pooled masters start from both the previous
    // basis and the previously generated columns.
    println!(
        "colgen epoch re-solves: pooled {pooled_pivots} pivots / {pooled_generated} generated columns \
         vs cold-pool {cp_pivots} / {cp_generated} ({pooled_ms:.0} ms vs {cp_ms:.0} ms)"
    );

    // Steady-state allocation audit: one batch instance (every coflow
    // arrives at t = 0, epochs are completion-triggered), pooled colgen
    // policy. After the first epoch the LP keeps its shape, so every
    // later re-solve must run inside retained scratch: allocs == 0 (the
    // invariant `crates/engine/tests/online_props.rs` asserts; recorded
    // here so the artifact carries the measured numbers).
    let batch = generate(
        &t,
        &GenConfig {
            n_coflows: args.coflows,
            width: args.width,
            size_mean: 3.0,
            arrival_rate: 0.0,
            jitter_rate: 0.0,
            seed: 0x5EED,
            ..Default::default()
        },
    );
    let steady_out = run(&batch, &mut lp_colgen_policy(0, true), &cfg);
    let steady = steady_out.engine;
    let steady_solves: Vec<_> = steady.epoch_log.iter().filter_map(|e| e.solve).collect();
    let allocs_after_first: usize = steady_solves.iter().skip(1).map(|s| s.allocs).sum();
    let reuse_total: usize = steady_solves.iter().map(|s| s.scratch_reuse).sum();
    println!(
        "steady-state scratch: allocs per epoch {:?}, {} reuses total ({} allocs after first epoch)",
        steady_solves.iter().map(|s| s.allocs).collect::<Vec<_>>(),
        reuse_total,
        allocs_after_first
    );

    let doc = Value::Obj(vec![
        ("schema".into(), Value::Str("coflow-online-bench/v1".into())),
        (
            "topology".into(),
            Value::Obj(vec![
                ("name".into(), Value::Str(t.name.clone())),
                ("hosts".into(), Value::Num(t.host_count() as f64)),
            ]),
        ),
        ("coflows".into(), Value::Num(args.coflows as f64)),
        ("width".into(), Value::Num(args.width as f64)),
        (
            "arrival_rates".into(),
            Value::Arr(args.rates.iter().map(|&r| Value::Num(r)).collect()),
        ),
        ("points".into(), Value::Arr(points)),
        (
            "warm_vs_cold".into(),
            Value::Obj(vec![
                (
                    "warm_total_pivots".into(),
                    Value::Num(warm_pivots_total as f64),
                ),
                (
                    "cold_total_pivots".into(),
                    Value::Num(cold_pivots_total as f64),
                ),
                ("warm_total_ms".into(), Value::Num(warm_ms_total)),
                ("cold_total_ms".into(), Value::Num(cold_ms_total)),
            ]),
        ),
        (
            "pooled_vs_cold_pool".into(),
            Value::Obj(vec![
                (
                    "pooled_total_pivots".into(),
                    Value::Num(pooled_pivots as f64),
                ),
                (
                    "cold_pool_total_pivots".into(),
                    Value::Num(cp_pivots as f64),
                ),
                (
                    "pooled_columns_generated".into(),
                    Value::Num(pooled_generated as f64),
                ),
                (
                    "cold_pool_columns_generated".into(),
                    Value::Num(cp_generated as f64),
                ),
                (
                    "pooled_total_columns".into(),
                    Value::Num(pooled_columns as f64),
                ),
                (
                    "cold_pool_total_columns".into(),
                    Value::Num(cp_columns as f64),
                ),
                ("pooled_total_ms".into(), Value::Num(pooled_ms)),
                ("cold_pool_total_ms".into(), Value::Num(cp_ms)),
            ]),
        ),
        (
            "steady_state_scratch".into(),
            Value::Obj(vec![
                ("epochs".into(), Value::Num(steady_solves.len() as f64)),
                (
                    "allocs_per_epoch".into(),
                    Value::Arr(
                        steady_solves
                            .iter()
                            .map(|s| Value::Num(s.allocs as f64))
                            .collect(),
                    ),
                ),
                (
                    "allocs_after_first_epoch".into(),
                    Value::Num(allocs_after_first as f64),
                ),
                ("scratch_reuse_total".into(), Value::Num(reuse_total as f64)),
            ]),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, doc.render()).expect("write BENCH_online.json");
    println!("Wrote {}", args.out);

    // The engine trace of the steady-state run (epoch/plan spans plus the
    // resolve-latency histogram) lands next to the JSON snapshot for
    // `trace_view`; under COFLOW_OBS_CLOCK=logical it byte-diffs clean
    // across runs.
    let trace_path = std::path::Path::new(&args.out).with_file_name("TRACE_online.jsonl");
    coflow_workloads::io::write_trace(&trace_path, &steady_out.trace)
        .expect("write TRACE_online.jsonl");
    println!(
        "Wrote {} ({} spans, resolve p50 {:.3}ms p99 {:.3}ms)",
        trace_path.display(),
        steady_out.trace.spans.len(),
        steady.resolve_ms_p50,
        steady.resolve_ms_p99,
    );
}

/// Aggregate JSON summary of one policy's trials at one rate.
fn summarize(ms: &[EngineMetrics]) -> Value {
    let n = ms.len().max(1) as f64;
    Value::Obj(vec![
        ("policy".into(), Value::Str(ms[0].policy.clone())),
        (
            "mean_weighted_sum".into(),
            Value::Num(total(ms, |m| m.weighted_sum) / n),
        ),
        (
            "mean_avg_completion".into(),
            Value::Num(total(ms, |m| m.avg_coflow_completion) / n),
        ),
        (
            "total_epochs".into(),
            Value::Num(total(ms, |m| m.epochs as f64)),
        ),
        (
            "total_pivots".into(),
            Value::Num(total(ms, |m| m.total_pivots as f64)),
        ),
        (
            "total_resolve_ms".into(),
            Value::Num(total(ms, |m| m.total_resolve_ms)),
        ),
        (
            "warm_used".into(),
            Value::Num(total(ms, |m| m.warm_used as f64)),
        ),
        (
            "warm_attempted".into(),
            Value::Num(total(ms, |m| m.warm_attempted as f64)),
        ),
    ])
}
