//! Convert instance snapshots between the JSON and binary formats.
//!
//! Usage: `snapshot_convert <input> <output>`
//!
//! The direction is inferred from the file extensions: `.json` is the
//! textual format (`coflow_workloads::io`), anything else — by
//! convention `.cofb` — is the binary format (`coflow_workloads::binio`).
//! Because the binary format stores every `f64` as its exact bit
//! pattern and the JSON writer uses shortest round-trip formatting,
//! `a.json -> b.cofb -> c.json` leaves `c.json` byte-identical to a
//! re-serialisation of `a.json`.

use std::path::Path;
use std::process::ExitCode;

use coflow_core::Instance;
use coflow_workloads::{binio, io};

fn is_json(path: &Path) -> bool {
    path.extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
}

fn read_any(path: &Path) -> std::io::Result<Instance> {
    if is_json(path) {
        io::load(path)
    } else {
        binio::load_bin(path)
    }
}

fn write_any(instance: &Instance, path: &Path) -> std::io::Result<()> {
    if is_json(path) {
        io::save(instance, path)
    } else {
        binio::save_bin(instance, path)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, input, output] = args.as_slice() else {
        eprintln!("usage: snapshot_convert <input(.json|.cofb)> <output(.json|.cofb)>");
        return ExitCode::FAILURE;
    };
    let (input, output) = (Path::new(input), Path::new(output));
    let instance = match read_any(input) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: failed to read {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_any(&instance, output) {
        eprintln!("error: failed to write {}: {e}", output.display());
        return ExitCode::FAILURE;
    }
    let flows: usize = instance.coflows.iter().map(|c| c.flows.len()).sum();
    println!(
        "{} -> {}: {} coflows, {} flows, {} nodes, {} edges",
        input.display(),
        output.display(),
        instance.coflows.len(),
        flows,
        instance.graph.node_count(),
        instance.graph.edge_count()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::gen::{generate, GenConfig};

    #[test]
    fn json_to_bin_to_json_via_files_is_byte_identical() {
        let t = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                n_coflows: 3,
                width: 2,
                seed: 42,
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("coflow_snapshot_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.cofb");
        let c = dir.join("c.json");
        io::save(&inst, &a).unwrap();
        write_any(&read_any(&a).unwrap(), &b).unwrap();
        write_any(&read_any(&b).unwrap(), &c).unwrap();
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&c).unwrap(),
            "JSON -> binary -> JSON must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
