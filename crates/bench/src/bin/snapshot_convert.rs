//! Convert instance snapshots between the JSON and binary formats.
//!
//! Usage: `snapshot_convert <input> <output>`
//!
//! The direction is inferred from the file extensions: `.json` is the
//! textual format (`coflow_workloads::io`), anything else — by
//! convention `.cofb` — is the binary format (`coflow_workloads::binio`).
//! Because the binary format stores every `f64` as its exact bit
//! pattern and the JSON writer uses shortest round-trip formatting,
//! `a.json -> b.cofb -> c.json` leaves `c.json` byte-identical to a
//! re-serialisation of `a.json`.

use std::path::Path;
use std::process::ExitCode;

use coflow_core::Instance;
use coflow_workloads::{binio, io};

fn is_json(path: &Path) -> bool {
    path.extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("json"))
}

fn read_any(path: &Path) -> std::io::Result<Instance> {
    if is_json(path) {
        io::load(path)
    } else {
        binio::load_bin(path)
    }
}

fn write_any(instance: &Instance, path: &Path) -> std::io::Result<()> {
    if is_json(path) {
        io::save(instance, path)
    } else {
        binio::save_bin(instance, path)
    }
}

/// The whole conversion: returns the summary line, or the message `main`
/// prints before exiting nonzero. Corrupt input surfaces here as the typed
/// parse error (`BinError` / `JsonError`) wrapped with the file name, so
/// a truncated or bit-flipped snapshot can never convert "successfully".
fn convert(input: &Path, output: &Path) -> Result<String, String> {
    let instance =
        read_any(input).map_err(|e| format!("failed to read {}: {e}", input.display()))?;
    write_any(&instance, output)
        .map_err(|e| format!("failed to write {}: {e}", output.display()))?;
    let flows: usize = instance.coflows.iter().map(|c| c.flows.len()).sum();
    Ok(format!(
        "{} -> {}: {} coflows, {} flows, {} nodes, {} edges",
        input.display(),
        output.display(),
        instance.coflows.len(),
        flows,
        instance.graph.node_count(),
        instance.graph.edge_count()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, input, output] = args.as_slice() else {
        eprintln!("usage: snapshot_convert <input(.json|.cofb)> <output(.json|.cofb)>");
        return ExitCode::FAILURE;
    };
    match convert(Path::new(input), Path::new(output)) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_workloads::gen::{generate, GenConfig};

    #[test]
    fn json_to_bin_to_json_via_files_is_byte_identical() {
        let t = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                n_coflows: 3,
                width: 2,
                seed: 42,
                ..Default::default()
            },
        );
        let dir = std::env::temp_dir().join("coflow_snapshot_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.cofb");
        let c = dir.join("c.json");
        io::save(&inst, &a).unwrap();
        write_any(&read_any(&a).unwrap(), &b).unwrap();
        write_any(&read_any(&b).unwrap(), &c).unwrap();
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&c).unwrap(),
            "JSON -> binary -> JSON must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_input_fails_with_clear_message() {
        let dir = std::env::temp_dir().join("coflow_snapshot_convert_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("out.json");

        // Truncated binary snapshot: typed BinError, named input file.
        let t = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(&t, &GenConfig::default());
        let bin = dir.join("bad.cofb");
        binio::save_bin(&inst, &bin).unwrap();
        let bytes = std::fs::read(&bin).unwrap();
        std::fs::write(&bin, &bytes[..bytes.len() / 2]).unwrap();
        let err = convert(&bin, &out).unwrap_err();
        assert!(err.contains("bad.cofb"), "{err}");
        assert!(err.contains("binary snapshot error"), "{err}");

        // Garbage JSON: typed JsonError.
        let j = dir.join("bad.json");
        std::fs::write(&j, "{\"nodes\": [nope").unwrap();
        let err = convert(&j, &out).unwrap_err();
        assert!(err.contains("bad.json"), "{err}");
        assert!(err.contains("json error"), "{err}");

        // A missing file also reports its name, not a bare errno.
        let err = convert(&dir.join("absent.cofb"), &out).unwrap_err();
        assert!(err.contains("absent.cofb"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
