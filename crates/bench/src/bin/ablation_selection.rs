//! **Ablation A3**: path-selection strategy inside the §2.2 rounding.
//!
//! Same LP solution, same ordering, three ways to snap fractional routing
//! to single paths: Raghavan–Thompson sampling (the analyzed algorithm),
//! deterministic thickest-path, and the load-aware §4.2-style tweak the
//! experiment harness uses. Reported per strategy: simulated average
//! completion and the α-point schedule's measured stretch.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin ablation_selection [--trials N]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{print_table, run_parallel, write_csv, CommonArgs};
use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig, PathSelection};
use coflow_core::model::Instance;
use coflow_core::order::lp_order;
use coflow_lp::SolverOptions;
use coflow_net::topo;
use coflow_sim::fluid::{simulate, SimConfig};
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;

fn main() {
    let args = CommonArgs::parse("results/ablation_selection.csv");
    let t = topo::fat_tree(args.k, 1.0);
    println!(
        "Path-selection ablation on {} with width-16 instances, {} trials",
        t.name, args.trials
    );
    let instances: Vec<Instance> = (0..args.trials)
        .map(|trial| generate(&t, &fig3_config(16, 700 + trial as u64)))
        .collect();
    let lp_cfg = FreePathsLpConfig {
        solver: SolverOptions::for_experiments(),
        ..Default::default()
    };

    let strategies = [
        ("Sample (RT, analyzed)", PathSelection::Sample),
        ("Thickest", PathSelection::Thickest),
        ("LoadAware (harness)", PathSelection::LoadAware),
    ];
    // results[trial][strategy] = (avg completion, stretch)
    let results: Vec<Vec<(f64, f64)>> = run_parallel(&instances, args.threads, |i, inst| {
        let lp = solve_free_paths_lp_paths(inst, &lp_cfg).unwrap();
        let order = lp_order(inst, &lp.base);
        strategies
            .iter()
            .map(|&(_, sel)| {
                let r = round_free_paths(
                    inst,
                    &lp,
                    &FreeRoundingConfig {
                        seed: i as u64,
                        selection: sel,
                        ..Default::default()
                    },
                );
                let out = simulate(inst, &r.paths, &order, &SimConfig::default());
                (out.metrics.avg_coflow_completion, r.rounded.max_stretch)
            })
            .collect()
    });

    let trials = results.len() as f64;
    let rows: Vec<Vec<String>> = strategies
        .iter()
        .enumerate()
        .map(|(s, (name, _))| {
            let avg = results.iter().map(|r| r[s].0).sum::<f64>() / trials;
            let stretch = results.iter().map(|r| r[s].1).fold(0.0_f64, f64::max);
            vec![
                name.to_string(),
                format!("{avg:.1}"),
                format!("{stretch:.2}"),
            ]
        })
        .collect();
    print_table(
        "Path-selection strategies (same LP, same ordering)",
        &["strategy", "avg completion", "max stretch"],
        &rows,
    );
    if let Some(out) = &args.out {
        write_csv(out, &["strategy", "avg_completion", "max_stretch"], &rows).expect("csv");
        println!("\nWrote {out}");
    }
}
