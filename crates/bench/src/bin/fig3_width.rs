//! **Figure 3** (§4.3): impact of coflow width.
//!
//! "We fix the number of coflows to 10 and run experiments for coflow
//! widths in {4, 8, 16, 32}." Both panels are printed: absolute average
//! completion time per scheme, and the ratio with respect to Baseline.
//!
//! Defaults run a k=4 fat-tree (16 servers) with 5 trials per point so the
//! whole figure regenerates in minutes; `--k 8 --trials 10` is the paper's
//! exact 128-server setting.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin fig3_width [--k 8] [--trials 10]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{
    print_improvements, print_table, run_point, write_csv, CommonArgs, PointSummary, SCHEME_NAMES,
};
use coflow_core::circuit::lp_free::FreePathsLpConfig;
use coflow_core::model::Instance;
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;

fn main() {
    let args = CommonArgs::parse("results/fig3_width.csv");
    let widths = [4usize, 8, 16, 32];
    let t = topo::fat_tree(args.k, 1.0);
    println!(
        "Figure 3 reproduction: {} ({} servers), 10 coflows, widths {:?}, {} trials/point",
        t.name,
        t.host_count(),
        widths,
        args.trials
    );
    let lp_cfg = FreePathsLpConfig {
        solver: coflow_lp::SolverOptions::for_experiments(),
        ..Default::default()
    };

    let mut points: Vec<PointSummary> = Vec::new();
    for &w in &widths {
        let instances: Vec<Instance> = (0..args.trials)
            .map(|trial| generate(&t, &fig3_config(w, trial as u64)))
            .collect();
        let p = run_point(&format!("{w} flows"), &instances, &lp_cfg, args.threads);
        println!(
            "  [{}] LP obj {:.1}, LB {:.1}, paths/flow {:.2}, {} pivots, {:.0} ms/solve",
            p.label,
            p.diag.lp_objective,
            p.diag.lower_bound,
            p.diag.paths_per_flow,
            p.diag.iterations,
            p.diag.solve_ms
        );
        points.push(p);
    }

    // Panel 1: absolute average completion times.
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.label.clone()];
        for name in SCHEME_NAMES {
            row.push(format!("{:.1}", p.avg_of(name)));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Average completion time ({} servers, 10 coflows)",
            t.host_count()
        ),
        &[
            "width",
            "LP-Based",
            "Route-only",
            "Schedule-only",
            "Baseline",
        ],
        &rows,
    );

    // Panel 2: ratio w.r.t. Baseline.
    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.label.clone()];
        for name in SCHEME_NAMES {
            row.push(format!("{:.3}", p.ratio_to_baseline(name)));
        }
        rows.push(row);
    }
    print_table(
        "Ratio with respect to Baseline",
        &[
            "width",
            "LP-Based",
            "Route-only",
            "Schedule-only",
            "Baseline",
        ],
        &rows,
    );

    print_improvements(&points);

    // §4.3's observation: the decomposition returns ~1 path per flow.
    let ppf: f64 = points.iter().map(|p| p.diag.paths_per_flow).sum::<f64>() / points.len() as f64;
    println!("\nPaths per flow after decomposition (paper observes 1.0 on fat-trees): {ppf:.3}");

    if let Some(out) = &args.out {
        let mut rows = Vec::new();
        for p in &points {
            for name in SCHEME_NAMES {
                rows.push(vec![
                    p.label.clone(),
                    name.to_string(),
                    format!("{}", p.avg_of(name)),
                    format!("{}", p.ratio_to_baseline(name)),
                    format!("{}", p.trials),
                ]);
            }
        }
        write_csv(
            out,
            &[
                "width",
                "scheme",
                "avg_completion",
                "ratio_vs_baseline",
                "trials",
            ],
            &rows,
        )
        .expect("csv write");
        println!("\nWrote {out}");
    }
}
