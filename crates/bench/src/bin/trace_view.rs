//! **trace_view**: renders the JSONL traces written by the bench harness
//! (`results/TRACE_lp.jsonl`, `results/TRACE_online.jsonl`) as a self/total
//! time tree, a per-name aggregation table with flamegraph-style bars, and
//! — with `--diff` — a per-name self-time comparison of two traces.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin trace_view -- results/TRACE_lp.jsonl
//! cargo run --release -p coflow-bench --bin trace_view -- old.jsonl --diff new.jsonl
//! ```
//!
//! Times print in milliseconds for wall-clock traces and in ticks for
//! logical-clock traces (see the `clock` field of the meta line).

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// parsing is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_workloads::io::{read_trace_lines, Value};
use std::path::Path;

/// One span parsed back from the wire format.
#[derive(Clone, Debug)]
struct Span {
    name: String,
    depth: u64,
    start: f64,
    dur: f64,
    self_t: f64,
    children: Vec<usize>,
}

/// One histogram parsed back from the wire format: name, total count, and
/// sparse `(bucket index, count)` pairs.
type HistRow = (String, f64, Vec<(u64, f64)>);

/// A parsed trace file: meta fields plus spans with the tree restored.
struct TraceDoc {
    clock: String,
    dropped: f64,
    truncated: f64,
    spans: Vec<Span>,
    roots: Vec<usize>,
    accums: Vec<(String, f64)>,
    counters: Vec<(String, f64)>,
    hists: Vec<HistRow>,
}

fn num(v: &Value, key: &str) -> f64 {
    match v.lookup(key) {
        Some(Value::Num(x)) => *x,
        other => panic!("expected number at \"{key}\", got {other:?}"),
    }
}

fn text(v: &Value, key: &str) -> String {
    match v.lookup(key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("expected string at \"{key}\", got {other:?}"),
    }
}

fn load(path: &Path) -> TraceDoc {
    let lines = read_trace_lines(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut doc = TraceDoc {
        clock: "wall".into(),
        dropped: 0.0,
        truncated: 0.0,
        spans: Vec::new(),
        roots: Vec::new(),
        accums: Vec::new(),
        counters: Vec::new(),
        hists: Vec::new(),
    };
    for line in &lines {
        match text(line, "type").as_str() {
            "meta" => {
                doc.clock = text(line, "clock");
                doc.dropped = num(line, "dropped");
                doc.truncated = num(line, "truncated");
            }
            "span" => doc.spans.push(Span {
                name: text(line, "name"),
                depth: num(line, "depth") as u64,
                start: num(line, "start"),
                dur: num(line, "dur"),
                self_t: num(line, "self"),
                children: Vec::new(),
            }),
            "accum" => doc.accums.push((text(line, "name"), num(line, "value"))),
            "counter" => doc.counters.push((text(line, "name"), num(line, "value"))),
            "hist" => {
                let buckets = match line.lookup("buckets") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .map(|b| match b {
                            Value::Arr(pair) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                                (Value::Num(i), Value::Num(c)) => (*i as u64, *c),
                                _ => panic!("bad bucket pair"),
                            },
                            other => panic!("bad bucket entry {other:?}"),
                        })
                        .collect(),
                    other => panic!("expected buckets array, got {other:?}"),
                };
                doc.hists
                    .push((text(line, "name"), num(line, "total"), buckets));
            }
            other => panic!("unknown trace line type \"{other}\""),
        }
    }

    // Tree reconstruction from completion (post-) order: a span's children
    // are exactly the pending spans one level deeper, and they sit
    // contiguously at the tail of the pending list when their parent
    // completes.
    let mut pending: Vec<usize> = Vec::new();
    for i in 0..doc.spans.len() {
        let d = doc.spans[i].depth;
        let mut kids: Vec<usize> = Vec::new();
        while let Some(&top) = pending.last() {
            if doc.spans[top].depth == d + 1 {
                kids.push(top);
                pending.pop();
            } else {
                break;
            }
        }
        kids.reverse();
        doc.spans[i].children = kids;
        pending.push(i);
    }
    doc.roots = pending;
    doc
}

/// Divisor turning raw trace units into display units (ns→ms for wall
/// traces; logical ticks print as-is).
fn unit(doc: &TraceDoc) -> (f64, &'static str) {
    if doc.clock == "wall" {
        (1e6, "ms")
    } else {
        (1.0, "ticks")
    }
}

fn print_tree(doc: &TraceDoc, idx: usize, indent: usize, scale: f64, unit: &str) {
    let s = &doc.spans[idx];
    println!(
        "{:indent$}{:<14} total {:>10.3} {unit}  self {:>10.3} {unit}  (start {:.3})",
        "",
        s.name,
        s.dur / scale,
        s.self_t / scale,
        s.start / scale,
        indent = indent,
    );
    for &c in &s.children {
        print_tree(doc, c, indent + 2, scale, unit);
    }
}

/// Per-name aggregation: (count, total, self) keyed by span name, in
/// first-appearance order (deterministic, no hash iteration).
fn aggregate(doc: &TraceDoc) -> Vec<(String, usize, f64, f64)> {
    let mut agg: Vec<(String, usize, f64, f64)> = Vec::new();
    for s in &doc.spans {
        match agg.iter_mut().find(|(n, _, _, _)| *n == s.name) {
            Some(row) => {
                row.1 += 1;
                row.2 += s.dur;
                row.3 += s.self_t;
            }
            None => agg.push((s.name.clone(), 1, s.dur, s.self_t)),
        }
    }
    agg
}

fn print_summary(path: &Path, doc: &TraceDoc) {
    let (scale, unit) = unit(doc);
    println!(
        "{}: clock {}, {} spans ({} dropped, {} truncated)",
        path.display(),
        doc.clock,
        doc.spans.len(),
        doc.dropped,
        doc.truncated
    );

    println!("\nspan tree (completion order):");
    for &r in &doc.roots {
        print_tree(doc, r, 2, scale, unit);
    }

    let agg = aggregate(doc);
    let total_self: f64 = agg.iter().map(|(_, _, _, s)| *s).sum();
    println!("\nby span name (bars: share of total self time):");
    for (name, count, dur, self_t) in &agg {
        let share = if total_self > 0.0 {
            self_t / total_self
        } else {
            0.0
        };
        println!(
            "  {:<14} x{:<5} total {:>10.3} {unit}  self {:>10.3} {unit}  {:>5.1}% |{}",
            name,
            count,
            dur / scale,
            self_t / scale,
            share * 100.0,
            "#".repeat((share * 40.0).round() as usize),
        );
    }

    println!("\naccumulators:");
    for (name, v) in &doc.accums {
        println!("  {:<14} {:>12.3} {unit}", name, v / scale);
    }
    println!("counters:");
    for (name, v) in &doc.counters {
        println!("  {:<18} {:>12}", name, *v as u64);
    }
    println!("histograms (power-of-two buckets, upper edges):");
    for (name, total, buckets) in &doc.hists {
        print!("  {:<14} n={:<6}", name, *total as u64);
        for (b, c) in buckets {
            let edge = if *b == 0 { 0 } else { (1u64 << b) - 1 };
            print!(" ≤{}:{}", edge, *c as u64);
        }
        println!();
    }
}

fn print_diff(a_path: &Path, a: &TraceDoc, b_path: &Path, b: &TraceDoc) {
    let (scale, unit) = unit(a);
    if a.clock != b.clock {
        println!(
            "warning: comparing a {} trace against a {} trace",
            a.clock, b.clock
        );
    }
    let agg_a = aggregate(a);
    let agg_b = aggregate(b);
    println!(
        "self-time diff: {} -> {}",
        a_path.display(),
        b_path.display()
    );
    let mut names: Vec<String> = agg_a.iter().map(|(n, _, _, _)| n.clone()).collect();
    for (n, _, _, _) in &agg_b {
        if !names.contains(n) {
            names.push(n.clone());
        }
    }
    for name in &names {
        let sa = agg_a
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map_or(0.0, |r| r.3);
        let sb = agg_b
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map_or(0.0, |r| r.3);
        let ratio = if sa > 0.0 { sb / sa } else { f64::INFINITY };
        println!(
            "  {:<14} {:>10.3} -> {:>10.3} {unit}  ({:+.3} {unit}, x{:.2})",
            name,
            sa / scale,
            sb / scale,
            (sb - sa) / scale,
            ratio,
        );
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut paths: Vec<String> = Vec::new();
    let mut diff: Option<String> = None;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--diff" => {
                diff = Some(argv[i + 1].clone());
                i += 2;
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    assert_eq!(
        paths.len(),
        1,
        "usage: trace_view <trace.jsonl> [--diff <other.jsonl>]"
    );
    let a_path = Path::new(&paths[0]);
    let a = load(a_path);
    match diff {
        None => print_summary(a_path, &a),
        Some(bp) => {
            let b_path = Path::new(&bp);
            let b = load(b_path);
            print_diff(a_path, &a, b_path, &b);
        }
    }
}
