//! **Figure 1** reproduction: the triangle example with coflows A, B, C.
//!
//! Prints the three solutions of the figure — (s1) fair sharing = 10,
//! (s2) coflow priority A,B,C = 8, (s3) optimal = 7 — each produced by the
//! fluid simulator and verified by the feasibility checker, plus what the
//! §2.2 LP-based algorithm achieves on the same instance.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin fig1_example
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::print_table;
use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig};
use coflow_core::order::{lp_order, Priority};
use coflow_net::paths as netpaths;
use coflow_sim::fluid::{simulate, AllocPolicy, SimConfig};
use coflow_workloads::suite::figure1_instance;

fn main() {
    let inst = figure1_instance();
    let route: Vec<_> = inst
        .flows()
        .map(|(_, _, f)| netpaths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap())
        .collect();
    let n = inst.flow_count();

    let mut rows = Vec::new();

    // (s1): max-min fair sharing — every flow gets 1/2.
    let s1 = simulate(
        &inst,
        &route,
        &Priority::identity(n),
        &SimConfig {
            policy: AllocPolicy::MaxMinFair,
            ..Default::default()
        },
    );
    assert!(s1.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    rows.push(describe("(s1) fair sharing", &s1.metrics.coflow_completion));

    // (s2): priority A > B > C.
    let s2 = simulate(&inst, &route, &Priority::identity(n), &SimConfig::default());
    assert!(s2.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    rows.push(describe(
        "(s2) priority A,B,C",
        &s2.metrics.coflow_completion,
    ));

    // (s3): the optimal order (B and C first, then A).
    let s3 = simulate(
        &inst,
        &route,
        &Priority {
            order: vec![2, 3, 0, 1],
        },
        &SimConfig::default(),
    );
    assert!(s3.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    rows.push(describe("(s3) optimal", &s3.metrics.coflow_completion));

    // LP-Based (§2.2 pipeline, §4.2 simulation tweaks).
    let lp = solve_free_paths_lp_paths(&inst, &FreePathsLpConfig::default()).unwrap();
    let r = round_free_paths(&inst, &lp, &FreeRoundingConfig::default());
    let order = lp_order(&inst, &lp.base);
    let lpd = simulate(&inst, &r.paths, &order, &SimConfig::default());
    assert!(lpd.schedule.check(&inst, 1e-6, 1e-6).is_empty());
    rows.push(describe(
        "LP-Based algorithm",
        &lpd.metrics.coflow_completion,
    ));

    print_table(
        "Figure 1: triangle network, coflows A{A1:2,A2:1}, B{1}, C{2} (paper: 10 / 8 / 7)",
        &["solution", "C_A", "C_B", "C_C", "total"],
        &rows,
    );
    println!(
        "\nLP objective {:.3} (lower bound {:.3})",
        lp.base.objective,
        lp.base.objective / 2.0
    );
}

fn describe(name: &str, c: &[f64]) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.1}", c[0]),
        format!("{:.1}", c[1]),
        format!("{:.1}", c[2]),
        format!("{:.1}", c.iter().sum::<f64>()),
    ]
}
