//! Perf-regression gate over the committed bench artifacts.
//!
//! Usage:
//! `perf_gate --baseline <old.json> --fresh <new.json> [--max-ratio 1.5] [--min-ms 5.0]
//!  [--json <report.json>]`
//!
//! `--json` additionally writes a machine-readable report (per-series
//! old/new/ratio plus the failure list) through the workspace's hand-rolled
//! JSON. On gate failure, if JSONL traces sit next to the two artifacts
//! (`TRACE_lp.jsonl` / `TRACE_online.jsonl`), the gate prints a per-span
//! self-time diff sorted worst-offender-first, so the console points at the
//! phase that slowed down, not just the benchmark that did.
//!
//! Compares the freshly regenerated `results/BENCH_lp.json` /
//! `results/BENCH_online.json` against the committed baseline and fails
//! (exit 1) if any matched timing series slowed down by more than
//! `--max-ratio` (default 1.5×). Timings where **both** sides are under
//! the `--min-ms` floor (default 5 ms) are reported but never fail the
//! gate: at that scale the wall clock measures scheduler noise, not the
//! solver.
//!
//! Extracted series per schema:
//! * `coflow-lp-bench/v2` — `points[].wall_ms_median` keyed by point
//!   name plus backend (the same point is measured under several
//!   backends), and `colgen_vs_eager[].colgen_wall_ms` keyed by name.
//!   Additionally enforces (fresh file only, no baseline needed) that
//!   the acceptance points `transport/500`, `fat_tree_k8`, and
//!   `fat_tree_k16` keep colgen at or below eager wall time
//!   (`speedup >= 1.0`), and two cross-file parallel-pricing guards:
//!   the fresh `transport/500[sparse-lu-parallel]` point must price at
//!   least 2× faster than the *baseline* serial `transport/500`
//!   `pricing_ms`, and the fresh
//!   `fat_tree_k16/8[sparse-lu-colgen-parallel]` point must solve cold
//!   in under one second.
//! * `coflow-online-bench/v1` — `points[].policies[].total_resolve_ms`
//!   keyed by `rate=<r>/<policy>`.
//!
//! Series present on only one side (new or retired benchmarks) are
//! reported as informational and skipped.

use std::process::ExitCode;

use coflow_workloads::io::{parse_json, read_trace_lines, Value};

struct Args {
    baseline: String,
    fresh: String,
    max_ratio: f64,
    min_ms: f64,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut max_ratio = 1.5;
    let mut min_ms = 5.0;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(val("--baseline")?),
            "--fresh" => fresh = Some(val("--fresh")?),
            "--max-ratio" => {
                max_ratio = val("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("--max-ratio: {e}"))?;
            }
            "--min-ms" => {
                min_ms = val("--min-ms")?
                    .parse()
                    .map_err(|e| format!("--min-ms: {e}"))?;
            }
            "--json" => json = Some(val("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        max_ratio,
        min_ms,
        json,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("failed to parse {path}: {e}"))
}

fn num(v: &Value, key: &str) -> Option<f64> {
    match v.lookup(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn text<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.lookup(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn arr<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    match v.lookup(key) {
        Some(Value::Arr(items)) => items,
        _ => &[],
    }
}

/// Flattens one bench artifact into `(series label, wall ms)` pairs.
fn extract_series(doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    match text(doc, "schema") {
        Some(s) if s.starts_with("coflow-lp-bench/") => {
            for p in arr(doc, "points") {
                if let (Some(name), Some(ms)) = (text(p, "name"), num(p, "wall_ms_median")) {
                    // The same point name can appear under several
                    // backends (sparse LU, dense baseline, colgen) —
                    // the backend is part of the series identity.
                    let backend = text(p, "backend").unwrap_or("default");
                    out.push((format!("{name}[{backend}]"), ms));
                }
            }
            for p in arr(doc, "colgen_vs_eager") {
                if let (Some(name), Some(ms)) = (text(p, "name"), num(p, "colgen_wall_ms")) {
                    out.push((format!("colgen/{name}"), ms));
                }
            }
        }
        Some(s) if s.starts_with("coflow-online-bench/") => {
            for p in arr(doc, "points") {
                let Some(rate) = num(p, "arrival_rate") else {
                    continue;
                };
                for pol in arr(p, "policies") {
                    if let (Some(name), Some(ms)) =
                        (text(pol, "policy"), num(pol, "total_resolve_ms"))
                    {
                        out.push((format!("rate={rate}/{name}"), ms));
                    }
                }
            }
        }
        other => {
            eprintln!("warning: unrecognized schema {other:?}; no series extracted");
        }
    }
    out
}

/// Finds a measurement point by name suffix and exact backend tag.
fn find_point<'a>(doc: &'a Value, name: &str, backend: &str) -> Option<&'a Value> {
    arr(doc, "points").iter().find(|p| {
        text(p, "name").is_some_and(|n| n.ends_with(name)) && text(p, "backend") == Some(backend)
    })
}

/// The parallel-pricing acceptance guards (LP artifacts only):
///
/// * the fresh candidate-list/4-thread `transport/500` point must cut
///   `pricing_ms` at least 2× against the **baseline** serial
///   `transport/500` point (the committed artifact), and
/// * the fresh fat-tree k=16 width-8 colgen point must solve cold in
///   under one second of wall clock.
fn parallel_acceptance(baseline: &Value, fresh: &Value) -> Vec<String> {
    const PRICING_SPEEDUP_MIN: f64 = 2.0;
    const K16_COLGEN_MAX_MS: f64 = 1000.0;
    let mut failures = Vec::new();
    if !text(fresh, "schema").is_some_and(|s| s.starts_with("coflow-lp-bench/")) {
        return failures;
    }
    let pricing = |doc: &Value, backend: &str| {
        find_point(doc, "transport/500", backend)
            .and_then(|p| p.lookup("stats"))
            .and_then(|s| num(s, "pricing_ms"))
    };
    match (
        pricing(baseline, "sparse-lu"),
        pricing(fresh, "sparse-lu-parallel"),
    ) {
        (Some(base_ms), Some(par_ms)) if par_ms > 0.0 => {
            let speedup = base_ms / par_ms;
            if speedup < PRICING_SPEEDUP_MIN {
                failures.push(format!(
                    "transport/500 parallel pricing: {base_ms:.3} ms -> {par_ms:.3} ms \
                     ({speedup:.2}x < required {PRICING_SPEEDUP_MIN:.2}x)"
                ));
            } else {
                println!(
                    "parallel pricing acceptance OK: transport/500 pricing {base_ms:.3} ms -> \
                     {par_ms:.3} ms ({speedup:.2}x)"
                );
            }
        }
        (None, _) => println!(
            "  (baseline has no serial transport/500 pricing_ms; pricing speedup not gated)"
        ),
        (_, _) => failures.push(
            "transport/500[sparse-lu-parallel]: missing or zero pricing_ms in fresh artifact"
                .into(),
        ),
    }
    match find_point(fresh, "fat_tree_k16/8", "sparse-lu-colgen-parallel")
        .and_then(|p| num(p, "wall_ms_median"))
    {
        Some(ms) if ms < K16_COLGEN_MAX_MS => {
            println!("k16 colgen acceptance OK: cold solve {ms:.3} ms < {K16_COLGEN_MAX_MS} ms");
        }
        Some(ms) => failures.push(format!(
            "fat_tree_k16/8 colgen: cold solve {ms:.3} ms >= {K16_COLGEN_MAX_MS} ms"
        )),
        None => failures
            .push("fat_tree_k16/8[sparse-lu-colgen-parallel]: missing from fresh artifact".into()),
    }
    failures
}

/// The intra-file acceptance guard: on LP artifacts, the named colgen
/// points must not be slower than eager enumeration.
fn colgen_acceptance(fresh: &Value) -> Vec<String> {
    const GUARDED: [&str; 3] = ["transport/500", "fat_tree_k8", "fat_tree_k16"];
    let mut failures = Vec::new();
    if !text(fresh, "schema").is_some_and(|s| s.starts_with("coflow-lp-bench/")) {
        return failures;
    }
    for p in arr(fresh, "colgen_vs_eager") {
        let Some(name) = text(p, "name") else {
            continue;
        };
        if !GUARDED.iter().any(|g| name.contains(g)) {
            continue;
        }
        let (Some(colgen), Some(eager)) = (num(p, "colgen_wall_ms"), num(p, "eager_wall_ms"))
        else {
            failures.push(format!("{name}: missing colgen/eager wall times"));
            continue;
        };
        if colgen > eager {
            failures.push(format!(
                "{name}: colgen {colgen:.3} ms slower than eager {eager:.3} ms"
            ));
        } else {
            println!("colgen acceptance OK: {name}: {colgen:.3} ms <= eager {eager:.3} ms");
        }
    }
    failures
}

/// Sibling trace file of a bench artifact, when one exists: the benches
/// write `TRACE_lp.jsonl` / `TRACE_online.jsonl` next to their JSON.
fn trace_sibling(artifact: &str, schema: Option<&str>) -> Option<std::path::PathBuf> {
    let fname = match schema {
        Some(s) if s.starts_with("coflow-lp-bench/") => "TRACE_lp.jsonl",
        Some(s) if s.starts_with("coflow-online-bench/") => "TRACE_online.jsonl",
        _ => return None,
    };
    let p = std::path::Path::new(artifact).with_file_name(fname);
    p.exists().then_some(p)
}

/// Per-span-name self-time sums of a JSONL trace, in first-appearance
/// order (raw trace units: ns for wall traces, ticks for logical).
fn span_self_by_name(path: &std::path::Path) -> Vec<(String, f64)> {
    let Ok(lines) = read_trace_lines(path) else {
        return Vec::new();
    };
    let mut agg: Vec<(String, f64)> = Vec::new();
    for l in &lines {
        if text(l, "type") != Some("span") {
            continue;
        }
        let (Some(name), Some(self_t)) = (text(l, "name"), num(l, "self")) else {
            continue;
        };
        match agg.iter_mut().find(|(n, _)| n == name) {
            Some(row) => row.1 += self_t,
            None => agg.push((name.to_string(), self_t)),
        }
    }
    agg
}

/// On gate failure: per-span self-time diff between the two artifacts'
/// sibling traces, sorted by absolute slowdown so the worst offender
/// prints first. Silent when either side has no trace.
fn print_worst_span_diff(args: &Args, schema: Option<&str>) {
    let (Some(base_trace), Some(fresh_trace)) = (
        trace_sibling(&args.baseline, schema),
        trace_sibling(&args.fresh, schema),
    ) else {
        return;
    };
    let old = span_self_by_name(&base_trace);
    let new = span_self_by_name(&fresh_trace);
    if old.is_empty() || new.is_empty() {
        return;
    }
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for (name, new_self) in &new {
        let old_self = old.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v);
        rows.push((name.clone(), old_self, *new_self));
    }
    rows.sort_by(|a, b| {
        let da = a.2 - a.1;
        let db = b.2 - b.1;
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    eprintln!(
        "span self-time diff ({} -> {}), worst offender first:",
        base_trace.display(),
        fresh_trace.display()
    );
    for (i, (name, old_self, new_self)) in rows.iter().enumerate() {
        let tag = if i == 0 { "  <- worst offender" } else { "" };
        eprintln!(
            "  {name}: {:.3} -> {:.3} ms ({:+.3}){tag}",
            old_self / 1e6,
            new_self / 1e6,
            (new_self - old_self) / 1e6,
        );
    }
}

/// Compares matched series; a series present on only one side — a fresh
/// point the committed baseline predates, or a retired one — is
/// informational, never a failure. Returns (failures, JSON report rows).
fn gate_series(
    base_series: &[(String, f64)],
    fresh_series: &[(String, f64)],
    max_ratio: f64,
    min_ms: f64,
) -> (Vec<String>, Vec<Value>) {
    let mut failures = Vec::new();
    let mut report: Vec<Value> = Vec::new();
    for (name, new_ms) in fresh_series {
        let Some((_, old_ms)) = base_series.iter().find(|(n, _)| n == name) else {
            println!("  new series (no baseline): {name}: {new_ms:.3} ms");
            report.push(Value::Obj(vec![
                ("name".into(), Value::Str(name.clone())),
                ("old_ms".into(), Value::Null),
                ("new_ms".into(), Value::Num(*new_ms)),
                ("verdict".into(), Value::Str("new".into())),
            ]));
            continue;
        };
        let ratio = if *old_ms > 0.0 { new_ms / old_ms } else { 1.0 };
        let noise_floor = *old_ms < min_ms && *new_ms < min_ms;
        let verdict = if ratio > max_ratio && !noise_floor {
            failures.push(format!(
                "{name}: {old_ms:.3} ms -> {new_ms:.3} ms ({ratio:.2}x > {max_ratio:.2}x)"
            ));
            "REGRESSION"
        } else if noise_floor {
            "ok (below noise floor)"
        } else {
            "ok"
        };
        println!("  {name}: {old_ms:.3} ms -> {new_ms:.3} ms ({ratio:.2}x) {verdict}");
        report.push(Value::Obj(vec![
            ("name".into(), Value::Str(name.clone())),
            ("old_ms".into(), Value::Num(*old_ms)),
            ("new_ms".into(), Value::Num(*new_ms)),
            ("ratio".into(), Value::Num(ratio)),
            ("verdict".into(), Value::Str(verdict.into())),
        ]));
    }
    for (name, old_ms) in base_series {
        if !fresh_series.iter().any(|(n, _)| n == name) {
            println!("  retired series (baseline only): {name}: {old_ms:.3} ms");
            report.push(Value::Obj(vec![
                ("name".into(), Value::Str(name.clone())),
                ("old_ms".into(), Value::Num(*old_ms)),
                ("new_ms".into(), Value::Null),
                ("verdict".into(), Value::Str("retired".into())),
            ]));
        }
    }
    (failures, report)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    // A missing or unreadable committed baseline demotes every comparison
    // to informational instead of erroring the lane: the gate still runs
    // the fresh-artifact acceptance guards, which need no baseline.
    let baseline = match load(&args.baseline) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("warning: baseline unavailable ({e}); comparisons skipped, fresh-only acceptance still enforced");
            None
        }
    };
    let fresh = load(&args.fresh)?;
    let base_series = baseline.as_ref().map(extract_series).unwrap_or_default();
    let fresh_series = extract_series(&fresh);

    let (mut failures, report) =
        gate_series(&base_series, &fresh_series, args.max_ratio, args.min_ms);
    failures.extend(colgen_acceptance(&fresh));
    failures.extend(parallel_acceptance(
        baseline.as_ref().unwrap_or(&Value::Null),
        &fresh,
    ));

    if let Some(path) = &args.json {
        let doc = Value::Obj(vec![
            ("schema".into(), Value::Str("coflow-perf-gate/v1".into())),
            ("baseline".into(), Value::Str(args.baseline.clone())),
            ("fresh".into(), Value::Str(args.fresh.clone())),
            ("max_ratio".into(), Value::Num(args.max_ratio)),
            ("min_ms".into(), Value::Num(args.min_ms)),
            ("passed".into(), Value::Bool(failures.is_empty())),
            ("series".into(), Value::Arr(report)),
            (
                "failures".into(),
                Value::Arr(failures.iter().map(|f| Value::Str(f.clone())).collect()),
            ),
        ]);
        std::fs::write(path, doc.render()).map_err(|e| format!("failed to write {path}: {e}"))?;
        println!("wrote {path}");
    }

    if failures.is_empty() {
        println!(
            "perf gate OK: {} series within {:.2}x of {}",
            fresh_series.len(),
            args.max_ratio,
            args.baseline
        );
        Ok(true)
    } else {
        eprintln!("perf gate FAILED ({} regressions):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        print_worst_span_diff(&args, text(&fresh, "schema"));
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: perf_gate --baseline <old.json> --fresh <new.json> \
                 [--max-ratio 1.5] [--min-ms 5.0] [--json <report.json>]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_doc(transport_ms: f64, colgen_ms: f64, eager_ms: f64) -> Value {
        parse_json(&format!(
            r#"{{
              "schema": "coflow-lp-bench/v2",
              "points": [{{"name": "raw_simplex/transport/100", "backend": "sparse-lu",
                           "wall_ms_median": {transport_ms}}}],
              "colgen_vs_eager": [{{"name": "raw_simplex/transport/500",
                                    "colgen_wall_ms": {colgen_ms},
                                    "eager_wall_ms": {eager_ms}}}]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn extracts_both_lp_series_kinds() {
        let series = extract_series(&lp_doc(21.0, 15.0, 140.0));
        assert_eq!(
            series,
            vec![
                ("raw_simplex/transport/100[sparse-lu]".to_string(), 21.0),
                ("colgen/raw_simplex/transport/500".to_string(), 15.0),
            ]
        );
    }

    #[test]
    fn extracts_online_series() {
        let doc = parse_json(
            r#"{"schema": "coflow-online-bench/v1",
                "points": [{"arrival_rate": 0.25,
                            "policies": [{"policy": "LpOrder", "total_resolve_ms": 27.5}]}]}"#,
        )
        .unwrap();
        assert_eq!(
            extract_series(&doc),
            vec![("rate=0.25/LpOrder".to_string(), 27.5)]
        );
    }

    #[test]
    fn colgen_acceptance_flags_slowdown_past_eager() {
        assert!(colgen_acceptance(&lp_doc(21.0, 15.0, 140.0)).is_empty());
        let bad = colgen_acceptance(&lp_doc(21.0, 150.0, 140.0));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("transport/500"), "{}", bad[0]);
    }

    fn serial_doc(pricing_ms: f64) -> Value {
        parse_json(&format!(
            r#"{{
              "schema": "coflow-lp-bench/v2",
              "points": [{{"name": "raw_simplex/transport/500", "backend": "sparse-lu",
                           "wall_ms_median": 580.0,
                           "stats": {{"pricing_ms": {pricing_ms}}}}}]
            }}"#
        ))
        .unwrap()
    }

    fn parallel_doc(pricing_ms: f64, k16_ms: f64) -> Value {
        parse_json(&format!(
            r#"{{
              "schema": "coflow-lp-bench/v2",
              "points": [
                {{"name": "raw_simplex/transport/500", "backend": "sparse-lu-parallel",
                  "wall_ms_median": 330.0, "stats": {{"pricing_ms": {pricing_ms}}}}},
                {{"name": "free_paths_lp/fat_tree_k16/8",
                  "backend": "sparse-lu-colgen-parallel", "wall_ms_median": {k16_ms}}}
              ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn parallel_acceptance_requires_two_x_pricing_cut() {
        let base = serial_doc(358.0);
        assert!(parallel_acceptance(&base, &parallel_doc(133.0, 65.0)).is_empty());
        let bad = parallel_acceptance(&base, &parallel_doc(250.0, 65.0));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("parallel pricing"), "{}", bad[0]);
    }

    #[test]
    fn parallel_acceptance_caps_k16_colgen_wall() {
        let base = serial_doc(358.0);
        let bad = parallel_acceptance(&base, &parallel_doc(133.0, 1500.0));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("fat_tree_k16"), "{}", bad[0]);
    }

    #[test]
    fn parallel_acceptance_flags_missing_fresh_points() {
        let base = serial_doc(358.0);
        let bad = parallel_acceptance(&base, &serial_doc(358.0));
        assert_eq!(bad.len(), 2, "{bad:?}");
    }

    #[test]
    fn series_missing_from_baseline_warn_and_skip() {
        // A fresh point the committed baseline predates is informational
        // ("new"), never a regression — the lane must stay green.
        let base = vec![("old_point".to_string(), 10.0)];
        let fresh = vec![
            ("old_point".to_string(), 11.0),
            ("brand_new_point".to_string(), 900.0),
        ];
        let (failures, report) = gate_series(&base, &fresh, 1.5, 5.0);
        assert!(failures.is_empty(), "{failures:?}");
        let verdicts: Vec<_> = report
            .iter()
            .map(|r| match r.lookup("verdict") {
                Some(Value::Str(s)) => s.clone(),
                _ => panic!("missing verdict"),
            })
            .collect();
        assert_eq!(verdicts, vec!["ok", "new"]);
        // Matched series still gate.
        let (failures, _) = gate_series(&base, &[("old_point".to_string(), 100.0)], 1.5, 5.0);
        assert_eq!(failures.len(), 1, "{failures:?}");
    }

    #[test]
    fn absent_baseline_doc_skips_cross_file_guards_only() {
        // With no baseline document at all, the baseline-relative pricing
        // guard is skipped but the fresh-only k16 wall cap still gates.
        assert!(parallel_acceptance(&Value::Null, &parallel_doc(250.0, 65.0)).is_empty());
        let bad = parallel_acceptance(&Value::Null, &parallel_doc(250.0, 1500.0));
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("fat_tree_k16"), "{}", bad[0]);
    }
}
