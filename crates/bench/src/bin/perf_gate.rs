//! Perf-regression gate over the committed bench artifacts.
//!
//! Usage:
//! `perf_gate --baseline <old.json> --fresh <new.json> [--max-ratio 1.5] [--min-ms 5.0]`
//!
//! Compares the freshly regenerated `results/BENCH_lp.json` /
//! `results/BENCH_online.json` against the committed baseline and fails
//! (exit 1) if any matched timing series slowed down by more than
//! `--max-ratio` (default 1.5×). Timings where **both** sides are under
//! the `--min-ms` floor (default 5 ms) are reported but never fail the
//! gate: at that scale the wall clock measures scheduler noise, not the
//! solver.
//!
//! Extracted series per schema:
//! * `coflow-lp-bench/v2` — `points[].wall_ms_median` keyed by point
//!   name plus backend (the same point is measured under several
//!   backends), and `colgen_vs_eager[].colgen_wall_ms` keyed by name.
//!   Additionally enforces (fresh file only, no baseline needed) that
//!   the acceptance points `transport/500` and `fat_tree_k8` keep
//!   colgen at or below eager wall time (`speedup >= 1.0`).
//! * `coflow-online-bench/v1` — `points[].policies[].total_resolve_ms`
//!   keyed by `rate=<r>/<policy>`.
//!
//! Series present on only one side (new or retired benchmarks) are
//! reported as informational and skipped.

use std::process::ExitCode;

use coflow_workloads::io::{parse_json, Value};

struct Args {
    baseline: String,
    fresh: String,
    max_ratio: f64,
    min_ms: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut max_ratio = 1.5;
    let mut min_ms = 5.0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(val("--baseline")?),
            "--fresh" => fresh = Some(val("--fresh")?),
            "--max-ratio" => {
                max_ratio = val("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("--max-ratio: {e}"))?;
            }
            "--min-ms" => {
                min_ms = val("--min-ms")?
                    .parse()
                    .map_err(|e| format!("--min-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        max_ratio,
        min_ms,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("failed to parse {path}: {e}"))
}

fn num(v: &Value, key: &str) -> Option<f64> {
    match v.lookup(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn text<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.lookup(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn arr<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    match v.lookup(key) {
        Some(Value::Arr(items)) => items,
        _ => &[],
    }
}

/// Flattens one bench artifact into `(series label, wall ms)` pairs.
fn extract_series(doc: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    match text(doc, "schema") {
        Some(s) if s.starts_with("coflow-lp-bench/") => {
            for p in arr(doc, "points") {
                if let (Some(name), Some(ms)) = (text(p, "name"), num(p, "wall_ms_median")) {
                    // The same point name can appear under several
                    // backends (sparse LU, dense baseline, colgen) —
                    // the backend is part of the series identity.
                    let backend = text(p, "backend").unwrap_or("default");
                    out.push((format!("{name}[{backend}]"), ms));
                }
            }
            for p in arr(doc, "colgen_vs_eager") {
                if let (Some(name), Some(ms)) = (text(p, "name"), num(p, "colgen_wall_ms")) {
                    out.push((format!("colgen/{name}"), ms));
                }
            }
        }
        Some(s) if s.starts_with("coflow-online-bench/") => {
            for p in arr(doc, "points") {
                let Some(rate) = num(p, "arrival_rate") else {
                    continue;
                };
                for pol in arr(p, "policies") {
                    if let (Some(name), Some(ms)) =
                        (text(pol, "policy"), num(pol, "total_resolve_ms"))
                    {
                        out.push((format!("rate={rate}/{name}"), ms));
                    }
                }
            }
        }
        other => {
            eprintln!("warning: unrecognized schema {other:?}; no series extracted");
        }
    }
    out
}

/// The intra-file acceptance guard: on LP artifacts, the named colgen
/// points must not be slower than eager enumeration.
fn colgen_acceptance(fresh: &Value) -> Vec<String> {
    const GUARDED: [&str; 2] = ["transport/500", "fat_tree_k8"];
    let mut failures = Vec::new();
    if !text(fresh, "schema").is_some_and(|s| s.starts_with("coflow-lp-bench/")) {
        return failures;
    }
    for p in arr(fresh, "colgen_vs_eager") {
        let Some(name) = text(p, "name") else {
            continue;
        };
        if !GUARDED.iter().any(|g| name.contains(g)) {
            continue;
        }
        let (Some(colgen), Some(eager)) = (num(p, "colgen_wall_ms"), num(p, "eager_wall_ms"))
        else {
            failures.push(format!("{name}: missing colgen/eager wall times"));
            continue;
        };
        if colgen > eager {
            failures.push(format!(
                "{name}: colgen {colgen:.3} ms slower than eager {eager:.3} ms"
            ));
        } else {
            println!("colgen acceptance OK: {name}: {colgen:.3} ms <= eager {eager:.3} ms");
        }
    }
    failures
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = load(&args.baseline)?;
    let fresh = load(&args.fresh)?;
    let base_series = extract_series(&baseline);
    let fresh_series = extract_series(&fresh);

    let mut failures = Vec::new();
    for (name, new_ms) in &fresh_series {
        let Some((_, old_ms)) = base_series.iter().find(|(n, _)| n == name) else {
            println!("  new series (no baseline): {name}: {new_ms:.3} ms");
            continue;
        };
        let ratio = if *old_ms > 0.0 { new_ms / old_ms } else { 1.0 };
        let noise_floor = *old_ms < args.min_ms && *new_ms < args.min_ms;
        let verdict = if ratio > args.max_ratio && !noise_floor {
            failures.push(format!(
                "{name}: {old_ms:.3} ms -> {new_ms:.3} ms ({ratio:.2}x > {:.2}x)",
                args.max_ratio
            ));
            "REGRESSION"
        } else if noise_floor {
            "ok (below noise floor)"
        } else {
            "ok"
        };
        println!("  {name}: {old_ms:.3} ms -> {new_ms:.3} ms ({ratio:.2}x) {verdict}");
    }
    for (name, old_ms) in &base_series {
        if !fresh_series.iter().any(|(n, _)| n == name) {
            println!("  retired series (baseline only): {name}: {old_ms:.3} ms");
        }
    }
    failures.extend(colgen_acceptance(&fresh));

    if failures.is_empty() {
        println!(
            "perf gate OK: {} series within {:.2}x of {}",
            fresh_series.len(),
            args.max_ratio,
            args.baseline
        );
        Ok(true)
    } else {
        eprintln!("perf gate FAILED ({} regressions):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: perf_gate --baseline <old.json> --fresh <new.json> \
                 [--max-ratio 1.5] [--min-ms 5.0]"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_doc(transport_ms: f64, colgen_ms: f64, eager_ms: f64) -> Value {
        parse_json(&format!(
            r#"{{
              "schema": "coflow-lp-bench/v2",
              "points": [{{"name": "raw_simplex/transport/100", "backend": "sparse-lu",
                           "wall_ms_median": {transport_ms}}}],
              "colgen_vs_eager": [{{"name": "raw_simplex/transport/500",
                                    "colgen_wall_ms": {colgen_ms},
                                    "eager_wall_ms": {eager_ms}}}]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn extracts_both_lp_series_kinds() {
        let series = extract_series(&lp_doc(21.0, 15.0, 140.0));
        assert_eq!(
            series,
            vec![
                ("raw_simplex/transport/100[sparse-lu]".to_string(), 21.0),
                ("colgen/raw_simplex/transport/500".to_string(), 15.0),
            ]
        );
    }

    #[test]
    fn extracts_online_series() {
        let doc = parse_json(
            r#"{"schema": "coflow-online-bench/v1",
                "points": [{"arrival_rate": 0.25,
                            "policies": [{"policy": "LpOrder", "total_resolve_ms": 27.5}]}]}"#,
        )
        .unwrap();
        assert_eq!(
            extract_series(&doc),
            vec![("rate=0.25/LpOrder".to_string(), 27.5)]
        );
    }

    #[test]
    fn colgen_acceptance_flags_slowdown_past_eager() {
        assert!(colgen_acceptance(&lp_doc(21.0, 15.0, 140.0)).is_empty());
        let bad = colgen_acceptance(&lp_doc(21.0, 150.0, 140.0));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("transport/500"), "{}", bad[0]);
    }
}
