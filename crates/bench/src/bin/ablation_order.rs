//! **Ablation A1**: where does the LP-based win come from — routing or
//! ordering?
//!
//! All orderings below share the *same* routing (the LP-rounded paths), so
//! differences isolate the ordering component: the LP completion-time order
//! (coflow-aware, what Algorithm 1 returns) vs SEBF (coflow-aware but
//! LP-free) vs WSJF vs per-flow SJF (Schedule-only's rule) vs random.
//!
//! ```text
//! cargo run --release -p coflow-bench --bin ablation_order [--trials N]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{print_table, run_parallel, write_csv, CommonArgs};
use coflow_core::baselines;
use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig};
use coflow_core::model::Instance;
use coflow_core::order::{lp_order, Priority};
use coflow_net::topo;
use coflow_sim::fluid::{simulate, SimConfig};
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig3_config;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let args = CommonArgs::parse("results/ablation_order.csv");
    let t = topo::fat_tree(args.k, 1.0);
    println!(
        "Ordering ablation on {} with width-16 instances, {} trials",
        t.name, args.trials
    );
    let instances: Vec<Instance> = (0..args.trials)
        .map(|trial| generate(&t, &fig3_config(16, 900 + trial as u64)))
        .collect();

    let names = ["LP order", "SEBF", "WSJF", "per-flow SJF", "random"];
    let results: Vec<Vec<f64>> = run_parallel(&instances, args.threads, |i, inst| {
        let lp = solve_free_paths_lp_paths(inst, &FreePathsLpConfig::default()).unwrap();
        let rounding = round_free_paths(
            inst,
            &lp,
            &FreeRoundingConfig {
                seed: i as u64,
                ..Default::default()
            },
        );
        let paths = rounding.paths;
        let cfg = SimConfig::default();
        let n = inst.flow_count();
        let g = &inst.graph;

        let mut outs = Vec::new();
        // LP completion-time order (Algorithm 1).
        outs.push(
            simulate(inst, &paths, &lp_order(inst, &lp.base), &cfg)
                .metrics
                .avg_coflow_completion,
        );
        // SEBF on the same routing.
        let s = baselines::sebf(inst, &paths);
        outs.push(
            simulate(inst, &paths, &s.order, &cfg)
                .metrics
                .avg_coflow_completion,
        );
        // WSJF.
        let s = baselines::wsjf(inst, &paths);
        outs.push(
            simulate(inst, &paths, &s.order, &cfg)
                .metrics
                .avg_coflow_completion,
        );
        // Per-flow SJF (Schedule-only's rule, coflow-blind).
        let sjf = Priority::by_key(n, |flat| {
            let spec = inst.flow(inst.id_of_flat(flat));
            spec.size / g.path_bottleneck(&paths[flat]).max(1e-12)
        });
        outs.push(
            simulate(inst, &paths, &sjf, &cfg)
                .metrics
                .avg_coflow_completion,
        );
        // Random order.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(77 + i as u64));
        outs.push(
            simulate(inst, &paths, &Priority { order }, &cfg)
                .metrics
                .avg_coflow_completion,
        );
        outs
    });

    let trials = results.len() as f64;
    let means: Vec<f64> = (0..names.len())
        .map(|j| results.iter().map(|r| r[j]).sum::<f64>() / trials)
        .collect();
    let best = means.iter().copied().fold(f64::INFINITY, f64::min);
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&means)
        .map(|(n, &m)| vec![n.to_string(), format!("{m:.1}"), format!("{:.3}", m / best)])
        .collect();
    print_table(
        "Ordering ablation (identical LP-rounded routing)",
        &["ordering", "avg completion", "vs best"],
        &rows,
    );

    if let Some(out) = &args.out {
        write_csv(out, &["ordering", "avg_completion", "vs_best"], &rows).expect("csv write");
        println!("\nWrote {out}");
    }
}
