//! **Figure 4** (§4.3): impact of the number of coflows.
//!
//! "Using a fixed coflow width of 16, we vary the number of coflows from 10
//! to 25 [figure shows up to 30], in increments of 5."
//!
//! ```text
//! cargo run --release -p coflow-bench --bin fig4_count [--k 8] [--trials 10]
//! ```

// Experiment binaries fail fast by design: unwrap/expect on I/O and
// solver results is the intended error handling here.
#![allow(clippy::unwrap_used)]

use coflow_bench::{
    print_improvements, print_table, run_point, write_csv, CommonArgs, PointSummary, SCHEME_NAMES,
};
use coflow_core::circuit::lp_free::FreePathsLpConfig;
use coflow_core::model::Instance;
use coflow_net::topo;
use coflow_workloads::gen::generate;
use coflow_workloads::suite::fig4_config;

fn main() {
    let args = CommonArgs::parse("results/fig4_count.csv");
    let counts = [10usize, 15, 20, 25, 30];
    let t = topo::fat_tree(args.k, 1.0);
    println!(
        "Figure 4 reproduction: {} ({} servers), width 16, coflow counts {:?}, {} trials/point",
        t.name,
        t.host_count(),
        counts,
        args.trials
    );
    let lp_cfg = FreePathsLpConfig {
        solver: coflow_lp::SolverOptions::for_experiments(),
        ..Default::default()
    };

    let mut points: Vec<PointSummary> = Vec::new();
    for &n in &counts {
        let instances: Vec<Instance> = (0..args.trials)
            .map(|trial| generate(&t, &fig4_config(n, trial as u64)))
            .collect();
        let p = run_point(&format!("{n} coflows"), &instances, &lp_cfg, args.threads);
        println!(
            "  [{}] LP obj {:.1}, LB {:.1}, paths/flow {:.2}, {} pivots, {:.0} ms/solve",
            p.label,
            p.diag.lp_objective,
            p.diag.lower_bound,
            p.diag.paths_per_flow,
            p.diag.iterations,
            p.diag.solve_ms
        );
        points.push(p);
    }

    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.label.clone()];
        for name in SCHEME_NAMES {
            row.push(format!("{:.1}", p.avg_of(name)));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Average completion time ({} servers, width 16)",
            t.host_count()
        ),
        &[
            "coflows",
            "LP-Based",
            "Route-only",
            "Schedule-only",
            "Baseline",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for p in &points {
        let mut row = vec![p.label.clone()];
        for name in SCHEME_NAMES {
            row.push(format!("{:.3}", p.ratio_to_baseline(name)));
        }
        rows.push(row);
    }
    print_table(
        "Ratio with respect to Baseline",
        &[
            "coflows",
            "LP-Based",
            "Route-only",
            "Schedule-only",
            "Baseline",
        ],
        &rows,
    );

    print_improvements(&points);

    if let Some(out) = &args.out {
        let mut rows = Vec::new();
        for p in &points {
            for name in SCHEME_NAMES {
                rows.push(vec![
                    p.label.clone(),
                    name.to_string(),
                    format!("{}", p.avg_of(name)),
                    format!("{}", p.ratio_to_baseline(name)),
                    format!("{}", p.trials),
                ]);
            }
        }
        write_csv(
            out,
            &[
                "coflows",
                "scheme",
                "avg_completion",
                "ratio_vs_baseline",
                "trials",
            ],
            &rows,
        )
        .expect("csv write");
        println!("\nWrote {out}");
    }
}
