//! The [`Recorder`]: fixed-capacity span ring, span stack, accumulators,
//! counters, and histograms behind one plain owned struct.
//!
//! A recorder is embedded where the work happens (the LP `Scratch`, the
//! engine event loop) and threaded by `&mut` — no globals, no locks. All
//! recording happens on the coordinating thread; parallel workers tally
//! into [`CounterSet`](crate::CounterSet)s that merge afterwards in slot
//! order. Under the logical clock every stamp advances the tick counter by
//! exactly one, so as long as the *sequence* of recording calls is
//! deterministic (the solver's pivot order already is, at any thread
//! count), the produced trace is byte-identical.
//!
//! Recording never allocates and never panics: the ring was sized at
//! construction and evicts oldest-first when full (counted in `dropped`),
//! the span stack tolerates overflow and mismatched exits by returning a
//! default record (counted in `truncated`).

use crate::hist::Histogram;
use crate::trace::Trace;
use crate::{Accum, ClockMode, Counter, CounterSet, HistId, Origin, SpanName};

/// Maximum span nesting depth tracked by the recorder; deeper `enter`s are
/// counted as truncated and produce no span records.
pub const MAX_DEPTH: usize = 32;

/// Default span-ring capacity (completed spans retained before
/// oldest-first eviction).
const DEFAULT_RING_CAP: usize = 4096;

/// A completed span: name, nesting depth, completion sequence number, and
/// start/duration/self-time in raw clock units (ns under wall, ticks under
/// logical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanRec {
    /// Interned name.
    pub name: SpanName,
    /// Nesting depth at entry (0 = root).
    pub depth: u16,
    /// Completion order (post-order: children complete before parents).
    pub seq: u64,
    /// Clock value at entry.
    pub start: u64,
    /// Total duration (exit − entry).
    pub dur: u64,
    /// Duration minus time spent in completed child spans.
    pub self_t: u64,
}

/// An open span on the stack.
#[derive(Debug, Clone, Copy, Default)]
struct Open {
    name: SpanName,
    start: u64,
    child: u64,
}

/// The recording core; see the module docs.
#[derive(Debug, Clone)]
pub struct Recorder {
    mode: ClockMode,
    origin: Origin,
    ticks: u64,
    ring: Vec<SpanRec>,
    cap: usize,
    head: usize,
    dropped: u64,
    stack: [Open; MAX_DEPTH],
    depth: usize,
    truncated: u64,
    seq: u64,
    acc: [u64; Accum::COUNT],
    counters: CounterSet,
    hists: [Histogram; HistId::COUNT],
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default ring capacity and the clock mode
    /// selected by `COFLOW_OBS_CLOCK`.
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_RING_CAP, ClockMode::from_env())
    }

    /// A recorder with an explicit ring capacity (clamped to at least 1)
    /// and clock mode. The ring is allocated here, once; recording never
    /// allocates.
    pub fn with_capacity(cap: usize, mode: ClockMode) -> Recorder {
        let cap = cap.max(1);
        Recorder {
            mode,
            origin: Origin::now(),
            ticks: 0,
            ring: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            stack: [Open::default(); MAX_DEPTH],
            depth: 0,
            truncated: 0,
            seq: 0,
            acc: [0; Accum::COUNT],
            counters: CounterSet::new(),
            hists: [Histogram::new(), Histogram::new()],
        }
    }

    /// The active clock mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Switches clock mode and rewinds the clock origin, tick counter, and
    /// completion sequence. Intended for callers (tests, benches) that must
    /// force the logical clock regardless of the environment; call it
    /// before any recording, not mid-trace.
    pub fn set_mode(&mut self, mode: ClockMode) {
        self.mode = mode;
        self.origin = Origin::now();
        self.ticks = 0;
    }

    /// One clock stamp: wall nanoseconds since the origin, or the next
    /// logical tick. Every call advances the logical clock by exactly one.
    fn now(&mut self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.origin.elapsed_ns(),
            ClockMode::Logical => {
                self.ticks += 1;
                self.ticks
            }
        }
    }

    /// Takes a stamp for a later [`Recorder::lap`].
    pub fn stamp(&mut self) -> u64 {
        self.now()
    }

    /// Adds `now − t0` to an accumulator and returns the new stamp (so
    /// back-to-back regions pay one stamp per boundary, exactly like the
    /// stopwatch code this replaces).
    pub fn lap(&mut self, a: Accum, t0: u64) -> u64 {
        let t = self.now();
        self.acc[a as usize] = self.acc[a as usize].saturating_add(t.saturating_sub(t0));
        t
    }

    /// Reads an accumulator (raw clock units, cumulative over the
    /// recorder's lifetime — take deltas for per-solve views).
    pub fn acc(&self, a: Accum) -> u64 {
        self.acc[a as usize]
    }

    /// Accumulator value in milliseconds (ticks under the logical clock).
    pub fn acc_ms(&self, a: Accum) -> f64 {
        self.mode.to_ms(self.acc(a))
    }

    /// Opens a span. Depth beyond [`MAX_DEPTH`] is tolerated (counted as
    /// truncated, no record produced).
    pub fn enter(&mut self, name: SpanName) {
        if self.depth < MAX_DEPTH {
            let start = self.now();
            self.stack[self.depth] = Open {
                name,
                start,
                child: 0,
            };
        } else {
            self.truncated += 1;
        }
        self.depth += 1;
    }

    /// Closes the innermost open span, pushes its record into the ring
    /// (evicting oldest-first when full), and returns it. An `exit`
    /// without a matching `enter` is tolerated and returns a default
    /// record.
    pub fn exit(&mut self) -> SpanRec {
        if self.depth == 0 {
            self.truncated += 1;
            return SpanRec::default();
        }
        self.depth -= 1;
        if self.depth >= MAX_DEPTH {
            // This level was never pushed; nothing to record.
            return SpanRec::default();
        }
        let open = self.stack[self.depth];
        let end = self.now();
        let dur = end.saturating_sub(open.start);
        let rec = SpanRec {
            name: open.name,
            depth: self.depth as u16,
            seq: self.seq,
            start: open.start,
            dur,
            self_t: dur.saturating_sub(open.child),
        };
        self.seq += 1;
        if self.depth > 0 {
            let parent = &mut self.stack[self.depth - 1];
            parent.child = parent.child.saturating_add(dur);
        }
        if self.ring.len() < self.cap {
            // Within the capacity reserved at construction: no allocation.
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
        rec
    }

    /// Current open-span depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Completed spans recorded so far (including any later evicted).
    pub fn spans_completed(&self) -> u64 {
        self.seq
    }

    /// Spans evicted from the ring (oldest-first) because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Adds `by` to a counter.
    pub fn bump(&mut self, c: Counter, by: u64) {
        self.counters.bump(c, by);
    }

    /// Reads a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// Merges a per-worker counter set (call on the coordinating thread,
    /// in deterministic slot order).
    pub fn merge_counters(&mut self, other: &CounterSet) {
        self.counters.merge(other);
    }

    /// Records a sample into a registered histogram.
    pub fn record_hist(&mut self, h: HistId, v: u64) {
        self.hists[h as usize].record(v);
    }

    /// Reads a registered histogram.
    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Snapshots everything into a [`Trace`] and resets the span ring (the
    /// accumulators, counters, and histograms are cumulative and stay put —
    /// they back the `SolveStats`/`EngineMetrics` views).
    pub fn drain(&mut self) -> Trace {
        let mut spans = Vec::with_capacity(self.ring.len());
        spans.extend_from_slice(&self.ring[self.head..]);
        spans.extend_from_slice(&self.ring[..self.head]);
        self.ring.clear();
        self.head = 0;
        Trace {
            mode: self.mode,
            dropped: self.dropped,
            truncated: self.truncated,
            spans,
            accums: self.acc,
            counters: self.counters,
            hists: self.hists.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Recorder {
        Recorder::with_capacity(8, ClockMode::Logical)
    }

    #[test]
    fn nesting_self_and_total_time() {
        let mut r = rec();
        r.enter(SpanName::Solve); // t=1
        r.enter(SpanName::Phase1); // t=2
        r.exit(); // t=3, phase1 dur=1
        r.enter(SpanName::Phase2); // t=4
        r.exit(); // t=5, phase2 dur=1
        let solve = r.exit(); // t=6, solve dur=5, children=2
        assert_eq!(solve.name, SpanName::Solve);
        assert_eq!(solve.dur, 5);
        assert_eq!(solve.self_t, 3);
        assert_eq!(solve.depth, 0);
        assert_eq!(r.spans_completed(), 3);
        let t = r.drain();
        assert_eq!(t.spans.len(), 3);
        // Post-order: phase1, phase2, solve.
        assert_eq!(t.spans[0].name, SpanName::Phase1);
        assert_eq!(t.spans[2].name, SpanName::Solve);
    }

    #[test]
    fn mismatched_exits_are_tolerated() {
        let mut r = rec();
        assert_eq!(r.exit(), SpanRec::default());
        for _ in 0..MAX_DEPTH + 4 {
            r.enter(SpanName::Bench);
        }
        for _ in 0..MAX_DEPTH + 4 {
            r.exit();
        }
        assert_eq!(r.depth(), 0);
        assert_eq!(r.spans_completed(), MAX_DEPTH as u64);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut r = rec(); // cap 8
        for _ in 0..12 {
            r.enter(SpanName::Bench);
            r.exit();
        }
        assert_eq!(r.dropped(), 4);
        let t = r.drain();
        assert_eq!(t.spans.len(), 8);
        let seqs: Vec<u64> = t.spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (4..12).collect::<Vec<u64>>());
    }

    #[test]
    fn lap_accumulates() {
        let mut r = rec();
        let t0 = r.stamp(); // 1
        let t1 = r.lap(Accum::Pricing, t0); // 2, +1
        r.lap(Accum::FtranBtran, t1); // 3, +1
        assert_eq!(r.acc(Accum::Pricing), 1);
        assert_eq!(r.acc(Accum::FtranBtran), 1);
        assert!((r.acc_ms(Accum::Pricing) - 1.0).abs() < 1e-12);
    }
}
