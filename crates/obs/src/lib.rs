//! `coflow-obs` — deterministic, allocation-aware tracing and metrics.
//!
//! The paper's algorithms live or die by where solve time goes — pricing vs
//! FTRAN/BTRAN vs factorization, colgen rounds vs master re-solves, epoch
//! re-plans vs executor events. This crate provides the one instrumentation
//! substrate every layer reports through:
//!
//! * **Spans** ([`Recorder::enter`] / [`Recorder::exit`]): hierarchical
//!   timed regions with pre-registered interned names ([`SpanName`]) stored
//!   in a fixed-capacity ring buffer, so hot-path recording never allocates
//!   and the steady-state `allocs == 0` contract survives.
//! * **Accumulators** ([`Accum`]): flat time sums (pricing, FTRAN/BTRAN,
//!   factorization) replacing the ad-hoc `Instant` stopwatch code that used
//!   to live in `simplex.rs`/`colgen.rs`; `SolveStats` time fields are now a
//!   view over these.
//! * **Counters and histograms** ([`Counter`], [`Histogram`]): pivots,
//!   scratch reuses, columns priced, epoch latencies → p50/p90/p99 with
//!   deterministic fixed power-of-two bucket boundaries (integer counts, so
//!   merges are order-invariant).
//! * **Two clock modes** ([`ClockMode`]): wall-clock nanoseconds for
//!   profiling, or a logical clock (event-count ticks) selected with
//!   `COFLOW_OBS_CLOCK=logical` under which traces are byte-identical
//!   across runs and thread counts — the determinism lane extended to the
//!   telemetry itself.
//! * **A JSONL trace format** ([`Trace::render_jsonl`]): one self-describing
//!   JSON object per line, integers only, rendered here so serialization is
//!   byte-stable; `coflow_workloads::io` hosts the file sink and the parse
//!   side, and the `trace_view` bin renders self/total time trees and diffs.
//!
//! Everything is plain owned state — no globals, no locks, no thread-locals.
//! Parallel sections never touch a recorder directly: per-worker tallies
//! accumulate in [`CounterSet`]s and merge on the coordinating thread in
//! deterministic slot order, so logical-clock traces do not depend on the
//! thread count.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod rec;
mod trace;

pub use hist::Histogram;
pub use rec::{Recorder, SpanRec, MAX_DEPTH};
pub use trace::Trace;

use std::time::Instant;

/// How a [`Recorder`] stamps time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Nanoseconds since the recorder's origin. Meaningful durations,
    /// non-reproducible bytes.
    #[default]
    Wall,
    /// An event-count tick: every stamp advances the clock by exactly one.
    /// Durations become deterministic event counts, so traces are
    /// byte-identical across runs and thread counts.
    Logical,
}

impl ClockMode {
    /// Reads `COFLOW_OBS_CLOCK` (`logical` selects the logical clock;
    /// anything else, including unset, selects wall-clock).
    pub fn from_env() -> ClockMode {
        match std::env::var("COFLOW_OBS_CLOCK") {
            Ok(v) if v.eq_ignore_ascii_case("logical") => ClockMode::Logical,
            _ => ClockMode::Wall,
        }
    }

    /// The name used in trace meta lines.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockMode::Wall => "wall",
            ClockMode::Logical => "logical",
        }
    }

    /// Converts a raw clock value (ns or ticks) to milliseconds. Under the
    /// logical clock a "millisecond" is one tick — documented, not hidden:
    /// downstream `*_ms` stats fields hold tick counts in that mode.
    pub fn to_ms(self, raw: u64) -> f64 {
        match self {
            ClockMode::Wall => raw as f64 / 1e6,
            ClockMode::Logical => raw as f64,
        }
    }
}

/// A wall-clock origin; stamps are nanoseconds since construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Origin(Instant);

impl Origin {
    pub(crate) fn now() -> Origin {
        Origin(Instant::now())
    }
    pub(crate) fn elapsed_ns(&self) -> u64 {
        let ns = self.0.elapsed().as_nanos();
        if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        }
    }
}

/// Pre-registered span names. Interning at compile time keeps recording
/// allocation-free and the wire format stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(usize)]
pub enum SpanName {
    /// One `WarmChain::solve` call (simplex, both phases).
    #[default]
    Solve,
    /// Phase-1 feasibility iterations inside a solve.
    Phase1,
    /// Phase-2 optimality iterations inside a solve.
    Phase2,
    /// One column-generation round (master re-solve + oracle pricing).
    ColgenRound,
    /// The restricted-master solve inside a colgen round.
    Master,
    /// The pricing-oracle call inside a colgen round.
    Oracle,
    /// One engine epoch (event arrival through rate allocation).
    Epoch,
    /// The policy re-plan inside an epoch.
    Plan,
    /// A bench-harness measurement region.
    Bench,
    /// A degradation-ladder rung inside an epoch: a plan retry, a stale
    /// schedule reuse, or a fallback-policy re-plan after the primary
    /// policy failed.
    Fallback,
}

impl SpanName {
    /// Number of registered names.
    pub const COUNT: usize = 10;

    /// Every registered name, in wire order.
    pub const ALL: [SpanName; SpanName::COUNT] = [
        SpanName::Solve,
        SpanName::Phase1,
        SpanName::Phase2,
        SpanName::ColgenRound,
        SpanName::Master,
        SpanName::Oracle,
        SpanName::Epoch,
        SpanName::Plan,
        SpanName::Bench,
        SpanName::Fallback,
    ];

    /// The interned wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanName::Solve => "solve",
            SpanName::Phase1 => "phase1",
            SpanName::Phase2 => "phase2",
            SpanName::ColgenRound => "colgen_round",
            SpanName::Master => "master",
            SpanName::Oracle => "oracle",
            SpanName::Epoch => "epoch",
            SpanName::Plan => "plan",
            SpanName::Bench => "bench",
            SpanName::Fallback => "fallback",
        }
    }
}

/// Flat time accumulators: the per-iteration stopwatch sums that used to be
/// hand-maintained `*_ms` fields in `SolveStats`. Values are raw clock units
/// (ns under [`ClockMode::Wall`], ticks under [`ClockMode::Logical`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Accum {
    /// Devex pricing scans + candidate-list maintenance.
    Pricing,
    /// Forward/backward transformations (duals, entering column, updates).
    FtranBtran,
    /// Basis (re)factorizations.
    Factor,
}

impl Accum {
    /// Number of accumulators.
    pub const COUNT: usize = 3;

    /// Every accumulator, in wire order.
    pub const ALL: [Accum; Accum::COUNT] = [Accum::Pricing, Accum::FtranBtran, Accum::Factor];

    /// The interned wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Accum::Pricing => "pricing",
            Accum::FtranBtran => "ftran_btran",
            Accum::Factor => "factor",
        }
    }
}

/// Monotone event counters. Totals are partition-invariant: parallel
/// sections tally into per-worker [`CounterSet`]s that merge (commutative
/// integer sums) on the coordinating thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Simplex basis changes across all phases.
    Pivots,
    /// Basis refactorizations.
    Refactorizations,
    /// Scratch buffers reacquired without allocating.
    ScratchReuses,
    /// Columns scored by pricing scans (full, windowed, or candidate-list).
    ColumnsPriced,
    /// Pricing-oracle invocations (one per commodity per colgen round).
    OracleCalls,
    /// Edge relaxations performed inside oracle shortest-path runs.
    OracleRelaxations,
    /// Engine epochs executed.
    Epochs,
    /// Solver recovery-ladder rungs taken after a numerical failure
    /// (refactorize retries, basis repairs, cold restarts).
    Recoveries,
    /// Faults injected by an installed fault hook (test/chaos runs only;
    /// always zero in production).
    FaultsInjected,
    /// Engine epochs that did not get a fresh primary-policy plan (stale
    /// schedule reused or fallback policy engaged).
    DegradedEpochs,
    /// Epochs planned by the fallback policy after the primary policy
    /// failed past all retries.
    PolicyFallbacks,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 11;

    /// Every counter, in wire order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Pivots,
        Counter::Refactorizations,
        Counter::ScratchReuses,
        Counter::ColumnsPriced,
        Counter::OracleCalls,
        Counter::OracleRelaxations,
        Counter::Epochs,
        Counter::Recoveries,
        Counter::FaultsInjected,
        Counter::DegradedEpochs,
        Counter::PolicyFallbacks,
    ];

    /// The interned wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::Pivots => "pivots",
            Counter::Refactorizations => "refactorizations",
            Counter::ScratchReuses => "scratch_reuses",
            Counter::ColumnsPriced => "columns_priced",
            Counter::OracleCalls => "oracle_calls",
            Counter::OracleRelaxations => "oracle_relaxations",
            Counter::Epochs => "epochs",
            Counter::Recoveries => "recoveries",
            Counter::FaultsInjected => "faults_injected",
            Counter::DegradedEpochs => "degraded_epochs",
            Counter::PolicyFallbacks => "policy_fallbacks",
        }
    }
}

/// Pre-registered histograms a [`Recorder`] maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    /// Per-epoch policy re-plan latency (raw clock units).
    Resolve,
    /// Per-round restricted-master solve latency (raw clock units).
    MasterSolve,
}

impl HistId {
    /// Number of registered histograms.
    pub const COUNT: usize = 2;

    /// Every histogram id, in wire order.
    pub const ALL: [HistId; HistId::COUNT] = [HistId::Resolve, HistId::MasterSolve];

    /// The interned wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            HistId::Resolve => "resolve",
            HistId::MasterSolve => "master_solve",
        }
    }
}

/// A fixed array of [`Counter`] tallies. Cheap to embed per worker in
/// parallel sections; merging is an integer sum per slot, so the merged
/// totals are independent of partition and merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    vals: [u64; Counter::COUNT],
}

impl CounterSet {
    /// An all-zero set.
    pub const fn new() -> CounterSet {
        CounterSet {
            vals: [0; Counter::COUNT],
        }
    }

    /// Adds `by` to one counter.
    pub fn bump(&mut self, c: Counter, by: u64) {
        self.vals[c as usize] = self.vals[c as usize].saturating_add(by);
    }

    /// Reads one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Adds every slot of `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Resets every slot to zero (for reusable per-worker scratch).
    pub fn clear(&mut self) {
        self.vals = [0; Counter::COUNT];
    }
}
