//! Drained trace snapshots and their canonical JSONL serialization.
//!
//! The wire format is one self-describing JSON object per line, integer
//! values only, rendered here with plain decimal formatting — no floats, no
//! locale, no map iteration — so a logical-clock trace serializes to
//! byte-identical output across runs and thread counts:
//!
//! ```text
//! {"type":"meta","schema":"coflow-trace/v1","clock":"logical","spans":3,"dropped":0,"truncated":0}
//! {"type":"span","seq":0,"name":"phase1","depth":1,"start":2,"dur":1,"self":1}
//! {"type":"accum","name":"pricing","value":42}
//! {"type":"counter","name":"pivots","value":17}
//! {"type":"hist","name":"resolve","total":5,"buckets":[[3,2],[4,3]]}
//! ```
//!
//! `coflow_workloads::io` writes these lines to disk next to the JSON bench
//! snapshots and parses them back one JSON value per line; the `trace_view`
//! bin turns them into self/total time trees and diffs.

use crate::hist::Histogram;
use crate::rec::SpanRec;
use crate::{Accum, ClockMode, Counter, CounterSet, HistId, SpanName};
use std::fmt::Write as _;

/// A drained snapshot of a [`Recorder`](crate::Recorder): completed spans
/// oldest-first plus cumulative accumulators, counters, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Clock mode the trace was recorded under (defines the unit of every
    /// time value: ns for wall, ticks for logical).
    pub mode: ClockMode,
    /// Spans evicted from the ring before this drain.
    pub dropped: u64,
    /// Span-stack overflows / mismatched exits tolerated while recording.
    pub truncated: u64,
    /// Completed spans in completion (post-) order.
    pub spans: Vec<SpanRec>,
    /// Cumulative accumulator values, indexed by [`Accum`].
    pub accums: [u64; Accum::COUNT],
    /// Cumulative counters.
    pub counters: CounterSet,
    /// Registered histograms, indexed by [`HistId`].
    pub hists: [Histogram; HistId::COUNT],
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Sum of total durations of spans with this name, in milliseconds
    /// (ticks under the logical clock).
    pub fn span_total_ms(&self, name: SpanName) -> f64 {
        let raw: u64 = self
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur)
            .sum();
        self.mode.to_ms(raw)
    }

    /// Sum of self times of spans with this name, in milliseconds.
    pub fn span_self_ms(&self, name: SpanName) -> f64 {
        let raw: u64 = self
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.self_t)
            .sum();
        self.mode.to_ms(raw)
    }

    /// Number of retained spans with this name.
    pub fn span_count(&self, name: SpanName) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// An accumulator value in milliseconds.
    pub fn accum_ms(&self, a: Accum) -> f64 {
        self.mode.to_ms(self.accums[a as usize])
    }

    /// A counter value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// Renders the canonical JSONL serialization (trailing newline
    /// included). Byte-stable: integers only, fixed key and line order.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"schema\":\"coflow-trace/v1\",\"clock\":\"{}\",\"spans\":{},\"dropped\":{},\"truncated\":{}}}",
            self.mode.as_str(),
            self.spans.len(),
            self.dropped,
            self.truncated,
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"seq\":{},\"name\":\"{}\",\"depth\":{},\"start\":{},\"dur\":{},\"self\":{}}}",
                s.seq,
                s.name.as_str(),
                s.depth,
                s.start,
                s.dur,
                s.self_t,
            );
        }
        for a in Accum::ALL {
            let _ = writeln!(
                out,
                "{{\"type\":\"accum\",\"name\":\"{}\",\"value\":{}}}",
                a.as_str(),
                self.accums[a as usize],
            );
        }
        for c in Counter::ALL {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                c.as_str(),
                self.counters.get(c),
            );
        }
        for h in HistId::ALL {
            let hist = &self.hists[h as usize];
            let mut buckets = String::new();
            for (i, (b, c)) in hist.nonzero_buckets().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{b},{c}]");
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":\"{}\",\"total\":{},\"buckets\":[{}]}}",
                h.as_str(),
                hist.total(),
                buckets,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn jsonl_is_deterministic_for_logical_clock() {
        let run = || {
            let mut r = Recorder::with_capacity(16, ClockMode::Logical);
            r.enter(SpanName::Solve);
            r.enter(SpanName::Phase2);
            r.exit();
            r.exit();
            r.bump(Counter::Pivots, 3);
            let t0 = r.stamp();
            r.lap(Accum::Pricing, t0);
            r.record_hist(HistId::Resolve, 5);
            r.drain().render_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"type\":\"meta\""));
        assert!(a.contains("\"name\":\"phase2\""));
        assert!(a.contains("\"name\":\"pivots\",\"value\":3"));
        assert!(a.contains("\"buckets\":[[3,1]]"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn span_sums() {
        let mut r = Recorder::with_capacity(16, ClockMode::Logical);
        for _ in 0..3 {
            r.enter(SpanName::Master);
            r.exit();
        }
        let t = r.drain();
        assert_eq!(t.span_count(SpanName::Master), 3);
        assert!((t.span_total_ms(SpanName::Master) - 3.0).abs() < 1e-12);
        assert_eq!(t.span_count(SpanName::Oracle), 0);
    }
}
