//! Deterministic fixed-boundary histograms.
//!
//! Buckets are powers of two over the full `u64` range, fixed at compile
//! time: value `v > 0` lands in bucket `floor(log2 v) + 1` (bucket 0 holds
//! exact zeros). Counts are integers, so merging shards is a commutative
//! integer sum per bucket — the aggregate is identical no matter how work
//! was partitioned across threads or in what order shards merge. Quantiles
//! are read as the inclusive upper edge of the bucket where the cumulative
//! count first reaches the requested rank, which makes them deterministic
//! too (at the cost of power-of-two resolution, plenty for p50/p90/p99
//! latency reporting).

/// Number of buckets: one for zero plus one per possible `log2` of a `u64`.
const BUCKETS: usize = 65;

/// A fixed-boundary power-of-two histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Bucket index for a sample.
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper edge of a bucket (`u64::MAX` for the last one).
    fn upper_edge(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Histogram::bucket(v)] += 1;
        self.total = self.total.saturating_add(1);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// The inclusive upper edge of the bucket where the cumulative count
    /// first reaches `ceil(q * total)` samples; 0 for an empty histogram.
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::upper_edge(b);
            }
        }
        u64::MAX
    }

    /// Non-empty buckets as `(bucket index, count)` pairs in index order
    /// (the sparse wire representation).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        assert_eq!(Histogram::upper_edge(2), 3);
        assert_eq!(Histogram::upper_edge(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_edges() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        // p50 rank = ceil(0.5*5) = 3 → third sample lives in bucket(3)=2.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank = 5 → bucket(1000)=10, edge 1023.
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let vals: Vec<u64> = (0..1000).map(|i| (i * i * 31 + 7) % 100_000).collect();
        let mut whole = Histogram::new();
        for &v in &vals {
            whole.record(v);
        }
        // Shard across 4 "threads", merge in reverse order.
        let mut shards = vec![Histogram::new(); 4];
        for (i, &v) in vals.iter().enumerate() {
            shards[i % 4].record(v);
        }
        let mut merged = Histogram::new();
        for s in shards.iter().rev() {
            merged.merge(s);
        }
        assert_eq!(whole, merged);
        assert_eq!(whole.quantile(0.5), merged.quantile(0.5));
    }
}
