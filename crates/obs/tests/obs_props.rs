//! Property tests for the recording core.
//!
//! * **Ring wraparound** — a recorder never loses a span while the total
//!   stays within its ring capacity; past capacity it evicts exactly
//!   oldest-first, so the retained window is always the suffix of the
//!   completion sequence.
//! * **Histogram determinism** — sharding samples across any number of
//!   "threads" and merging in any order reproduces the sequential
//!   histogram exactly, bucket for bucket and quantile for quantile.
//! * **Logical-clock replay** — the same recording sequence renders to
//!   byte-identical JSONL on every replay: the logical clock depends only
//!   on the call sequence, never on elapsed time.

use coflow_obs::{ClockMode, Histogram, Recorder, SpanName, MAX_DEPTH};
use proptest::prelude::*;

/// The span vocabulary sampled by the generators.
const NAMES: [SpanName; 5] = [
    SpanName::Solve,
    SpanName::Phase1,
    SpanName::Phase2,
    SpanName::Master,
    SpanName::Oracle,
];

/// Replays `ops` into `rec`: `(name_idx, true)` enters, `(_, false)` exits.
/// Unmatched exits are legal by contract (tolerated, counted as truncated);
/// leftover opens are closed at the end so the ring holds every span.
fn replay(rec: &mut Recorder, ops: &[(u8, bool)]) {
    for &(n, enter) in ops {
        if enter {
            rec.enter(NAMES[n as usize % NAMES.len()]);
        } else {
            rec.exit();
        }
    }
    while rec.depth() > 0 {
        rec.exit();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_keeps_every_span_below_capacity_and_evicts_oldest_above(
        cap in 1usize..48,
        ops in proptest::collection::vec((0u8..5, proptest::bool::ANY), 0..96),
    ) {
        let mut rec = Recorder::with_capacity(cap, ClockMode::Logical);
        replay(&mut rec, &ops);
        let completed = rec.spans_completed();
        let trace = rec.drain();

        if completed <= cap as u64 {
            // Below capacity: nothing may be lost.
            prop_assert_eq!(trace.dropped, 0);
            prop_assert_eq!(trace.spans.len() as u64, completed);
        } else {
            // Above capacity: exactly the overflow is dropped, oldest-first.
            prop_assert_eq!(trace.dropped, completed - cap as u64);
            prop_assert_eq!(trace.spans.len(), cap);
        }
        // The retained window is always the completion-order suffix.
        let seqs: Vec<u64> = trace.spans.iter().map(|s| s.seq).collect();
        let expect: Vec<u64> = (trace.dropped..completed).collect();
        prop_assert_eq!(seqs, expect);
    }

    #[test]
    fn histogram_shards_merge_to_the_sequential_result(
        samples in proptest::collection::vec(0u64..1_000_000, 0..256),
        shards in 1usize..9,
        reverse in proptest::bool::ANY,
    ) {
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let mut parts = vec![Histogram::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut merged = Histogram::new();
        if reverse {
            for p in parts.iter().rev() {
                merged.merge(p);
            }
        } else {
            for p in &parts {
                merged.merge(p);
            }
        }
        prop_assert_eq!(&whole, &merged);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(whole.quantile(q), merged.quantile(q));
        }
    }

    #[test]
    fn logical_clock_replay_renders_byte_identical_jsonl(
        ops in proptest::collection::vec((0u8..5, proptest::bool::ANY), 0..64),
    ) {
        let run = || {
            let mut rec = Recorder::with_capacity(128, ClockMode::Logical);
            replay(&mut rec, &ops);
            rec.drain().render_jsonl()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn depth_overflow_never_corrupts_the_stack(
        extra in 0usize..8,
        tail in proptest::collection::vec((0u8..5, proptest::bool::ANY), 0..16),
    ) {
        let mut rec = Recorder::with_capacity(256, ClockMode::Logical);
        for _ in 0..MAX_DEPTH + extra {
            rec.enter(SpanName::Bench);
        }
        for _ in 0..MAX_DEPTH + extra {
            rec.exit();
        }
        prop_assert_eq!(rec.depth(), 0);
        // The recorder keeps working normally after the overflow.
        replay(&mut rec, &tail);
        prop_assert_eq!(rec.depth(), 0);
    }
}
