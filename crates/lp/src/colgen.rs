//! Delayed column generation: restricted masters, dual-priced oracles, and
//! a persistent column pool.
//!
//! The paper's path-formulation LPs (§2.2 (15)–(23), §3.2 (25)–(32)) range
//! over *all* candidate paths per flow × interval. Materializing that set
//! eagerly is the single biggest wall-clock cost in the repo: the simplex
//! prices hundreds of thousands of columns that never enter the basis.
//! Column generation is the textbook fix — solve a *restricted master* over
//! a small column subset, then ask a *pricing oracle* (a shortest-path
//! computation under the master's row duals) for the most-negative-
//! reduced-cost column not yet present, inject it, and re-solve until no
//! improving column exists. Because the master only ever *grows* and every
//! column keeps a stable name, each re-solve warm-starts from the previous
//! optimal basis through the ordinary [`WarmChain`] machinery.
//!
//! This module hosts the LP-generic pieces:
//!
//! * [`solve_colgen`] — the restricted-master loop. It is oracle-agnostic:
//!   the caller supplies a closure that reads the current [`Solution`]'s
//!   row duals and appends improving columns via [`Model::add_column`],
//!   returning how many it added (0 terminates the loop).
//! * [`ColumnPool`] — a persistent, generic interning pool: columns are
//!   deduplicated by a caller-chosen `u64` signature within a *group*
//!   (one group per flow at the call sites), and every interned item gets
//!   a **stable index** within its group. Call sites derive variable names
//!   from `(group, stable index)`, so rebuilding a master from the same
//!   pool — the next solve of a growing sequence, or the next epoch of the
//!   online engine — reproduces every column's name and the previous
//!   [`Basis`](crate::Basis) snapshot still maps onto it.
//! * [`ColGenStats`] — per-run accounting: rounds, columns generated vs
//!   seeded, oracle time vs master (simplex) time.
//!
//! What this module deliberately does *not* know about: graphs, paths,
//! intervals. The oracles live next to their formulations
//! (`coflow_net::pricing` for the Dijkstra/Bellman–Ford machinery,
//! `coflow_core` for the LP-specific reduced-cost assembly).

use crate::basis::SolveStats;
use crate::fault::{perturb_duals_in_place, ColgenFault};
use crate::model::{LpError, Model, Solution, SolverOptions};
use crate::WarmChain;
use coflow_obs::{Counter, SpanName};
// lint: allow(hash_order) — by_sig is a lookup-only dedup index, never iterated
use std::collections::HashMap;

/// A persistent interning pool for generated columns.
///
/// Items (e.g. [`Path`](../coflow_net/struct.Path.html)s) are deduplicated
/// by `(group, signature)` and receive a stable per-group index in
/// insertion order. The pool outlives individual solves: threading one pool
/// through a sequence of related masters (growing grids, online epochs)
/// means later solves are *seeded* with every column earlier solves paid an
/// oracle call to discover.
#[derive(Clone, Debug)]
pub struct ColumnPool<T> {
    groups: Vec<PoolGroup<T>>,
}

#[derive(Clone, Debug)]
struct PoolGroup<T> {
    by_sig: HashMap<u64, u32>,
    items: Vec<T>,
}

impl<T> Default for PoolGroup<T> {
    fn default() -> Self {
        Self {
            by_sig: HashMap::new(),
            items: Vec::new(),
        }
    }
}

impl<T> Default for ColumnPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ColumnPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self { groups: Vec::new() }
    }

    /// Number of groups ever touched.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total items across all groups.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.items.len()).sum()
    }

    /// True when no item has been interned.
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(|g| g.items.is_empty())
    }

    /// The items of `group` in stable (insertion) order; empty for groups
    /// never touched.
    pub fn group(&self, group: usize) -> &[T] {
        self.groups.get(group).map_or(&[], |g| &g.items)
    }

    /// True when `(group, signature)` is already interned.
    pub fn contains(&self, group: usize, signature: u64) -> bool {
        self.groups
            .get(group)
            .is_some_and(|g| g.by_sig.contains_key(&signature))
    }

    /// Interns an item: returns its stable index within `group` and whether
    /// it was newly inserted (`make` runs only on insertion).
    pub fn insert_with(
        &mut self,
        group: usize,
        signature: u64,
        make: impl FnOnce() -> T,
    ) -> (u32, bool) {
        if group >= self.groups.len() {
            self.groups.resize_with(group + 1, PoolGroup::default);
        }
        let g = &mut self.groups[group];
        if let Some(&idx) = g.by_sig.get(&signature) {
            return (idx, false);
        }
        let idx = g.items.len() as u32;
        g.by_sig.insert(signature, idx);
        g.items.push(make());
        (idx, true)
    }

    /// Drops every interned item (groups stay allocated).
    pub fn clear(&mut self) {
        for g in &mut self.groups {
            g.by_sig.clear();
            g.items.clear();
        }
    }
}

/// Accounting of one [`solve_colgen`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ColGenStats {
    /// Restricted-master solves performed (≥ 1).
    pub rounds: usize,
    /// Structural columns the initial master was seeded with.
    pub seeded_cols: usize,
    /// Columns the pricing oracle injected across all rounds.
    pub generated_cols: usize,
    /// Structural columns of the final master (`seeded + generated`).
    pub final_cols: usize,
    /// Total simplex pivots across all master solves.
    pub total_iterations: usize,
    /// Time inside the master solves, in milliseconds — the sum of the
    /// trace's `master` span durations (ticks under the logical clock).
    pub master_ms: f64,
    /// Time inside the pricing oracle, in milliseconds — the sum of the
    /// trace's `oracle` span durations (ticks under the logical clock).
    pub pricing_ms: f64,
    /// True when the loop stopped because the oracle found nothing
    /// (optimality over the full column set is certified); false when it
    /// stopped at `max_rounds` (the solution is only the *restricted*
    /// optimum).
    pub converged: bool,
    /// The final master solve's statistics.
    pub last: SolveStats,
}

/// Solves `model` by delayed column generation.
///
/// `model` is the seeded restricted master (rows complete, columns
/// restricted); `price` inspects the current optimal [`Solution`] — its
/// `duals` in particular — and appends improving columns to the model via
/// [`Model::add_column`], returning how many it added. The loop re-solves
/// (warm-started through `chain`, since the master only grows and names are
/// stable) until the oracle adds nothing or `max_rounds` is reached, and
/// returns the last solution together with [`ColGenStats`].
///
/// Two degradation controls tighten the loop without failing it, both
/// returning the current restricted optimum with `converged = false`:
/// [`SolverOptions::budget`]'s `max_colgen_rounds` caps rounds below the
/// caller's `max_rounds`, and an installed
/// [`FaultHook`](crate::FaultHook) may abort a round's pricing or perturb
/// the duals handed to the oracle (chaos testing of exactly that degraded
/// path).
///
/// Correctness contract for `price`:
/// * it must only **add columns** (never rows — asserted) and never add a
///   column that is already present, or the loop cannot terminate;
/// * returning 0 asserts that no column of the full formulation has a
///   negative reduced cost, i.e. the restricted optimum is the full
///   optimum.
///
/// # Panics
/// If `price` changes the model's row count.
pub fn solve_colgen(
    model: &mut Model,
    opts: &SolverOptions,
    chain: &mut WarmChain,
    max_rounds: usize,
    mut price: impl FnMut(&Solution, &mut Model) -> usize,
) -> Result<(Solution, ColGenStats), LpError> {
    assert!(max_rounds >= 1, "need at least one master solve");
    let cap = match opts.budget.max_colgen_rounds {
        Some(b) => max_rounds.min(b.max(1)),
        None => max_rounds,
    };
    let mut stats = ColGenStats {
        seeded_cols: model.num_vars(),
        ..Default::default()
    };
    loop {
        stats.rounds += 1;
        // The round/master/oracle spans live in the chain's recorder; the
        // `master_ms`/`pricing_ms` stats are read back off the span records
        // (one clock, one bookkeeping system).
        chain.obs().enter(SpanName::ColgenRound);
        chain.obs().enter(SpanName::Master);
        let res = chain.solve(model, opts);
        let master = chain.obs().exit();
        let sol = match res {
            Ok(sol) => sol,
            Err(e) => {
                chain.obs().exit(); // balance the colgen_round span
                return Err(e);
            }
        };
        stats.master_ms += chain.obs().mode().to_ms(master.dur);
        stats.total_iterations += sol.stats.iterations;
        stats.last = sol.stats;
        // Stop *before* pricing when the round budget is exhausted, so the
        // returned solution is always optimal for the returned master.
        if stats.rounds >= cap {
            chain.obs().exit();
            stats.final_cols = model.num_vars();
            return Ok((sol, stats));
        }
        // Fault hook: consulted at this serial point, once per round, before
        // the duals reach the oracle (see `crate::fault` for the contract).
        let fault = chain
            .fault_hook_mut()
            .map_or(ColgenFault::None, |h| h.on_colgen_round(stats.rounds));
        if fault != ColgenFault::None {
            chain.obs().bump(Counter::FaultsInjected, 1);
        }
        if fault == ColgenFault::AbortPricing {
            // Oracle outage: the restricted optimum, un-converged — the same
            // degraded contract as hitting the round budget.
            chain.obs().exit();
            stats.final_cols = model.num_vars();
            return Ok((sol, stats));
        }
        let rows_before = model.num_rows();
        chain.obs().enter(SpanName::Oracle);
        let added = if let ColgenFault::PerturbDuals(eps) = fault {
            let mut noisy = sol.clone();
            perturb_duals_in_place(&mut noisy.duals, eps);
            price(&noisy, model)
        } else {
            price(&sol, model)
        };
        let oracle = chain.obs().exit();
        stats.pricing_ms += chain.obs().mode().to_ms(oracle.dur);
        chain.obs().exit();
        assert_eq!(
            model.num_rows(),
            rows_before,
            "pricing oracles may only add columns"
        );
        stats.generated_cols += added;
        if added == 0 {
            stats.converged = true;
            stats.final_cols = model.num_vars();
            return Ok((sol, stats));
        }
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::model::Cmp;

    #[test]
    fn pool_dedups_by_signature_with_stable_indices() {
        let mut pool: ColumnPool<Vec<u32>> = ColumnPool::new();
        let (a, fresh_a) = pool.insert_with(0, 0xFEED, || vec![1, 2]);
        let (b, fresh_b) = pool.insert_with(0, 0xBEEF, || vec![3]);
        let (a2, fresh_a2) = pool.insert_with(0, 0xFEED, || panic!("must not rebuild"));
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!((a, b, a2), (0, 1, 0));
        assert_eq!(pool.group(0), &[vec![1, 2], vec![3]]);
        // Same signature in another group is a distinct entry.
        let (c, fresh_c) = pool.insert_with(3, 0xFEED, || vec![9]);
        assert!(fresh_c);
        assert_eq!(c, 0);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.group_count(), 4);
        assert!(pool.group(1).is_empty());
        assert!(pool.contains(0, 0xBEEF) && !pool.contains(1, 0xBEEF));
        pool.clear();
        assert!(pool.is_empty());
    }

    /// Transportation LP solved by column generation must match the eager
    /// full-column solve exactly, while generating only the columns it
    /// needs.
    #[test]
    fn colgen_matches_eager_on_transport() {
        let n = 8usize;
        let cost = |i: usize, j: usize| ((i * 7 + j * 13) % 10) as f64 + 1.0;
        let supply = |i: usize| 1.0 + (i % 3) as f64;
        let demand_cap: f64 = (0..n).map(supply).sum::<f64>() / n as f64 + 1.0;

        // Eager: all n² columns.
        let mut full = Model::new();
        let mut vars = vec![vec![]; n];
        for (i, row) in vars.iter_mut().enumerate() {
            for j in 0..n {
                row.push(full.add_nonneg(cost(i, j), format!("x{i}_{j}")));
            }
        }
        for (i, row) in vars.iter().enumerate() {
            let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
            full.add_row(Cmp::Eq, supply(i), &terms);
        }
        for j in 0..n {
            let terms: Vec<_> = (0..n).map(|i| (vars[i][j], 1.0)).collect();
            full.add_row(Cmp::Le, demand_cap, &terms);
        }
        let eager = full.solve().unwrap();

        // Restricted master: rows first, then a sparse diagonal seed.
        let mut m = Model::new();
        let supply_rows: Vec<_> = (0..n).map(|i| m.add_row(Cmp::Eq, supply(i), &[])).collect();
        let demand_rows: Vec<_> = (0..n)
            .map(|_| m.add_row(Cmp::Le, demand_cap, &[]))
            .collect();
        let mut present = std::collections::HashSet::new();
        for i in 0..n {
            for j in [i, (i + n / 2) % n] {
                m.add_column(
                    cost(i, j),
                    0.0,
                    f64::INFINITY,
                    format!("x{i}_{j}"),
                    &[(supply_rows[i], 1.0), (demand_rows[j], 1.0)],
                );
                present.insert((i, j));
            }
        }

        let mut chain = WarmChain::new();
        let (sol, stats) = solve_colgen(
            &mut m,
            &SolverOptions::default(),
            &mut chain,
            100,
            |sol, m| {
                let mut added = 0;
                for i in 0..n {
                    for j in 0..n {
                        if present.contains(&(i, j)) {
                            continue;
                        }
                        let d = cost(i, j) - sol.dual(supply_rows[i]) - sol.dual(demand_rows[j]);
                        if d < -1e-9 {
                            m.add_column(
                                cost(i, j),
                                0.0,
                                f64::INFINITY,
                                format!("x{i}_{j}"),
                                &[(supply_rows[i], 1.0), (demand_rows[j], 1.0)],
                            );
                            present.insert((i, j));
                            added += 1;
                        }
                    }
                }
                added
            },
        )
        .unwrap();

        assert!(
            (sol.objective - eager.objective).abs() < 1e-7,
            "colgen {} vs eager {}",
            sol.objective,
            eager.objective
        );
        assert_eq!(stats.seeded_cols, 2 * n);
        assert_eq!(stats.final_cols, stats.seeded_cols + stats.generated_cols);
        assert!(
            stats.final_cols < n * n,
            "colgen must not materialize the full column set ({} vs {})",
            stats.final_cols,
            n * n
        );
        assert!(stats.rounds >= 2, "pricing must have fired");
        assert_eq!(chain.stats().solves, stats.rounds);
    }

    /// A master solve that exhausts the recovery ladder surfaces as
    /// `LpError::Numerical` from `solve_colgen` itself: the error is not
    /// swallowed, pricing never runs, and the chain stays usable for a
    /// retry once the hook is cleared.
    #[test]
    fn numerical_failure_propagates_out_of_solve_colgen() {
        struct AlwaysFail;
        impl crate::FaultHook for AlwaysFail {
            fn on_factorization(&mut self) -> bool {
                true
            }
        }
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(2.0, "y");
        m.add_row(Cmp::Ge, 1.0, &[(x, 1.0), (y, 1.0)]);
        m.add_row(Cmp::Ge, 1.0, &[(x, 1.0), (y, 2.0)]);

        let mut chain = WarmChain::new();
        chain.set_fault_hook(Some(Box::new(AlwaysFail)));
        let mut priced = 0usize;
        let err = solve_colgen(&mut m, &SolverOptions::default(), &mut chain, 4, |_, _| {
            priced += 1;
            0
        })
        .unwrap_err();
        assert!(matches!(err, LpError::Numerical(_)), "{err:?}");
        assert_eq!(priced, 0, "pricing must not run after a failed master");

        // Clearing the hook heals the chain: the same model now solves.
        chain.set_fault_hook(None);
        let (sol, stats) =
            solve_colgen(&mut m, &SolverOptions::default(), &mut chain, 4, |_, _| 0).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9);
        assert_eq!(stats.rounds, 1);
    }

    /// Hitting the round cap returns the current restricted optimum (still
    /// a valid LP solution of the *restricted* master).
    #[test]
    fn round_cap_returns_restricted_optimum() {
        let mut m = Model::new();
        let r = m.add_row(Cmp::Ge, 1.0, &[]);
        m.add_column(2.0, 0.0, f64::INFINITY, "a", &[(r, 1.0)]);
        let mut calls = 0usize;
        let (sol, stats) = solve_colgen(
            &mut m,
            &SolverOptions::default(),
            &mut WarmChain::new(),
            1,
            |_, _| {
                calls += 1;
                1
            },
        )
        .unwrap();
        assert_eq!(calls, 0, "round cap must stop before pricing");
        assert_eq!(stats.rounds, 1);
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }
}
