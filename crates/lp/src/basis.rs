//! Basis snapshots for warm-started LP sequences, and per-solve statistics.
//!
//! The coflow algorithms solve *sequences* of structurally related LPs: the
//! interval-indexed LPs of §2.1/§2.2 re-solved on a grown interval grid, and
//! the time-expanded LP of §3.2 re-solved on a longer horizon. Each model in
//! such a sequence embeds its predecessor: every old variable keeps its
//! meaning (and its *name*), and new variables/rows only extend the problem.
//!
//! A [`Basis`] therefore records the final simplex state **keyed by variable
//! name**, not by index: variable indices shift when the grid grows (each
//! flow's interval block gains columns), but names like `x{flat}:{l}` are
//! stable. Mapping a snapshot onto a grown model is then a hash lookup per
//! variable. Basic *slacks* are remembered by row name when the row is named
//! and by original row index always (exact whenever the grown model keeps
//! the old rows as a prefix); rows the mapping cannot account for are
//! completed by a rank-revealing elimination (see
//! `sparse_lu::complete_basis_into`) with a bounded feasibility-repair loop.
//!
//! Snapshots only store the *exceptional* statuses (basic, nonbasic at upper
//! bound); everything else defaults to nonbasic at lower bound, which is
//! also the status assigned to variables the snapshot has never seen. A
//! warm start can always be rejected: if the mapped basis is singular or the
//! resulting point is primally infeasible, the solver silently falls back to
//! its cold crash basis (recorded in [`SolveStats::warm_used`]).

use std::collections::BTreeMap;

/// Status of a variable in a basis snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SnapStat {
    /// In the basis.
    Basic,
    /// Nonbasic at its (finite) upper bound.
    AtUpper,
}

/// A reusable snapshot of an optimal simplex basis, keyed by variable name.
///
/// Produced by [`crate::Model::solve_with_basis`] / [`crate::Model::solve_warm`]
/// and consumed by [`crate::Model::solve_warm`] on a structurally related
/// (typically grown) model. Opaque: only size accessors are public.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Basis {
    /// Exceptional statuses by variable name (absent = at lower bound).
    pub(crate) stat: BTreeMap<String, SnapStat>,
    /// Names of *rows* whose slack was basic (named rows only). Names
    /// survive arbitrary row reordering between related models.
    pub(crate) basic_slacks: std::collections::BTreeSet<String>,
    /// Original row indices whose slack was basic (recorded for every
    /// basic slack, named or not). Valid as long as the grown model keeps
    /// its predecessor's rows as a prefix — the common growth pattern —
    /// and harmless otherwise: a mis-mapped slack just fails the warm
    /// start's feasibility validation and triggers a cold start.
    pub(crate) basic_slack_rows: std::collections::BTreeSet<u32>,
    /// Original indices of the rows that made it into the snapshot's
    /// *working* problem (survived presolve). A related model's row that is
    /// **not** in this set — presolved away back then (empty or singleton,
    /// e.g. a column-generation capacity row no column touched yet), or
    /// genuinely new — was satisfied strictly at the old optimum, so its
    /// slack is implicitly basic: the warm-start mapping seeds those slacks
    /// to keep the implied point exactly at the old optimum instead of
    /// letting the basis completion cover such rows with structural
    /// columns and scramble it.
    pub(crate) kept_rows: std::collections::BTreeSet<u32>,
    /// Row count of the model this snapshot was taken from (diagnostics).
    pub(crate) rows: usize,
}

impl Basis {
    /// Number of variables recorded with a non-default status.
    pub fn len(&self) -> usize {
        self.stat.len()
    }

    /// True when the snapshot carries no information (cold start).
    pub fn is_empty(&self) -> bool {
        self.stat.is_empty() && self.basic_slack_rows.is_empty()
    }

    /// Number of basic variables recorded (structurals + slacks).
    pub fn basic_count(&self) -> usize {
        self.stat
            .values()
            .filter(|s| **s == SnapStat::Basic)
            .count()
            + self.basic_slack_rows.len()
    }

    /// Row count of the originating model (diagnostics).
    pub fn source_rows(&self) -> usize {
        self.rows
    }
}

/// Per-solve statistics of the revised simplex.
///
/// Returned on every [`crate::Solution`] (as `stats`); the benchmark
/// harness serializes these into `BENCH_lp.json` so factorization and
/// warm-start behavior is measured, not asserted.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Total simplex pivots across both phases.
    pub iterations: usize,
    /// Pivots spent minimizing infeasibility (phase 1).
    pub phase1_iterations: usize,
    /// Basis (re)factorizations performed, including the initial one.
    pub refactorizations: usize,
    /// Nonzeros of the last basis factorization (L + U for the sparse
    /// backend, `m²` for the dense-inverse backend).
    pub factor_nnz: usize,
    /// Nonzeros of the basis matrix itself at the last factorization
    /// (`factor_nnz / basis_nnz` is the fill-in ratio).
    pub basis_nnz: usize,
    /// Working rows after presolve.
    pub rows: usize,
    /// Working columns (structurals + slacks) after presolve.
    pub cols: usize,
    /// A warm-start basis was supplied.
    pub warm_attempted: bool,
    /// The warm basis was accepted (primal-feasible after mapping); when
    /// false despite `warm_attempted`, the solver cold-started.
    pub warm_used: bool,
    /// Milliseconds spent scanning reduced costs / maintaining devex
    /// weights (the pricing side of each pivot).
    pub pricing_ms: f64,
    /// Milliseconds spent in FTRAN/BTRAN solves against the factorization
    /// (duals, entering-column images, basic-value recomputation).
    pub ftran_btran_ms: f64,
    /// Milliseconds spent (re)factorizing the basis.
    pub factor_ms: f64,
    /// Workspace acquisitions that had to allocate (grow a scratch
    /// buffer). Zero means the whole solve ran inside capacity retained
    /// by earlier solves on the same [`Scratch`](crate::Scratch) — the
    /// steady-state goal of warm-chained epoch re-solves. See the
    /// counting contract on [`crate::scratch`].
    pub allocs: usize,
    /// Workspace acquisitions served from retained scratch capacity.
    pub scratch_reuse: usize,
    /// Full pricing scans over every column (parallel across fixed
    /// sections when [`SolverOptions::threads`](crate::SolverOptions) >
    /// 1): the expensive pivots candidate-list pricing tries to avoid.
    pub pricing_full_scans: usize,
    /// Pivots priced without scanning every column: served from the
    /// candidate list ([`Pricing::Candidate`](crate::Pricing)) or from an
    /// early-stopping window ([`Pricing::Partial`](crate::Pricing)).
    pub pricing_list_hits: usize,
    /// Worker threads the solve ran with (`SolverOptions::threads`,
    /// clamped to at least 1). Purely informational: results are byte
    /// identical at any thread count.
    pub threads: usize,
    /// The solve returned a budget-truncated (feasible, possibly
    /// suboptimal) point — see [`crate::Budget`].
    pub truncated: bool,
    /// Times the anti-cycling monitor saw a repeated basis signature on a
    /// degenerate pivot and locked pricing to Bland's rule for the rest of
    /// the phase.
    pub cycles_detected: usize,
    /// Recovery-ladder rung 1: refactorize-in-place retries after a
    /// numerical failure mid-phase.
    pub recovery_refactorizations: usize,
    /// Recovery-ladder rung 2: basis repairs (rebuild the crash basis and
    /// restore feasibility from the current point).
    pub recovery_basis_repairs: usize,
    /// Recovery-ladder rung 3: cold restarts from the all-artificial
    /// identity basis (the factorization that cannot fail).
    pub recovery_cold_restarts: usize,
}

impl SolveStats {
    /// Fill-in ratio of the factorization (`factor_nnz / basis_nnz`);
    /// 0 when no factorization happened (trivial LPs).
    pub fn fill_ratio(&self) -> f64 {
        if self.basis_nnz == 0 {
            0.0
        } else {
            self.factor_nnz as f64 / self.basis_nnz as f64
        }
    }
}

/// Chains solves of structurally related (typically growing) models,
/// warm-starting each solve from the previous one's optimal basis.
///
/// The coflow call sites thread one `WarmChain` through a sequence of LPs
/// built on a growing interval grid or time horizon; a fresh chain degrades
/// to plain cold solves, so wrappers for one-shot solves can share the same
/// code path.
#[derive(Clone, Debug, Default)]
pub struct WarmChain {
    basis: Option<Basis>,
    stats: ChainStats,
    /// Reusable solver workspace: buffers and factors retained between
    /// the chain's solves (cloning a chain resets it — capacity is a
    /// cache, not state).
    scratch: crate::scratch::Scratch,
}

/// Aggregate statistics over a [`WarmChain`]'s solves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Solves performed through the chain.
    pub solves: usize,
    /// Solves that had a basis snapshot to attempt.
    pub warm_attempted: usize,
    /// Solves where the warm basis was accepted.
    pub warm_used: usize,
    /// Total simplex iterations across all solves.
    pub total_iterations: usize,
    /// Total phase-1 (feasibility) iterations across all solves.
    pub total_phase1: usize,
    /// Total basis refactorizations across all solves.
    pub total_refactorizations: usize,
}

impl WarmChain {
    /// A chain with no snapshot yet (first solve is cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves `model`, warm-starting from the previous solve's basis when
    /// one exists, and keeps the new optimal basis for the next call.
    pub fn solve(
        &mut self,
        model: &crate::Model,
        opts: &crate::SolverOptions,
    ) -> Result<crate::Solution, crate::LpError> {
        let (sol, next) = match self.basis.take() {
            Some(b) => model.solve_warm_in(&b, opts, &mut self.scratch)?,
            None => model.solve_with_basis_in(opts, &mut self.scratch)?,
        };
        self.basis = Some(next);
        self.stats.solves += 1;
        self.stats.warm_attempted += sol.stats.warm_attempted as usize;
        self.stats.warm_used += sol.stats.warm_used as usize;
        self.stats.total_iterations += sol.stats.iterations;
        self.stats.total_phase1 += sol.stats.phase1_iterations;
        self.stats.total_refactorizations += sol.stats.refactorizations;
        Ok(sol)
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// The chain's trace recorder (lives in the scratch workspace, so it
    /// spans every solve of the chain). Callers use it to nest their own
    /// spans around solves, merge per-worker counter sets, or force the
    /// logical clock in tests.
    pub fn obs(&mut self) -> &mut coflow_obs::Recorder {
        self.scratch.obs()
    }

    /// Drains the recorder into a [`Trace`](coflow_obs::Trace) snapshot
    /// (spans recorded so far, cumulative accumulators and counters).
    pub fn take_trace(&mut self) -> coflow_obs::Trace {
        self.scratch.obs().drain()
    }

    /// True once a basis snapshot is available for the next solve.
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Installs a fault-injection hook consulted by this chain's solves
    /// (see [`FaultHook`](crate::FaultHook)); `None` removes it. Hooks are
    /// a test/chaos facility: production chains never set one.
    pub fn set_fault_hook(&mut self, hook: Option<Box<dyn crate::FaultHook>>) {
        self.scratch.state.hook = hook;
    }

    /// The installed fault hook, if any (consulted by `solve_colgen` for
    /// round-level faults).
    pub fn fault_hook_mut(&mut self) -> Option<&mut Box<dyn crate::FaultHook>> {
        self.scratch.state.hook.as_mut()
    }

    /// Drops the snapshot (next solve is cold); statistics are kept.
    pub fn reset(&mut self) {
        self.basis = None;
    }
}
