//! # coflow-lp
//!
//! A from-scratch linear-programming solver used in place of the paper's
//! IBM CPLEX 12.6.3 (§4.2). The interval-indexed LPs of the coflow
//! scheduling algorithms (§2.1 LP (4)–(10), §2.2 LP (15)–(23), §3.2 LP
//! (25)–(32)) are sparse, highly degenerate, and have simple bounds
//! (`0 <= x <= 1` or `x >= 0`), which drives the design:
//!
//! * [`Model`] — a builder for `min cᵀx  s.t.  Ax {<=,=,>=} b, l <= x <= u`
//!   with sparse rows;
//! * [`simplex`] — a **bounded-variable revised primal simplex** with an
//!   explicitly maintained dense basis inverse, periodic refactorization,
//!   Dantzig pricing with a Bland's-rule anti-cycling fallback, and a
//!   two-phase start;
//! * [`dense`] — an independent, deliberately simple full-tableau simplex
//!   used as a cross-checking oracle in tests (never in production paths);
//! * [`presolve`] — fixed-variable elimination and empty-row checks.
//!
//! The solver returns primal values, dual row prices, and the objective;
//! optimality of every solve is asserted in debug builds by checking primal
//! feasibility and reduced-cost signs.
//!
//! ```
//! use coflow_lp::{Model, Cmp};
//! // min -x - 2y  s.t.  x + y <= 4, y <= 2, 0 <= x,y
//! let mut m = Model::new();
//! let x = m.add_var(-1.0, 0.0, f64::INFINITY, "x");
//! let y = m.add_var(-2.0, 0.0, f64::INFINITY, "y");
//! m.add_row(Cmp::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
//! m.add_row(Cmp::Le, 2.0, &[(y, 1.0)]);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-7);
//! assert!((sol.value(x) - 2.0).abs() < 1e-7);
//! assert!((sol.value(y) - 2.0).abs() < 1e-7);
//! ```

pub mod dense;
pub mod model;
pub mod presolve;
pub mod simplex;

pub use model::{Cmp, LpError, Model, RowId, Solution, SolverOptions, Status, VarId};

/// Default feasibility / optimality tolerance.
pub const LP_TOL: f64 = 1e-7;
