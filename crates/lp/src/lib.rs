//! # coflow-lp
//!
//! A from-scratch linear-programming solver used in place of the paper's
//! IBM CPLEX 12.6.3 (§4.2). The interval-indexed LPs of the coflow
//! scheduling algorithms (§2.1 LP (4)–(10), §2.2 LP (15)–(23), §3.2 LP
//! (25)–(32)) are sparse, highly degenerate, and have simple bounds
//! (`0 <= x <= 1` or `x >= 0`), which drives the design:
//!
//! * [`Model`] — a builder for `min cᵀx  s.t.  Ax {<=,=,>=} b, l <= x <= u`
//!   with sparse rows (duplicate terms merged at build time);
//! * [`simplex`] — a **bounded-variable revised primal simplex**, generic
//!   over the basis factorization, with devex pricing, a Harris ratio
//!   test, a Bland's-rule anti-cycling fallback, a two-phase start, and
//!   name-mapped **warm starts** for sequences of related LPs;
//! * [`sparse_lu`] — sparse LU with Markowitz pivoting and eta-file
//!   (product-form) updates: the production basis representation;
//! * [`backend`] — the [`LpBackend`] trait and the three selectable
//!   implementations ([`Backend::Sparse`], [`Backend::DenseInverse`],
//!   [`Backend::Reference`]);
//! * [`dense`] — an independent, deliberately simple full-tableau simplex
//!   used as a cross-checking oracle in tests (never in production paths);
//! * [`presolve`] — fixed-variable elimination, empty-row checks, and
//!   singleton-row bound tightening;
//! * [`par`] — std-only scoped-thread worker pools: the deterministic
//!   static-section partition behind the parallel pricing scan and the
//!   colgen oracle fan-out, plus the order-preserving work-stealing map
//!   the bench harness re-exports;
//! * [`colgen`] — delayed column generation: the [`solve_colgen`]
//!   restricted-master loop (warm-started through a [`WarmChain`]) and the
//!   persistent [`ColumnPool`] that keeps generated columns reusable across
//!   related solves (growing sequences, online epochs).
//!
//! The solver returns primal values, dual row prices, the objective, and
//! per-solve [`SolveStats`]; optimality of every solve is asserted in debug
//! builds by checking primal feasibility and reduced-cost signs. For LP
//! *sequences* (a grid or horizon that grows between solves), use
//! [`Model::solve_with_basis`] / [`Model::solve_warm`] to reuse the
//! previous optimal [`Basis`] instead of cold-starting.
//!
//! Numerical policy: tolerance-based comparisons go through [`LP_TOL`] (or
//! an explicit [`SolverOptions::tol`]); *exact* zero tests — sparse kernels
//! skipping structurally absent entries — go through [`nonzero`], the one
//! sanctioned raw float comparison in this crate (see the workspace's
//! `coflow-lint` rule L2).
//!
//! ```
//! use coflow_lp::{Model, Cmp};
//! // min -x - 2y  s.t.  x + y <= 4, y <= 2, 0 <= x,y
//! let mut m = Model::new();
//! let x = m.add_var(-1.0, 0.0, f64::INFINITY, "x");
//! let y = m.add_var(-2.0, 0.0, f64::INFINITY, "y");
//! m.add_row(Cmp::Le, 4.0, &[(x, 1.0), (y, 1.0)]);
//! m.add_row(Cmp::Le, 2.0, &[(y, 1.0)]);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective - (-6.0)).abs() < 1e-7);
//! assert!((sol.value(x) - 2.0).abs() < 1e-7);
//! assert!((sol.value(y) - 2.0).abs() < 1e-7);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod basis;
pub mod colgen;
pub mod dense;
pub(crate) mod factor;
pub mod fault;
pub mod model;
pub mod par;
pub mod presolve;
pub mod scratch;
pub mod simplex;
pub(crate) mod sparse_lu;

pub use backend::{backend_for, Backend, LpBackend};
pub use basis::{Basis, ChainStats, SolveStats, WarmChain};
pub use colgen::{solve_colgen, ColGenStats, ColumnPool};
pub use fault::{ColgenFault, FaultHook};
pub use model::{
    Budget, Cmp, LpError, Model, Pricing, RowId, Solution, SolverOptions, Status, VarId,
};
pub use scratch::Scratch;

/// Default feasibility / optimality tolerance.
pub const LP_TOL: f64 = 1e-7;

/// Exact structural-nonzero test for sparse kernels.
///
/// Sparse factorization, pricing, and residual updates skip entries that
/// are *exactly* zero — a stored zero contributes nothing regardless of
/// tolerance, and treating near-zeros as absent would silently drop real
/// coefficients. This is deliberately an exact IEEE comparison, not a
/// tolerance: it is the single place the crate is allowed to compare
/// floats raw (everything tolerance-like goes through [`LP_TOL`] /
/// [`SolverOptions::tol`](model::SolverOptions::tol)).
#[inline]
#[allow(clippy::float_cmp)]
pub(crate) fn nonzero(x: f64) -> bool {
    // lint: allow(float_cmp) — the one sanctioned exact comparison in this crate
    x != 0.0
}
