//! Sparse LU basis factorization with Markowitz pivot selection and
//! product-form (eta-file) updates.
//!
//! The interval-indexed and time-expanded coflow LPs have basis matrices
//! that are extremely sparse (a handful of nonzeros per column) and stay
//! sparse under elimination when pivots are chosen to limit fill-in. This
//! module implements:
//!
//! * [`LuFactors`] — a right-looking sparse Gaussian elimination with
//!   Markowitz pivoting (cost `(r_i − 1)(c_j − 1)` under a relative
//!   stability threshold), producing permuted triangular factors stored as
//!   **flat CSR-style arrays** (`lcol_ptr`/`lcol_rows`/`lcol_vals`,
//!   `urow_ptr`/`urow_cols`/`urow_vals`) rather than per-step vectors, so a
//!   refactorization reuses one contiguous allocation per component;
//! * an **eta file**: after each simplex pivot the factorization is updated
//!   in product form (`B⁻¹ ← E⁻¹ B⁻¹`), stored flat the same way, so a
//!   refactorization is only needed every few dozen pivots or when the eta
//!   file outgrows the factors;
//! * [`complete_basis_into`] — a rank-revealing elimination used by warm
//!   starts: given candidate basic columns mapped from a previous solve, it
//!   reports which candidates are independent and which rows remain
//!   uncovered (to be filled by slack or artificial unit columns);
//! * [`ElimWs`] — the elimination's working arrays (row-major working
//!   matrix, column membership lists, epoch-stamped dense scratch), owned
//!   by the caller and reused across factorizations. On the steady-state
//!   path of a solve sequence ([`Scratch`](crate::Scratch)-threaded), a
//!   refactorization performs zero allocations once capacities have grown
//!   to the working size; every length-known acquisition is counted via
//!   [`Counters`](crate::scratch::Counters).
//!
//! Everything here is allocation-conscious but deliberately simple: dense
//! scratch vectors with epoch stamps instead of hyper-sparse kernels. The
//! LPs this solver targets have `m` in the hundreds-to-low-thousands, where
//! an `O(m)` pass per solve is noise next to the avoided `O(m²)` dense
//! work.

use crate::nonzero;
use crate::scratch::{prep, reserve_pool, Counters};

/// A sparse column: `(row, value)` pairs (unordered, no duplicates).
pub(crate) type SparseCol = Vec<(u32, f64)>;

/// Relative pivot-stability threshold (classic Markowitz `u`).
const PIV_REL: f64 = 0.1;
/// A column whose largest entry is below this is numerically empty.
const PIV_ABS: f64 = 1e-11;
/// Entries below `DROP_REL · (1 + rowmax)` are dropped during elimination.
const DROP_REL: f64 = 1e-13;
/// How many smallest-count columns to examine per pivot step.
const PIV_CANDIDATES: usize = 4;

/// Result of [`eliminate_into`]: triangular factors plus pivot bookkeeping,
/// stored flat (per-step extents via the `*_ptr` offset arrays) so the
/// storage is reusable across factorizations.
#[derive(Clone, Debug, Default)]
pub(crate) struct Elimination {
    /// Pivot row (original row index) per step.
    rp: Vec<u32>,
    /// Pivoted column (input column index) per step.
    cpos: Vec<u32>,
    /// Pivot values per step.
    diag: Vec<f64>,
    /// Step `k`'s L multipliers live at `lcol_ptr[k]..lcol_ptr[k+1]`.
    lcol_ptr: Vec<usize>,
    /// L multiplier target rows: row `r` had `f ×` pivot row subtracted.
    lcol_rows: Vec<u32>,
    /// L multiplier factors `f`, parallel to `lcol_rows`.
    lcol_vals: Vec<f64>,
    /// Step `k`'s U row lives at `urow_ptr[k]..urow_ptr[k+1]`.
    urow_ptr: Vec<usize>,
    /// U row column indices per step (diagonal excluded).
    urow_cols: Vec<u32>,
    /// U row values, parallel to `urow_cols`.
    urow_vals: Vec<f64>,
    /// column index -> step that pivoted it (`u32::MAX` if unpivoted).
    step_of_col: Vec<u32>,
    /// Which input columns were pivoted (independent).
    pub pivoted_col: Vec<bool>,
    /// Which rows received a pivot.
    pub pivoted_row: Vec<bool>,
    /// Nonzeros in L + U (including diagonals).
    pub nnz: usize,
}

/// Reusable working arrays for [`eliminate_into`]. All vectors keep their
/// capacity between factorizations; the epoch counter is monotone across
/// calls so stale stamps from earlier (possibly larger) problems can never
/// collide with a freshly bumped epoch.
#[derive(Clone, Debug, Default)]
pub(crate) struct ElimWs {
    /// Row-major working matrix (compacted on update).
    rows: Vec<Vec<(u32, f64)>>,
    /// Column -> candidate rows (may contain stale entries; filtered on use).
    col_rows: Vec<Vec<u32>>,
    /// Live nonzero count per column.
    ccount: Vec<usize>,
    /// Rows not yet pivoted.
    row_active: Vec<bool>,
    /// Columns not yet pivoted.
    col_active: Vec<bool>,
    /// Dense merge scratch (valid where `stamp` matches the epoch).
    val: Vec<f64>,
    /// Epoch stamps for `val` and the membership diffs.
    stamp: Vec<u64>,
    /// Monotone epoch counter (never reset).
    epoch: u64,
    /// Columns touched by the current row merge.
    touched: Vec<u32>,
    /// Live entries of the pivot-candidate column under inspection.
    entries: Vec<(u32, f64)>,
    /// Target rows of the current elimination step.
    targets: Vec<u32>,
    /// Replacement row being assembled (swapped into `rows`).
    fresh: Vec<(u32, f64)>,
}

/// Runs sparse Markowitz elimination on `cols` (an `m × cols.len()`
/// matrix) into `e`, reusing `ws` for all working storage. Stops when no
/// numerically acceptable pivot remains; with `cols.len() == m` and a
/// nonsingular matrix it runs to completion.
// lint: hot
pub(crate) fn eliminate_into(
    e: &mut Elimination,
    ws: &mut ElimWs,
    m: usize,
    cols: &[SparseCol],
    cnt: &mut Counters,
) {
    let n = cols.len();
    // Reset the output factors (capacity retained across calls).
    e.rp.clear();
    e.cpos.clear();
    e.diag.clear();
    e.lcol_ptr.clear();
    e.lcol_ptr.push(0);
    e.lcol_rows.clear();
    e.lcol_vals.clear();
    e.urow_ptr.clear();
    e.urow_ptr.push(0);
    e.urow_cols.clear();
    e.urow_vals.clear();
    prep(cnt, &mut e.step_of_col, n, u32::MAX);
    prep(cnt, &mut e.pivoted_col, n, false);
    prep(cnt, &mut e.pivoted_row, m, false);
    e.nnz = 0;

    // Acquire the working arrays.
    reserve_pool(cnt, &mut ws.rows, m);
    for row in &mut ws.rows[..m] {
        row.clear();
    }
    reserve_pool(cnt, &mut ws.col_rows, n);
    for cr in &mut ws.col_rows[..n] {
        cr.clear();
    }
    prep(cnt, &mut ws.ccount, n, 0);
    prep(cnt, &mut ws.row_active, m, true);
    prep(cnt, &mut ws.col_active, n, true);
    prep(cnt, &mut ws.val, n, 0.0);
    prep(cnt, &mut ws.stamp, n, 0);

    // Field-disjoint borrows: the pivot loop reads/writes several working
    // arrays and factor sections at once.
    let Elimination {
        rp,
        cpos,
        diag,
        lcol_ptr,
        lcol_rows,
        lcol_vals,
        urow_ptr,
        urow_cols,
        urow_vals,
        step_of_col,
        pivoted_col,
        pivoted_row,
        nnz,
    } = e;
    let ElimWs {
        rows,
        col_rows,
        ccount,
        row_active,
        col_active,
        val,
        stamp,
        epoch,
        touched,
        entries,
        targets,
        fresh,
    } = ws;

    // Row-major working matrix + column membership lists.
    for (c, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            if nonzero(v) {
                rows[r as usize].push((c as u32, v));
            }
        }
    }
    for (r, row) in rows[..m].iter().enumerate() {
        for &(c, _) in row {
            col_rows[c as usize].push(r as u32);
            ccount[c as usize] += 1;
        }
    }

    let steps = n.min(m);
    for _ in 0..steps {
        // --- Pivot selection: examine a few smallest-count active columns. ---
        let mut cand: [usize; PIV_CANDIDATES] = [usize::MAX; PIV_CANDIDATES];
        let mut cand_cnt: [usize; PIV_CANDIDATES] = [usize::MAX; PIV_CANDIDATES];
        for c in 0..n {
            if !col_active[c] || ccount[c] == 0 {
                continue;
            }
            let cnt = ccount[c];
            // Insertion into the top-K (smallest counts) list.
            let mut j = PIV_CANDIDATES;
            while j > 0 && cnt < cand_cnt[j - 1] {
                j -= 1;
            }
            if j < PIV_CANDIDATES {
                for k in (j + 1..PIV_CANDIDATES).rev() {
                    cand[k] = cand[k - 1];
                    cand_cnt[k] = cand_cnt[k - 1];
                }
                cand[j] = c;
                cand_cnt[j] = cnt;
            }
        }
        // (best Markowitz cost, -|a|) -> (row, col, value)
        let mut best: Option<(usize, f64, usize, usize, f64)> = None;
        for &c in cand.iter().take_while(|&&c| c != usize::MAX) {
            // Compact this column's row list while scanning.
            let mut colmax = 0.0f64;
            entries.clear();
            col_rows[c].retain(|&r| {
                if !row_active[r as usize] {
                    return false;
                }
                match rows[r as usize].iter().find(|&&(cc, _)| cc == c as u32) {
                    Some(&(_, v)) if nonzero(v) => {
                        colmax = colmax.max(v.abs());
                        entries.push((r, v));
                        true
                    }
                    _ => false,
                }
            });
            ccount[c] = entries.len();
            if colmax < PIV_ABS {
                continue;
            }
            for &(r, v) in entries.iter() {
                if v.abs() < PIV_REL * colmax {
                    continue;
                }
                let cost = (rows[r as usize].len() - 1) * (ccount[c] - 1);
                let better = match best {
                    None => true,
                    Some((bc, ba, ..)) => cost < bc || (cost == bc && v.abs() > ba),
                };
                if better {
                    best = Some((cost, v.abs(), r as usize, c, v));
                }
            }
            if matches!(best, Some((0, ..))) {
                break; // a singleton pivot cannot be beaten
            }
        }
        let Some((_, _, pr, pc, piv)) = best else {
            break; // no acceptable pivot: matrix (numerically) rank-deficient
        };

        // --- Record the pivot. ---
        let k = rp.len();
        rp.push(pr as u32);
        cpos.push(pc as u32);
        diag.push(piv);
        step_of_col[pc] = k as u32;
        pivoted_col[pc] = true;
        pivoted_row[pr] = true;
        row_active[pr] = false;
        col_active[pc] = false;
        let ustart = urow_cols.len();
        for &(c, v) in &rows[pr] {
            if c != pc as u32 && col_active[c as usize] {
                urow_cols.push(c);
                urow_vals.push(v);
            }
        }
        let uend = urow_cols.len();
        for &c in &urow_cols[ustart..uend] {
            ccount[c as usize] = ccount[c as usize].saturating_sub(1);
        }
        *nnz += uend - ustart + 1;

        // --- Eliminate the pivot column from the remaining rows. ---
        let lstart = lcol_rows.len();
        // Collect target rows first (col_rows[pc] was compacted above).
        targets.clear();
        targets.extend(
            col_rows[pc]
                .iter()
                .copied()
                .filter(|&r| row_active[r as usize]),
        );
        for &rt in targets.iter() {
            let r = rt as usize;
            let arc = rows[r]
                .iter()
                .find(|&&(cc, _)| cc == pc as u32)
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            if !nonzero(arc) {
                continue;
            }
            let f = arc / piv;
            lcol_rows.push(r as u32);
            lcol_vals.push(f);
            // rows[r] ← rows[r] − f · urow  (pivot column dropped).
            *epoch += 1;
            touched.clear();
            let mut rowmax = 0.0f64;
            for &(c, v) in &rows[r] {
                if c == pc as u32 || !col_active[c as usize] {
                    continue;
                }
                val[c as usize] = v;
                stamp[c as usize] = *epoch;
                touched.push(c);
                rowmax = rowmax.max(v.abs());
            }
            for (&c, &v) in urow_cols[ustart..uend].iter().zip(&urow_vals[ustart..uend]) {
                let cu = c as usize;
                let dv = f * v;
                if stamp[cu] == *epoch {
                    val[cu] -= dv;
                } else {
                    val[cu] = -dv;
                    stamp[cu] = *epoch;
                    touched.push(c);
                }
                rowmax = rowmax.max(dv.abs());
            }
            let drop = DROP_REL * (1.0 + rowmax);
            fresh.clear();
            for &c in touched.iter() {
                let v = val[c as usize];
                if v.abs() > drop {
                    fresh.push((c, v));
                }
            }
            // Maintain column bookkeeping: count diffs + new memberships.
            // Old membership: anything in rows[r] (pre-update); cheap diff
            // via the scratch stamps (reuse `val` sign is unsafe; do sets).
            *epoch += 1;
            for &(c, _) in &rows[r] {
                stamp[c as usize] = *epoch; // mark "was present"
            }
            for &(c, _) in fresh.iter() {
                if stamp[c as usize] != *epoch {
                    col_rows[c as usize].push(r as u32);
                    ccount[c as usize] += 1;
                }
                // Mark "still present" with a different trick: bump below.
            }
            // Entries that vanished: decrement counts.
            *epoch += 1;
            for &(c, _) in fresh.iter() {
                stamp[c as usize] = *epoch;
            }
            for &(c, _) in &rows[r] {
                if stamp[c as usize] != *epoch && col_active[c as usize] && c != pc as u32 {
                    ccount[c as usize] = ccount[c as usize].saturating_sub(1);
                }
            }
            // The freshly built row replaces the old one; the displaced
            // storage becomes the next `fresh` (cleared before use).
            std::mem::swap(&mut rows[r], fresh);
        }
        *nnz += lcol_rows.len() - lstart;
        lcol_ptr.push(lcol_rows.len());
        urow_ptr.push(urow_cols.len());
    }
}

/// Completed LU factors of a (square, nonsingular) basis, plus the eta file
/// accumulated by product-form updates. Owns its [`ElimWs`] so repeated
/// [`refactor_in_place`](LuFactors::refactor_in_place) calls reuse all
/// elimination storage.
#[derive(Debug, Default)]
pub(crate) struct LuFactors {
    m: usize,
    elim: Elimination,
    ws: ElimWs,
    /// Eta pivot positions, in application order.
    eta_pos: Vec<u32>,
    /// Eta diagonal multipliers `1/pivot`, parallel to `eta_pos`.
    eta_diag: Vec<f64>,
    /// Eta `t`'s off-pivot entries live at `eta_ptr[t]..eta_ptr[t+1]`.
    eta_ptr: Vec<usize>,
    /// Eta off-pivot target rows.
    eta_rows: Vec<u32>,
    /// Eta off-pivot values `−w_i/pivot`, parallel to `eta_rows`.
    eta_vals: Vec<f64>,
    /// Nonzeros across the eta file.
    pub eta_nnz: usize,
    /// Scratch (step-indexed / row-indexed) for solves.
    scratch: Vec<f64>,
}

impl LuFactors {
    /// Factorizes the square basis given by `cols` into this value's
    /// retained storage, resetting the eta file; `Err` if singular.
    pub fn refactor_in_place(
        &mut self,
        m: usize,
        cols: &[SparseCol],
        cnt: &mut Counters,
    ) -> Result<(), String> {
        assert_eq!(cols.len(), m, "basis must be square");
        self.m = m;
        eliminate_into(&mut self.elim, &mut self.ws, m, cols, cnt);
        if self.elim.rp.len() < m {
            return Err(format!(
                "singular basis: rank {} < {m} (first uncovered row {:?})",
                self.elim.rp.len(),
                self.elim.pivoted_row.iter().position(|&p| !p)
            ));
        }
        self.eta_pos.clear();
        self.eta_diag.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_rows.clear();
        self.eta_vals.clear();
        self.eta_nnz = 0;
        prep(cnt, &mut self.scratch, m, 0.0);
        Ok(())
    }

    /// One-shot constructor: factorize `cols` into fresh storage.
    #[cfg(test)]
    pub fn factorize(m: usize, cols: &[SparseCol]) -> Result<LuFactors, String> {
        let mut lu = LuFactors::default();
        lu.refactor_in_place(m, cols, &mut Counters::default())?;
        Ok(lu)
    }

    /// Nonzeros in L + U (diagonals included), eta file excluded.
    pub fn lu_nnz(&self) -> usize {
        self.elim.nnz
    }

    /// FTRAN: solves `B x = b`. Input `x` is `b` indexed by row; output is
    /// indexed by basis position.
    // lint: hot
    pub fn ftran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        let e = &self.elim;
        // Forward: L (in row space).
        for k in 0..self.m {
            let yk = x[e.rp[k] as usize];
            if nonzero(yk) {
                let (s, t) = (e.lcol_ptr[k], e.lcol_ptr[k + 1]);
                for (&r, &f) in e.lcol_rows[s..t].iter().zip(&e.lcol_vals[s..t]) {
                    x[r as usize] -= f * yk;
                }
            }
        }
        // Backward: U (row space -> position space), via scratch.
        let out = &mut self.scratch;
        for k in (0..self.m).rev() {
            let mut sum = x[e.rp[k] as usize];
            let (s, t) = (e.urow_ptr[k], e.urow_ptr[k + 1]);
            for (&c, &v) in e.urow_cols[s..t].iter().zip(&e.urow_vals[s..t]) {
                let contrib = out[e.step_of_col[c as usize] as usize];
                if nonzero(contrib) {
                    sum -= v * contrib;
                }
            }
            out[k] = sum / e.diag[k];
        }
        // Scatter steps -> positions.
        for k in 0..self.m {
            x[e.cpos[k] as usize] = out[k];
        }
        // But `out` is indexed by step and positions coincide with cpos;
        // copy is done above — now apply the eta file in order.
        for t in 0..self.eta_pos.len() {
            let pos = self.eta_pos[t] as usize;
            let xr = x[pos];
            if nonzero(xr) {
                x[pos] = self.eta_diag[t] * xr;
                let (s, en) = (self.eta_ptr[t], self.eta_ptr[t + 1]);
                for (&i, &h) in self.eta_rows[s..en].iter().zip(&self.eta_vals[s..en]) {
                    x[i as usize] += h * xr;
                }
            }
        }
    }

    /// BTRAN: solves `Bᵀ y = c`. Input `x` is `c` indexed by basis
    /// position; output is indexed by row.
    // lint: hot
    pub fn btran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        // Eta transposes in reverse order.
        for t in (0..self.eta_pos.len()).rev() {
            let pos = self.eta_pos[t] as usize;
            let mut acc = self.eta_diag[t] * x[pos];
            let (s, en) = (self.eta_ptr[t], self.eta_ptr[t + 1]);
            for (&i, &h) in self.eta_rows[s..en].iter().zip(&self.eta_vals[s..en]) {
                acc += h * x[i as usize];
            }
            x[pos] = acc;
        }
        let e = &self.elim;
        // U^T (position space -> step space) forward.
        let w = &mut self.scratch;
        for k in 0..self.m {
            w[k] = x[e.cpos[k] as usize];
        }
        for k in 0..self.m {
            w[k] /= e.diag[k];
            let wk = w[k];
            if nonzero(wk) {
                let (s, t) = (e.urow_ptr[k], e.urow_ptr[k + 1]);
                for (&c, &v) in e.urow_cols[s..t].iter().zip(&e.urow_vals[s..t]) {
                    w[e.step_of_col[c as usize] as usize] -= v * wk;
                }
            }
        }
        // L^T backward (step space -> row space).
        for k in 0..self.m {
            x[e.rp[k] as usize] = w[k];
        }
        for k in (0..self.m).rev() {
            let mut acc = x[e.rp[k] as usize];
            let (s, t) = (e.lcol_ptr[k], e.lcol_ptr[k + 1]);
            for (&r, &f) in e.lcol_rows[s..t].iter().zip(&e.lcol_vals[s..t]) {
                acc -= f * x[r as usize];
            }
            x[e.rp[k] as usize] = acc;
        }
    }

    /// Product-form update after a pivot: basis position `r_leave` is
    /// replaced by a column whose FTRAN image is `w`. `Err` when the pivot
    /// element is too small to absorb safely (caller must refactorize).
    // lint: hot
    pub fn update(&mut self, r_leave: usize, w: &[f64]) -> Result<(), String> {
        let piv = w[r_leave];
        let wmax = w.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if piv.abs() < 1e-9 * wmax.max(1.0) {
            return Err(format!("eta pivot too small: {piv:.3e}"));
        }
        let d = 1.0 / piv;
        let start = self.eta_rows.len();
        for (i, &wi) in w.iter().enumerate() {
            if i != r_leave && nonzero(wi) {
                let h = -wi * d;
                if h.abs() > 1e-14 {
                    self.eta_rows.push(i as u32);
                    self.eta_vals.push(h);
                }
            }
        }
        self.eta_nnz += self.eta_rows.len() - start + 1;
        self.eta_pos.push(r_leave as u32);
        self.eta_diag.push(d);
        self.eta_ptr.push(self.eta_rows.len());
        Ok(())
    }
}

/// Rank-revealing basis completion for warm starts.
///
/// `candidates` are the columns a previous basis suggests as basic. After
/// the call, `e.pivoted_col` flags, per candidate, whether it is part of a
/// maximal independent (numerically acceptable) subset, and `e.pivoted_row`
/// which of the `m` rows were covered — the caller fills the rest with
/// slack or artificial unit columns, which are trivially independent of
/// everything already chosen.
pub(crate) fn complete_basis_into(
    e: &mut Elimination,
    ws: &mut ElimWs,
    m: usize,
    candidates: &[SparseCol],
    cnt: &mut Counters,
) {
    eliminate_into(e, ws, m, candidates, cnt);
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn dense_mul(m: usize, cols: &[SparseCol], x: &[f64]) -> Vec<f64> {
        // b = B x (x by position).
        let mut b = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                b[r as usize] += v * x[j];
            }
        }
        b
    }

    #[test]
    fn ftran_btran_roundtrip_identity_like() {
        // B = [[2,0,0],[1,1,0],[0,3,5]] as columns.
        let cols: Vec<SparseCol> = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 1.0), (2, 3.0)],
            vec![(2, 5.0)],
        ];
        let mut lu = LuFactors::factorize(3, &cols).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = dense_mul(3, &cols, &x_true);
        lu.ftran(&mut b);
        for (a, t) in b.iter().zip(x_true) {
            assert!((a - t).abs() < 1e-12, "{a} vs {t}");
        }
        // BTRAN: y with B^T y = c.
        let c = [3.0, 1.0, -1.0];
        let mut y = c;
        lu.btran(&mut y);
        // Check B^T y = c: (B^T y)_j = col_j · y.
        for (j, col) in cols.iter().enumerate() {
            let acc: f64 = col.iter().map(|&(r, v)| v * y[r as usize]).sum();
            assert!((acc - c[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn random_sparse_roundtrip() {
        // Deterministic pseudo-random sparse nonsingular matrix:
        // diagonal + a few off-diagonals.
        let m = 60;
        let mut cols: Vec<SparseCol> = Vec::new();
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for j in 0..m {
            let mut col: SparseCol = vec![(j as u32, 1.0 + rnd())];
            for _ in 0..3 {
                let r = (rnd() * m as f64) as usize % m;
                if r != j {
                    col.push((r as u32, rnd() - 0.5));
                }
            }
            // Merge duplicate rows.
            col.sort_by_key(|&(r, _)| r);
            col.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            cols.push(col);
        }
        let mut lu = LuFactors::factorize(m, &cols).unwrap();
        let x_true: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = dense_mul(m, &cols, &x_true);
        lu.ftran(&mut b);
        for (a, t) in b.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-8, "{a} vs {t}");
        }
    }

    #[test]
    fn eta_update_matches_refactor() {
        let cols: Vec<SparseCol> = vec![
            vec![(0, 1.0), (2, 1.0)],
            vec![(1, 2.0)],
            vec![(0, 1.0), (2, -1.0)],
        ];
        let mut lu = LuFactors::factorize(3, &cols).unwrap();
        // Replace position 1 with a new column a = (1, 1, 1).
        let a: SparseCol = vec![(0, 1.0), (1, 1.0), (2, 1.0)];
        let mut w = vec![0.0; 3];
        for &(r, v) in &a {
            w[r as usize] += v;
        }
        lu.ftran(&mut w); // w = B^-1 a
        lu.update(1, &w.clone()).unwrap();
        // New basis: cols with position 1 replaced by a.
        let mut cols2 = cols.clone();
        cols2[1] = a;
        let mut fresh = LuFactors::factorize(3, &cols2).unwrap();
        let b = [0.3, -1.0, 2.0];
        let (mut x1, mut x2) = (b, b);
        lu.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
        let c = [1.0, 2.0, 3.0];
        let (mut y1, mut y2) = (c, c);
        lu.btran(&mut y1);
        fresh.btran(&mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let cols: Vec<SparseCol> = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 2.0), (1, 2.0)], // dependent
        ];
        assert!(LuFactors::factorize(2, &cols).is_err());
    }

    #[test]
    fn refactor_in_place_reuses_capacity() {
        // Second factorization of a same-shape basis must be allocation-free
        // (every length-known acquisition served from retained capacity).
        let cols: Vec<SparseCol> = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 1.0), (2, 3.0)],
            vec![(2, 5.0), (0, -1.0)],
        ];
        let mut lu = LuFactors::default();
        let mut cnt = Counters::default();
        lu.refactor_in_place(3, &cols, &mut cnt).unwrap();
        assert!(cnt.allocs > 0, "first factorization grows buffers");
        let mut cnt2 = Counters::default();
        lu.refactor_in_place(3, &cols, &mut cnt2).unwrap();
        assert_eq!(cnt2.allocs, 0, "steady-state refactor allocates nothing");
        assert!(cnt2.reuses > 0);
        // And it still solves correctly.
        let x_true = [0.5, 2.0, -1.0];
        let mut b = dense_mul(3, &cols, &x_true);
        lu.ftran(&mut b);
        for (a, t) in b.iter().zip(x_true) {
            assert!((a - t).abs() < 1e-12, "{a} vs {t}");
        }
    }

    #[test]
    fn completion_reports_independent_subset() {
        let cands: Vec<SparseCol> = vec![
            vec![(0, 1.0)],
            vec![(0, 3.0)],           // dependent on the first
            vec![(2, 1.0), (3, 1.0)], // covers row 2 or 3
        ];
        let mut e = Elimination::default();
        let mut ws = ElimWs::default();
        complete_basis_into(&mut e, &mut ws, 4, &cands, &mut Counters::default());
        let (picked, rows) = (&e.pivoted_col, &e.pivoted_row);
        assert!(picked[0] ^ picked[1], "exactly one of the dependent pair");
        assert!(picked[2]);
        // Rows 0 and (2 or 3) covered; row 1 and the other of {2,3} not.
        assert!(!rows[1]);
        assert_eq!(rows.iter().filter(|&&p| p).count(), 2);
    }
}
