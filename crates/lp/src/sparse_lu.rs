//! Sparse LU basis factorization with Markowitz pivot selection and
//! product-form (eta-file) updates.
//!
//! The interval-indexed and time-expanded coflow LPs have basis matrices
//! that are extremely sparse (a handful of nonzeros per column) and stay
//! sparse under elimination when pivots are chosen to limit fill-in. This
//! module implements:
//!
//! * [`LuFactors`] — a right-looking sparse Gaussian elimination with
//!   Markowitz pivoting (cost `(r_i − 1)(c_j − 1)` under a relative
//!   stability threshold), producing permuted triangular factors stored as
//!   compact per-pivot rows/columns;
//! * an **eta file**: after each simplex pivot the factorization is updated
//!   in product form (`B⁻¹ ← E⁻¹ B⁻¹`), so a refactorization is only needed
//!   every few dozen pivots or when the eta file outgrows the factors;
//! * [`complete_basis`] — a rank-revealing elimination used by warm starts:
//!   given candidate basic columns mapped from a previous solve, it reports
//!   which candidates are independent and which rows remain uncovered (to
//!   be filled by slack or artificial unit columns).
//!
//! Everything here is allocation-conscious but deliberately simple: dense
//! scratch vectors with epoch stamps instead of hyper-sparse kernels. The
//! LPs this solver targets have `m` in the hundreds-to-low-thousands, where
//! an `O(m)` pass per solve is noise next to the avoided `O(m²)` dense
//! work.

use crate::nonzero;

/// A sparse column: `(row, value)` pairs (unordered, no duplicates).
pub(crate) type SparseCol = Vec<(u32, f64)>;

/// Relative pivot-stability threshold (classic Markowitz `u`).
const PIV_REL: f64 = 0.1;
/// A column whose largest entry is below this is numerically empty.
const PIV_ABS: f64 = 1e-11;
/// Entries below `DROP_REL · (1 + rowmax)` are dropped during elimination.
const DROP_REL: f64 = 1e-13;
/// How many smallest-count columns to examine per pivot step.
const PIV_CANDIDATES: usize = 4;

/// Result of [`eliminate`]: triangular factors plus pivot bookkeeping.
pub(crate) struct Elimination {
    /// Pivot row (original row index) per step.
    rp: Vec<u32>,
    /// Pivoted column (input column index) per step.
    cpos: Vec<u32>,
    /// Pivot values per step.
    diag: Vec<f64>,
    /// L multipliers per step: `(row, f)` — row `r` had `f ×` pivot row
    /// subtracted.
    lcol: Vec<Vec<(u32, f64)>>,
    /// U row per step: `(column index, value)`, diagonal excluded.
    urow: Vec<Vec<(u32, f64)>>,
    /// column index -> step that pivoted it (`u32::MAX` if unpivoted).
    step_of_col: Vec<u32>,
    /// Which input columns were pivoted (independent).
    pub pivoted_col: Vec<bool>,
    /// Which rows received a pivot.
    pub pivoted_row: Vec<bool>,
    /// Nonzeros in L + U (including diagonals).
    pub nnz: usize,
}

/// Runs sparse Markowitz elimination on `cols` (an `m × cols.len()`
/// matrix). Stops when no numerically acceptable pivot remains; with
/// `cols.len() == m` and a nonsingular matrix it runs to completion.
pub(crate) fn eliminate(m: usize, cols: &[SparseCol]) -> Elimination {
    let n = cols.len();
    // Row-major working matrix, rebuilt-on-update so always compact.
    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
    for (c, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            if nonzero(v) {
                rows[r as usize].push((c as u32, v));
            }
        }
    }
    // Column -> candidate rows (may contain stale entries; filtered on use).
    let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut ccount = vec![0usize; n];
    for (r, row) in rows.iter().enumerate() {
        for &(c, _) in row {
            col_rows[c as usize].push(r as u32);
            ccount[c as usize] += 1;
        }
    }
    let mut row_active = vec![true; m];
    let mut col_active = vec![true; n];

    // Dense scratch with epoch stamps for row merges.
    let mut val = vec![0.0f64; n];
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    let mut touched: Vec<u32> = Vec::new();

    let mut e = Elimination {
        rp: Vec::with_capacity(n),
        cpos: Vec::with_capacity(n),
        diag: Vec::with_capacity(n),
        lcol: Vec::with_capacity(n),
        urow: Vec::with_capacity(n),
        step_of_col: vec![u32::MAX; n],
        pivoted_col: vec![false; n],
        pivoted_row: vec![false; m],
        nnz: 0,
    };

    let steps = n.min(m);
    for _ in 0..steps {
        // --- Pivot selection: examine a few smallest-count active columns. ---
        let mut cand: [usize; PIV_CANDIDATES] = [usize::MAX; PIV_CANDIDATES];
        let mut cand_cnt: [usize; PIV_CANDIDATES] = [usize::MAX; PIV_CANDIDATES];
        for c in 0..n {
            if !col_active[c] || ccount[c] == 0 {
                continue;
            }
            let cnt = ccount[c];
            // Insertion into the top-K (smallest counts) list.
            let mut j = PIV_CANDIDATES;
            while j > 0 && cnt < cand_cnt[j - 1] {
                j -= 1;
            }
            if j < PIV_CANDIDATES {
                for k in (j + 1..PIV_CANDIDATES).rev() {
                    cand[k] = cand[k - 1];
                    cand_cnt[k] = cand_cnt[k - 1];
                }
                cand[j] = c;
                cand_cnt[j] = cnt;
            }
        }
        // (best Markowitz cost, -|a|) -> (row, col, value)
        let mut best: Option<(usize, f64, usize, usize, f64)> = None;
        for &c in cand.iter().take_while(|&&c| c != usize::MAX) {
            // Compact this column's row list while scanning.
            let mut colmax = 0.0f64;
            let mut entries: Vec<(u32, f64)> = Vec::new();
            col_rows[c].retain(|&r| {
                if !row_active[r as usize] {
                    return false;
                }
                match rows[r as usize].iter().find(|&&(cc, _)| cc == c as u32) {
                    Some(&(_, v)) if nonzero(v) => {
                        colmax = colmax.max(v.abs());
                        entries.push((r, v));
                        true
                    }
                    _ => false,
                }
            });
            ccount[c] = entries.len();
            if colmax < PIV_ABS {
                continue;
            }
            for &(r, v) in &entries {
                if v.abs() < PIV_REL * colmax {
                    continue;
                }
                let cost = (rows[r as usize].len() - 1) * (ccount[c] - 1);
                let better = match best {
                    None => true,
                    Some((bc, ba, ..)) => cost < bc || (cost == bc && v.abs() > ba),
                };
                if better {
                    best = Some((cost, v.abs(), r as usize, c, v));
                }
            }
            if matches!(best, Some((0, ..))) {
                break; // a singleton pivot cannot be beaten
            }
        }
        let Some((_, _, pr, pc, piv)) = best else {
            break; // no acceptable pivot: matrix (numerically) rank-deficient
        };

        // --- Record the pivot. ---
        let k = e.rp.len();
        e.rp.push(pr as u32);
        e.cpos.push(pc as u32);
        e.diag.push(piv);
        e.step_of_col[pc] = k as u32;
        e.pivoted_col[pc] = true;
        e.pivoted_row[pr] = true;
        row_active[pr] = false;
        col_active[pc] = false;
        let urow: Vec<(u32, f64)> = rows[pr]
            .iter()
            .filter(|&&(c, _)| c != pc as u32 && col_active[c as usize])
            .copied()
            .collect();
        for &(c, _) in &urow {
            ccount[c as usize] = ccount[c as usize].saturating_sub(1);
        }
        e.nnz += urow.len() + 1;

        // --- Eliminate the pivot column from the remaining rows. ---
        let mut lcol: Vec<(u32, f64)> = Vec::new();
        // Collect target rows first (col_rows[pc] was compacted above).
        let targets: Vec<u32> = col_rows[pc]
            .iter()
            .copied()
            .filter(|&r| row_active[r as usize])
            .collect();
        for &r in &targets {
            let r = r as usize;
            let arc = rows[r]
                .iter()
                .find(|&&(cc, _)| cc == pc as u32)
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            if !nonzero(arc) {
                continue;
            }
            let f = arc / piv;
            lcol.push((r as u32, f));
            // rows[r] ← rows[r] − f · urow  (pivot column dropped).
            epoch += 1;
            touched.clear();
            let mut rowmax = 0.0f64;
            for &(c, v) in &rows[r] {
                if c == pc as u32 || !col_active[c as usize] {
                    continue;
                }
                val[c as usize] = v;
                stamp[c as usize] = epoch;
                touched.push(c);
                rowmax = rowmax.max(v.abs());
            }
            for &(c, v) in &urow {
                let cu = c as usize;
                let dv = f * v;
                if stamp[cu] == epoch {
                    val[cu] -= dv;
                } else {
                    val[cu] = -dv;
                    stamp[cu] = epoch;
                    touched.push(c);
                }
                rowmax = rowmax.max(dv.abs());
            }
            let drop = DROP_REL * (1.0 + rowmax);
            let mut fresh: Vec<(u32, f64)> = Vec::with_capacity(touched.len());
            for &c in &touched {
                let v = val[c as usize];
                if v.abs() > drop {
                    fresh.push((c, v));
                }
            }
            // Maintain column bookkeeping: count diffs + new memberships.
            // Old membership: anything in rows[r] (pre-update); cheap diff
            // via the scratch stamps (reuse `val` sign is unsafe; do sets).
            epoch += 1;
            for &(c, _) in &rows[r] {
                stamp[c as usize] = epoch; // mark "was present"
            }
            for &(c, _) in &fresh {
                if stamp[c as usize] != epoch {
                    col_rows[c as usize].push(r as u32);
                    ccount[c as usize] += 1;
                }
                // Mark "still present" with a different trick: bump below.
            }
            // Entries that vanished: decrement counts.
            epoch += 1;
            for &(c, _) in &fresh {
                stamp[c as usize] = epoch;
            }
            for &(c, _) in &rows[r] {
                if stamp[c as usize] != epoch && col_active[c as usize] && c != pc as u32 {
                    ccount[c as usize] = ccount[c as usize].saturating_sub(1);
                }
            }
            rows[r] = fresh;
        }
        e.nnz += lcol.len();
        e.lcol.push(lcol);
        e.urow.push(urow);
    }
    e
}

/// One product-form update: `(position, 1/pivot, [(i, −w_i/pivot)])`.
type Eta = (u32, f64, Vec<(u32, f64)>);

/// Completed LU factors of a (square, nonsingular) basis, plus the eta file
/// accumulated by product-form updates.
pub(crate) struct LuFactors {
    m: usize,
    elim: Elimination,
    /// Eta file, in application order.
    etas: Vec<Eta>,
    /// Nonzeros across the eta file.
    pub eta_nnz: usize,
    /// Scratch (step-indexed / row-indexed) for solves.
    scratch: Vec<f64>,
}

impl LuFactors {
    /// Factorizes the square basis given by `cols`; `Err` if singular.
    pub fn factorize(m: usize, cols: &[SparseCol]) -> Result<LuFactors, String> {
        assert_eq!(cols.len(), m, "basis must be square");
        let elim = eliminate(m, cols);
        if elim.rp.len() < m {
            return Err(format!(
                "singular basis: rank {} < {m} (first uncovered row {:?})",
                elim.rp.len(),
                elim.pivoted_row.iter().position(|&p| !p)
            ));
        }
        Ok(LuFactors {
            m,
            elim,
            etas: Vec::new(),
            eta_nnz: 0,
            scratch: vec![0.0; m],
        })
    }

    /// Nonzeros in L + U (diagonals included), eta file excluded.
    pub fn lu_nnz(&self) -> usize {
        self.elim.nnz
    }

    /// FTRAN: solves `B x = b`. Input `x` is `b` indexed by row; output is
    /// indexed by basis position.
    pub fn ftran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        let e = &self.elim;
        // Forward: L (in row space).
        for k in 0..self.m {
            let yk = x[e.rp[k] as usize];
            if nonzero(yk) {
                for &(r, f) in &e.lcol[k] {
                    x[r as usize] -= f * yk;
                }
            }
        }
        // Backward: U (row space -> position space), via scratch.
        let out = &mut self.scratch;
        for k in (0..self.m).rev() {
            let mut sum = x[e.rp[k] as usize];
            for &(c, v) in &e.urow[k] {
                let contrib = out[e.step_of_col[c as usize] as usize];
                if nonzero(contrib) {
                    sum -= v * contrib;
                }
            }
            out[k] = sum / e.diag[k];
        }
        // Scatter steps -> positions.
        for k in 0..self.m {
            x[e.cpos[k] as usize] = out[k];
        }
        // But `out` is indexed by step and positions coincide with cpos;
        // copy is done above — now apply the eta file in order.
        for (pos, d, entries) in &self.etas {
            let xr = x[*pos as usize];
            if nonzero(xr) {
                x[*pos as usize] = d * xr;
                for &(i, h) in entries {
                    x[i as usize] += h * xr;
                }
            }
        }
    }

    /// BTRAN: solves `Bᵀ y = c`. Input `x` is `c` indexed by basis
    /// position; output is indexed by row.
    pub fn btran(&mut self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        // Eta transposes in reverse order.
        for (pos, d, entries) in self.etas.iter().rev() {
            let mut acc = d * x[*pos as usize];
            for &(i, h) in entries {
                acc += h * x[i as usize];
            }
            x[*pos as usize] = acc;
        }
        let e = &self.elim;
        // U^T (position space -> step space) forward.
        let w = &mut self.scratch;
        for k in 0..self.m {
            w[k] = x[e.cpos[k] as usize];
        }
        for k in 0..self.m {
            w[k] /= e.diag[k];
            let wk = w[k];
            if nonzero(wk) {
                for &(c, v) in &e.urow[k] {
                    w[e.step_of_col[c as usize] as usize] -= v * wk;
                }
            }
        }
        // L^T backward (step space -> row space).
        for k in 0..self.m {
            x[e.rp[k] as usize] = w[k];
        }
        for k in (0..self.m).rev() {
            let mut acc = x[e.rp[k] as usize];
            for &(r, f) in &e.lcol[k] {
                acc -= f * x[r as usize];
            }
            x[e.rp[k] as usize] = acc;
        }
    }

    /// Product-form update after a pivot: basis position `r_leave` is
    /// replaced by a column whose FTRAN image is `w`. `Err` when the pivot
    /// element is too small to absorb safely (caller must refactorize).
    pub fn update(&mut self, r_leave: usize, w: &[f64]) -> Result<(), String> {
        let piv = w[r_leave];
        let wmax = w.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if piv.abs() < 1e-9 * wmax.max(1.0) {
            return Err(format!("eta pivot too small: {piv:.3e}"));
        }
        let d = 1.0 / piv;
        let mut entries: Vec<(u32, f64)> = Vec::new();
        for (i, &wi) in w.iter().enumerate() {
            if i != r_leave && nonzero(wi) {
                let h = -wi * d;
                if h.abs() > 1e-14 {
                    entries.push((i as u32, h));
                }
            }
        }
        self.eta_nnz += entries.len() + 1;
        self.etas.push((r_leave as u32, d, entries));
        Ok(())
    }
}

/// Rank-revealing basis completion for warm starts.
///
/// `candidates` are the columns a previous basis suggests as basic. The
/// return value flags, per candidate, whether it is part of a maximal
/// independent (numerically acceptable) subset, plus which of the `m` rows
/// remain unpivoted — the caller covers those with slack or artificial unit
/// columns, which are trivially independent of everything already chosen.
pub(crate) fn complete_basis(m: usize, candidates: &[SparseCol]) -> (Vec<bool>, Vec<bool>) {
    let e = eliminate(m, candidates);
    (e.pivoted_col, e.pivoted_row)
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn dense_mul(m: usize, cols: &[SparseCol], x: &[f64]) -> Vec<f64> {
        // b = B x (x by position).
        let mut b = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                b[r as usize] += v * x[j];
            }
        }
        b
    }

    #[test]
    fn ftran_btran_roundtrip_identity_like() {
        // B = [[2,0,0],[1,1,0],[0,3,5]] as columns.
        let cols: Vec<SparseCol> = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 1.0), (2, 3.0)],
            vec![(2, 5.0)],
        ];
        let mut lu = LuFactors::factorize(3, &cols).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = dense_mul(3, &cols, &x_true);
        lu.ftran(&mut b);
        for (a, t) in b.iter().zip(x_true) {
            assert!((a - t).abs() < 1e-12, "{a} vs {t}");
        }
        // BTRAN: y with B^T y = c.
        let c = [3.0, 1.0, -1.0];
        let mut y = c;
        lu.btran(&mut y);
        // Check B^T y = c: (B^T y)_j = col_j · y.
        for (j, col) in cols.iter().enumerate() {
            let acc: f64 = col.iter().map(|&(r, v)| v * y[r as usize]).sum();
            assert!((acc - c[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn random_sparse_roundtrip() {
        // Deterministic pseudo-random sparse nonsingular matrix:
        // diagonal + a few off-diagonals.
        let m = 60;
        let mut cols: Vec<SparseCol> = Vec::new();
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for j in 0..m {
            let mut col: SparseCol = vec![(j as u32, 1.0 + rnd())];
            for _ in 0..3 {
                let r = (rnd() * m as f64) as usize % m;
                if r != j {
                    col.push((r as u32, rnd() - 0.5));
                }
            }
            // Merge duplicate rows.
            col.sort_by_key(|&(r, _)| r);
            col.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            cols.push(col);
        }
        let mut lu = LuFactors::factorize(m, &cols).unwrap();
        let x_true: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut b = dense_mul(m, &cols, &x_true);
        lu.ftran(&mut b);
        for (a, t) in b.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-8, "{a} vs {t}");
        }
    }

    #[test]
    fn eta_update_matches_refactor() {
        let cols: Vec<SparseCol> = vec![
            vec![(0, 1.0), (2, 1.0)],
            vec![(1, 2.0)],
            vec![(0, 1.0), (2, -1.0)],
        ];
        let mut lu = LuFactors::factorize(3, &cols).unwrap();
        // Replace position 1 with a new column a = (1, 1, 1).
        let a: SparseCol = vec![(0, 1.0), (1, 1.0), (2, 1.0)];
        let mut w = vec![0.0; 3];
        for &(r, v) in &a {
            w[r as usize] += v;
        }
        lu.ftran(&mut w); // w = B^-1 a
        lu.update(1, &w.clone()).unwrap();
        // New basis: cols with position 1 replaced by a.
        let mut cols2 = cols.clone();
        cols2[1] = a;
        let mut fresh = LuFactors::factorize(3, &cols2).unwrap();
        let b = [0.3, -1.0, 2.0];
        let (mut x1, mut x2) = (b, b);
        lu.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
        let c = [1.0, 2.0, 3.0];
        let (mut y1, mut y2) = (c, c);
        lu.btran(&mut y1);
        fresh.btran(&mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let cols: Vec<SparseCol> = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 2.0), (1, 2.0)], // dependent
        ];
        assert!(LuFactors::factorize(2, &cols).is_err());
    }

    #[test]
    fn completion_reports_independent_subset() {
        let cands: Vec<SparseCol> = vec![
            vec![(0, 1.0)],
            vec![(0, 3.0)],           // dependent on the first
            vec![(2, 1.0), (3, 1.0)], // covers row 2 or 3
        ];
        let (picked, rows) = complete_basis(4, &cands);
        assert!(picked[0] ^ picked[1], "exactly one of the dependent pair");
        assert!(picked[2]);
        // Rows 0 and (2 or 3) covered; row 1 and the other of {2,3} not.
        assert!(!rows[1]);
        assert_eq!(rows.iter().filter(|&&p| p).count(), 2);
    }
}
