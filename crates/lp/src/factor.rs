//! The basis-factorization abstraction behind the revised simplex.
//!
//! The pivot loop in [`crate::simplex`] only ever needs four linear-algebra
//! operations on the basis matrix `B`:
//!
//! * `ftran` — `x ← B⁻¹ b` (entering column image, basic values);
//! * `btran` — `y ← B⁻ᵀ c` (duals, devex reference row);
//! * `update` — rank-one replacement of one basis column after a pivot;
//! * `refactor` — rebuild from the current basis columns.
//!
//! [`Factorization`] captures exactly that contract, so the engine is
//! generic over the representation: [`DenseInverse`] keeps an explicit
//! `m×m` basis inverse with Gauss–Jordan refactorization (the historical
//! implementation, kept as a measurable baseline and a cross-check), and
//! [`SparseLuFactor`] wraps the sparse Markowitz LU + eta file from
//! [`crate::sparse_lu`] (the production default).

use crate::model::{LpError, SolverOptions};
use crate::nonzero;
use crate::scratch::{prep, Counters, Scratch};
use crate::sparse_lu::{LuFactors, SparseCol};

/// Linear-algebra contract of a basis representation.
pub(crate) trait Factorization {
    /// Rebuilds the representation from the basis columns (`cols.len() == m`),
    /// counting workspace acquisitions in `cnt`.
    fn refactor(&mut self, m: usize, cols: &[SparseCol], cnt: &mut Counters)
        -> Result<(), LpError>;
    /// Moves any state persisted across solves (e.g. retained LU storage)
    /// out of the scratch and into this factorization.
    fn take_from(&mut self, _scratch: &mut Scratch) {}
    /// Returns persisted state to the scratch for the next solve.
    fn store_into(self, _scratch: &mut Scratch)
    where
        Self: Sized,
    {
    }
    /// In place: `x ← B⁻¹ x` (input indexed by row, output by basis position).
    fn ftran(&mut self, x: &mut [f64]);
    /// In place: `x ← B⁻ᵀ x` (input indexed by basis position, output by row).
    fn btran(&mut self, x: &mut [f64]);
    /// Writes row `r` of `B⁻¹` into `out` (length `m`).
    fn binv_row(&mut self, r: usize, out: &mut [f64]) {
        out.fill(0.0);
        out[r] = 1.0;
        self.btran(out);
    }
    /// Replaces basis position `r_leave`; `w` is the FTRAN image of the
    /// entering column. `Err` means "refactorize now".
    fn update(&mut self, r_leave: usize, w: &[f64]) -> Result<(), LpError>;
    /// Whether the engine should refactorize given pivots since the last one.
    fn wants_refactor(&self, since: usize, opts: &SolverOptions) -> bool;
    /// Nonzeros in the current factors (fill-in accounting).
    fn factor_nnz(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Dense explicit inverse (baseline).
// ---------------------------------------------------------------------------

/// Explicit dense `B⁻¹`, column-major (`binv[c*m + r] = B⁻¹[r][c]`), with
/// Gauss–Jordan refactorization and `O(m²)` product-form pivot updates.
#[derive(Default)]
pub(crate) struct DenseInverse {
    m: usize,
    binv: Vec<f64>,
    scratch: Vec<f64>,
    nz: Vec<(usize, f64)>,
    bmat: Vec<f64>,
    inv: Vec<f64>,
}

impl Factorization for DenseInverse {
    fn refactor(
        &mut self,
        m: usize,
        cols: &[SparseCol],
        cnt: &mut Counters,
    ) -> Result<(), LpError> {
        self.m = m;
        prep(cnt, &mut self.binv, m * m, 0.0);
        prep(cnt, &mut self.scratch, m, 0.0);
        if m == 0 {
            return Ok(());
        }
        // Dense B, row-major for cache-friendly row elimination.
        prep(cnt, &mut self.bmat, m * m, 0.0);
        let bmat = &mut self.bmat;
        for (k, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                bmat[r as usize * m + k] = v;
            }
        }
        prep(cnt, &mut self.inv, m * m, 0.0);
        let inv = &mut self.inv;
        for r in 0..m {
            inv[r * m + r] = 1.0;
        }
        for k in 0..m {
            // Partial pivot on column k.
            let mut piv_row = k;
            let mut piv_abs = bmat[k * m + k].abs();
            for r in k + 1..m {
                let a = bmat[r * m + k].abs();
                if a > piv_abs {
                    piv_abs = a;
                    piv_row = r;
                }
            }
            if piv_abs < 1e-12 {
                return Err(LpError::Numerical(format!(
                    "singular basis at column {k} (pivot {piv_abs:.3e})"
                )));
            }
            if piv_row != k {
                for c in 0..m {
                    bmat.swap(k * m + c, piv_row * m + c);
                    inv.swap(k * m + c, piv_row * m + c);
                }
            }
            let piv = bmat[k * m + k];
            let inv_piv = 1.0 / piv;
            for c in 0..m {
                bmat[k * m + c] *= inv_piv;
                inv[k * m + c] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if !nonzero(f) {
                    continue;
                }
                for c in 0..m {
                    bmat[r * m + c] -= f * bmat[k * m + c];
                    inv[r * m + c] -= f * inv[k * m + c];
                }
            }
        }
        // Transpose into the column-major layout.
        for r in 0..m {
            for c in 0..m {
                self.binv[c * m + r] = inv[r * m + c];
            }
        }
        Ok(())
    }

    fn ftran(&mut self, x: &mut [f64]) {
        let m = self.m;
        // Gather nonzeros of the (row-indexed) input first: entering
        // columns and right-hand sides are sparse.
        self.nz.clear();
        for (r, &v) in x.iter().enumerate() {
            if nonzero(v) {
                self.nz.push((r, v));
            }
        }
        let w = &mut self.scratch;
        w.fill(0.0);
        for &(r, v) in &self.nz {
            let col = &self.binv[r * m..r * m + m];
            for (wi, ci) in w.iter_mut().zip(col) {
                *wi += v * ci;
            }
        }
        x.copy_from_slice(w);
    }

    fn btran(&mut self, x: &mut [f64]) {
        let m = self.m;
        self.nz.clear();
        for (r, &v) in x.iter().enumerate() {
            if nonzero(v) {
                self.nz.push((r, v));
            }
        }
        let y = &mut self.scratch;
        for (c, yc) in y.iter_mut().enumerate() {
            let col = &self.binv[c * m..c * m + m];
            let mut acc = 0.0;
            for &(r, cv) in &self.nz {
                acc += cv * col[r];
            }
            *yc = acc;
        }
        x.copy_from_slice(y);
    }

    fn binv_row(&mut self, r: usize, out: &mut [f64]) {
        // Strided gather from the column-major layout.
        let m = self.m;
        for (c, rc) in out.iter_mut().enumerate() {
            *rc = self.binv[c * m + r];
        }
    }

    fn update(&mut self, r_leave: usize, w: &[f64]) -> Result<(), LpError> {
        let m = self.m;
        let piv = w[r_leave];
        if piv.abs() < 1e-11 {
            return Err(LpError::Numerical(format!(
                "dense update pivot too small: {piv:.3e}"
            )));
        }
        for c in 0..m {
            let col = &mut self.binv[c * m..c * m + m];
            let t = col[r_leave] / piv;
            if !nonzero(t) {
                continue;
            }
            for (ci, wi) in col.iter_mut().zip(w) {
                *ci -= wi * t;
            }
            col[r_leave] = t;
        }
        Ok(())
    }

    fn wants_refactor(&self, since: usize, opts: &SolverOptions) -> bool {
        since >= opts.refactor_every
    }

    fn factor_nnz(&self) -> usize {
        self.m * self.m
    }
}

// ---------------------------------------------------------------------------
// Sparse LU + eta file (production default).
// ---------------------------------------------------------------------------

/// Sparse Markowitz LU with product-form updates ([`crate::sparse_lu`]).
#[derive(Default)]
pub(crate) struct SparseLuFactor {
    lu: Option<LuFactors>,
}

impl Factorization for SparseLuFactor {
    fn refactor(
        &mut self,
        m: usize,
        cols: &[SparseCol],
        cnt: &mut Counters,
    ) -> Result<(), LpError> {
        if m == 0 {
            self.lu = None;
            return Ok(());
        }
        self.lu
            .get_or_insert_with(LuFactors::default)
            .refactor_in_place(m, cols, cnt)
            .map_err(LpError::Numerical)
    }

    fn take_from(&mut self, scratch: &mut Scratch) {
        self.lu = scratch.lu.take();
    }

    fn store_into(self, scratch: &mut Scratch) {
        scratch.lu = self.lu;
    }

    fn ftran(&mut self, x: &mut [f64]) {
        if let Some(lu) = self.lu.as_mut() {
            lu.ftran(x);
        }
    }

    fn btran(&mut self, x: &mut [f64]) {
        if let Some(lu) = self.lu.as_mut() {
            lu.btran(x);
        }
    }

    fn update(&mut self, r_leave: usize, w: &[f64]) -> Result<(), LpError> {
        match self.lu.as_mut() {
            Some(lu) => lu.update(r_leave, w).map_err(LpError::Numerical),
            None => Ok(()),
        }
    }

    fn wants_refactor(&self, since: usize, opts: &SolverOptions) -> bool {
        let Some(lu) = self.lu.as_ref() else {
            return false;
        };
        // Refactorize when the eta file stops paying for itself: solves
        // cost O(lu_nnz + eta_nnz), refactorization is cheap for sparse
        // bases, and long eta chains also degrade numerically.
        since >= opts.refactor_every.min(120) || lu.eta_nnz > 2 * lu.lu_nnz().max(500)
    }

    fn factor_nnz(&self) -> usize {
        self.lu.as_ref().map_or(0, |lu| lu.lu_nnz())
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn cols3() -> Vec<SparseCol> {
        vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 1.0), (2, 3.0)],
            vec![(0, 1.0), (2, 5.0)],
        ]
    }

    /// Dense and sparse factorizations must agree on ftran/btran/binv_row
    /// and on post-update solves.
    #[test]
    fn dense_and_sparse_agree() {
        let cols = cols3();
        let mut cnt = Counters::default();
        let mut d = DenseInverse::default();
        let mut s = SparseLuFactor::default();
        d.refactor(3, &cols, &mut cnt).unwrap();
        s.refactor(3, &cols, &mut cnt).unwrap();

        let b = [1.0, -2.0, 0.5];
        let (mut xd, mut xs) = (b, b);
        d.ftran(&mut xd);
        s.ftran(&mut xs);
        for (u, v) in xd.iter().zip(&xs) {
            assert!((u - v).abs() < 1e-10);
        }
        let c = [0.5, 0.0, -1.5];
        let (mut yd, mut ys) = (c, c);
        d.btran(&mut yd);
        s.btran(&mut ys);
        for (u, v) in yd.iter().zip(&ys) {
            assert!((u - v).abs() < 1e-10);
        }
        let (mut rd, mut rs) = ([0.0; 3], [0.0; 3]);
        d.binv_row(1, &mut rd);
        s.binv_row(1, &mut rs);
        for (u, v) in rd.iter().zip(&rs) {
            assert!((u - v).abs() < 1e-10);
        }

        // Update position 0 with a new column, then compare ftran again.
        let a = [1.0f64, 1.0, 0.0];
        let (mut wd, mut ws) = (a, a);
        d.ftran(&mut wd);
        s.ftran(&mut ws);
        d.update(0, &wd).unwrap();
        s.update(0, &ws).unwrap();
        let b2 = [0.0, 1.0, 1.0];
        let (mut xd, mut xs) = (b2, b2);
        d.ftran(&mut xd);
        s.ftran(&mut xs);
        for (u, v) in xd.iter().zip(&xs) {
            assert!((u - v).abs() < 1e-9);
        }
    }
}
