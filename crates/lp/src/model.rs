//! LP model builder and solution types.

use crate::backend::{backend_for, Backend};
use crate::basis::{Basis, SolveStats};
use crate::nonzero;
use crate::{dense, LP_TOL};
use std::fmt;

/// Identifier of a decision variable (dense index into the model).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Identifier of a constraint row.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u32);

impl VarId {
    /// Index view.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RowId {
    /// Index view.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Constraint sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `a·x <= b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x >= b`
    Ge,
}

/// Termination status of a solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Proven optimal within tolerance.
    Optimal,
    /// A [`Budget`] ran out after feasibility was reached: the returned
    /// point is primal feasible but possibly suboptimal. The gap to the
    /// true optimum is bracketed by [`Solution::bound`].
    Truncated,
}

/// Solver failure modes.
#[derive(Clone, PartialEq, Debug)]
pub enum LpError {
    /// No feasible point exists (phase-1 optimum > tolerance).
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// Iteration limit was exhausted (see [`SolverOptions::max_iters`]).
    IterationLimit,
    /// A [`Budget`] ran out *before* a feasible point was found (phase 1
    /// still running), so there is nothing usable to return. Budgets that
    /// expire after feasibility yield [`Status::Truncated`] instead.
    BudgetExhausted,
    /// Numerical trouble the solver could not recover from.
    Numerical(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::BudgetExhausted => {
                write!(
                    f,
                    "solver budget exhausted before a feasible point was found"
                )
            }
            LpError::Numerical(s) => write!(f, "numerical failure: {s}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Column-pricing strategy of the revised simplex.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Pricing {
    /// Sectioned ("partial") devex: each iteration scans rotating windows
    /// of roughly `4m` columns and stops at the first window containing an
    /// eligible candidate; devex weights are maintained for the scanned
    /// columns only. Cuts the per-iteration cost from `O(nnz(A))` to
    /// `O(nnz(window))` on the wide coflow LPs (`n ≫ m`).
    #[default]
    Partial,
    /// Classic full pricing: every iteration scans all columns and updates
    /// all devex weights (the historical behavior, kept as a measurable
    /// baseline and for pathological instances). The scan runs across
    /// fixed column sections on [`SolverOptions::threads`] workers; the
    /// winner (best devex score, ties to the lower column index) is
    /// identical at any thread count.
    Full,
    /// Candidate-list pricing: a full scan (parallel across fixed column
    /// sections, exact deterministic merge) refills a short list of the
    /// best-scoring columns; subsequent pivots rescan only the list until
    /// it runs dry. The cheapest mode on very wide LPs (`n ≫ m`) and the
    /// one that scales with [`SolverOptions::threads`]; pivot sequences
    /// are byte-identical at any thread count, but differ from
    /// [`Pricing::Partial`]'s, so solves may return a different
    /// equally-optimal vertex than the default mode.
    Candidate,
}

/// Resource budget for a single solve (and, through
/// [`solve_colgen`](crate::solve_colgen), a column-generation sequence).
///
/// All limits default to `None` (unlimited — the behavior before budgets
/// existed). When a limit trips *after* phase 1 has produced a feasible
/// point, the solve returns that point with [`Status::Truncated`] and a
/// valid objective bound instead of an error; tripping during phase 1
/// yields [`LpError::BudgetExhausted`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Hard cap on simplex pivots for one solve, across both phases.
    /// Unlike [`SolverOptions::max_iters`] (which errors), exhausting this
    /// truncates gracefully.
    pub max_pivots: Option<usize>,
    /// Deadline on the solve's `coflow_obs` clock (comparing against the
    /// recorder's raw stamps, so under `ClockMode::Logical` this is a tick
    /// count and fully deterministic). Checked once per pivot using the
    /// stamp the pivot loop already takes — budgets never add clock reads.
    pub deadline: Option<u64>,
    /// Cap on column-generation rounds, tightening the `max_rounds`
    /// argument of [`solve_colgen`](crate::solve_colgen).
    pub max_colgen_rounds: Option<usize>,
}

impl Budget {
    /// True when no limit is set (the default).
    pub fn is_unlimited(&self) -> bool {
        *self == Self::default()
    }
}

/// Options controlling the simplex.
#[derive(Clone, Debug)]
pub struct SolverOptions {
    /// Hard cap on simplex iterations across both phases.
    pub max_iters: usize,
    /// Feasibility/optimality tolerance.
    pub tol: f64,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Verify the returned solution (feasibility + reduced costs) and panic
    /// on violation. Enabled by default in debug builds.
    pub verify: bool,
    /// Relative magnitude of a deterministic phase-2 cost perturbation
    /// (0 = exact costs). Interval-indexed coflow LPs are massively
    /// degenerate; a `~1e-7` perturbation breaks ties and cuts pivot counts
    /// by an order of magnitude. The reported objective is always
    /// recomputed with the *true* costs; the returned vertex is optimal for
    /// the perturbed problem, hence within `perturb · Σ|x|·scale` of the
    /// true optimum.
    pub perturb: f64,
    /// Relative magnitude of the deterministic jitter on phase-1
    /// artificial costs (0 = exact unit costs). Exact unit costs make
    /// transportation-like LPs massively dual-degenerate in phase 1; the
    /// jitter breaks the ties while preserving the phase-1 optimum's
    /// defining property (zero infeasibility ⇔ all artificials at zero).
    pub phase1_jitter: f64,
    /// Column-pricing strategy (see [`Pricing`]).
    pub pricing: Pricing,
    /// Which solver implementation to use (see [`Backend`]).
    pub backend: Backend,
    /// Worker threads for the parallel pricing scan and the colgen
    /// oracle fan-out (clamped to at least 1). Results are **byte
    /// identical at any thread count** — the parallel reduction is a
    /// deterministic exact merge — so this knob trades wall time only.
    /// Defaults to the `COFLOW_LP_THREADS` environment variable when set
    /// to a positive integer, else 1.
    pub threads: usize,
    /// Resource budget (pivots / clock deadline / colgen rounds). The
    /// default is unlimited; see [`Budget`] for truncation semantics.
    pub budget: Budget,
}

/// Reads the `COFLOW_LP_THREADS` default for [`SolverOptions::threads`].
fn threads_from_env() -> usize {
    std::env::var("COFLOW_LP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iters: 2_000_000,
            tol: LP_TOL,
            refactor_every: 1500,
            bland_after: 60,
            verify: cfg!(debug_assertions),
            perturb: 0.0,
            phase1_jitter: 1e-7,
            pricing: Pricing::default(),
            backend: Backend::default(),
            threads: threads_from_env(),
            budget: Budget::default(),
        }
    }
}

impl SolverOptions {
    /// Options tuned for the large, degenerate experiment LPs.
    pub fn for_experiments() -> Self {
        Self {
            perturb: 1e-7,
            verify: false,
            ..Default::default()
        }
    }
}

/// A variable's static data.
#[derive(Clone, Debug)]
pub(crate) struct Column {
    pub cost: f64,
    pub lb: f64,
    pub ub: f64,
    pub name: String,
}

/// A constraint row's static data.
#[derive(Clone, Debug)]
pub(crate) struct Row {
    pub cmp: Cmp,
    pub rhs: f64,
    /// Optional stable name (empty = anonymous). Named rows let a
    /// [`Basis`] snapshot remember basic *slacks* across related models,
    /// which is what makes warm starts of inequality-heavy LPs effective.
    pub name: String,
}

/// Builder for a linear program `min cᵀx  s.t.  Ax {<=,=,>=} b, l <= x <= u`.
///
/// * Lower bounds must be finite (all coflow LPs have `l = 0`).
/// * Upper bounds may be `f64::INFINITY`.
/// * Duplicate `(var, coef)` terms within a row are summed.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) cols: Vec<Column>,
    pub(crate) rows: Vec<Row>,
    /// Sparse constraint coefficients as (row, col, coef) triplets.
    pub(crate) triplets: Vec<(u32, u32, f64)>,
}

impl Model {
    /// New empty minimization model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with objective coefficient `cost` and bounds
    /// `[lb, ub]`; returns its id.
    ///
    /// # Panics
    /// If `lb` is not finite, `lb > ub`, or `cost` is not finite.
    pub fn add_var(&mut self, cost: f64, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        assert!(lb.is_finite(), "lower bound must be finite");
        assert!(!ub.is_nan() && ub >= lb, "need lb <= ub, got [{lb}, {ub}]");
        assert!(cost.is_finite(), "cost must be finite");
        let id = VarId(self.cols.len() as u32);
        self.cols.push(Column {
            cost,
            lb,
            ub,
            name: name.into(),
        });
        id
    }

    /// Shorthand for a `[0, inf)` variable.
    pub fn add_nonneg(&mut self, cost: f64, name: impl Into<String>) -> VarId {
        self.add_var(cost, 0.0, f64::INFINITY, name)
    }

    /// Shorthand for a `[0, 1]` variable.
    pub fn add_unit(&mut self, cost: f64, name: impl Into<String>) -> VarId {
        self.add_var(cost, 0.0, 1.0, name)
    }

    /// Changes the objective coefficient of `v`.
    pub fn set_cost(&mut self, v: VarId, cost: f64) {
        assert!(cost.is_finite());
        self.cols[v.index()].cost = cost;
    }

    /// Fixes variable `v` to `value` (sets both bounds).
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        assert!(value.is_finite());
        self.cols[v.index()].lb = value;
        self.cols[v.index()].ub = value;
    }

    /// Adds constraint `Σ terms {cmp} rhs`; returns the row id.
    ///
    /// Duplicate `(var, coef)` terms are **summed once here**, so presolve
    /// and the solver backends never re-scan for duplicates: every stored
    /// row has unique variables and nonzero coefficients (terms whose sum
    /// cancels to zero are dropped entirely).
    ///
    /// # Panics
    /// If `rhs` or any coefficient is not finite, or a var id is invalid.
    pub fn add_row(&mut self, cmp: Cmp, rhs: f64, terms: &[(VarId, f64)]) -> RowId {
        self.add_row_named(cmp, rhs, terms, String::new())
    }

    /// [`Model::add_row`] with a stable row name. Naming a row lets basis
    /// snapshots carry the row's basic-slack status into a related model
    /// (see [`Model::solve_warm`]); anonymous rows still solve identically
    /// but their slack state is reconstructed rather than remembered.
    pub fn add_row_named(
        &mut self,
        cmp: Cmp,
        rhs: f64,
        terms: &[(VarId, f64)],
        name: impl Into<String>,
    ) -> RowId {
        assert!(rhs.is_finite(), "rhs must be finite");
        let id = RowId(self.rows.len() as u32);
        self.rows.push(Row {
            cmp,
            rhs,
            name: name.into(),
        });
        let start = self.triplets.len();
        for &(v, c) in terms {
            assert!(c.is_finite(), "coefficient must be finite");
            assert!(v.index() < self.cols.len(), "unknown variable {v:?}");
            if nonzero(c) {
                self.triplets.push((id.0, v.0, c));
            }
        }
        // Canonicalize the row in place: sort by variable, merge duplicates,
        // drop exact cancellations. Rows are short, so this is cheap — and
        // it runs once per row instead of once per solve.
        let row = &mut self.triplets[start..];
        if row.len() > 1 {
            row.sort_unstable_by_key(|&(_, c, _)| c);
            let mut w = start;
            let mut i = start;
            while i < self.triplets.len() {
                let (r, c, mut a) = self.triplets[i];
                let mut k = i + 1;
                while k < self.triplets.len() && self.triplets[k].1 == c {
                    a += self.triplets[k].2;
                    k += 1;
                }
                if nonzero(a) {
                    self.triplets[w] = (r, c, a);
                    w += 1;
                }
                i = k;
            }
            self.triplets.truncate(w);
        }
        id
    }

    /// Appends a new variable together with its coefficients in *existing*
    /// rows — the column-generation dual of [`Model::add_row`]. Duplicate
    /// `(row, coef)` terms are summed and exact cancellations dropped, so
    /// stored columns have unique rows, mirroring the row-side guarantee.
    ///
    /// # Panics
    /// If a row id is invalid or a coefficient is not finite (bounds/cost
    /// are validated by [`Model::add_var`]).
    pub fn add_column(
        &mut self,
        cost: f64,
        lb: f64,
        ub: f64,
        name: impl Into<String>,
        terms: &[(RowId, f64)],
    ) -> VarId {
        let v = self.add_var(cost, lb, ub, name);
        let mut col: Vec<(u32, f64)> = Vec::with_capacity(terms.len());
        for &(r, c) in terms {
            assert!(c.is_finite(), "coefficient must be finite");
            assert!(r.index() < self.rows.len(), "unknown row {r:?}");
            if nonzero(c) {
                col.push((r.0, c));
            }
        }
        col.sort_unstable_by_key(|&(r, _)| r);
        let mut i = 0;
        while i < col.len() {
            let (r, mut a) = col[i];
            let mut k = i + 1;
            while k < col.len() && col[k].0 == r {
                a += col[k].1;
                k += 1;
            }
            if nonzero(a) {
                self.triplets.push((r, v.0, a));
            }
            i = k;
        }
        v
    }

    /// `Σ terms <= rhs`.
    pub fn le(&mut self, terms: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(Cmp::Le, rhs, terms)
    }

    /// `Σ terms >= rhs`.
    pub fn ge(&mut self, terms: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(Cmp::Ge, rhs, terms)
    }

    /// `Σ terms = rhs`.
    pub fn eq(&mut self, terms: &[(VarId, f64)], rhs: f64) -> RowId {
        self.add_row(Cmp::Eq, rhs, terms)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of structural nonzeros.
    pub fn num_nonzeros(&self) -> usize {
        self.triplets.len()
    }

    /// Variable name (for diagnostics).
    pub fn var_name(&self, v: VarId) -> &str {
        &self.cols[v.index()].name
    }

    /// Solves with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolverOptions::default())
    }

    /// Solves with explicit options via the configured
    /// [`Backend`](crate::Backend).
    pub fn solve_with(&self, opts: &SolverOptions) -> Result<Solution, LpError> {
        let mut scratch = crate::scratch::Scratch::default();
        Ok(self.solve_inner(opts, None, false, &mut scratch)?.0)
    }

    /// Solves cold and additionally returns a [`Basis`] snapshot for
    /// warm-starting a structurally related (e.g. grown) model.
    pub fn solve_with_basis(&self, opts: &SolverOptions) -> Result<(Solution, Basis), LpError> {
        self.solve_with_basis_in(opts, &mut crate::scratch::Scratch::default())
    }

    /// Solves warm-started from `basis` (a snapshot of a related model's
    /// optimal basis, mapped by variable name) and returns the solution
    /// together with this model's own basis snapshot.
    ///
    /// Warm starting never changes the answer: if the mapped basis is
    /// singular or infeasible the solver silently cold-starts (check
    /// [`SolveStats::warm_used`] on the returned solution's `stats`).
    pub fn solve_warm(
        &self,
        basis: &Basis,
        opts: &SolverOptions,
    ) -> Result<(Solution, Basis), LpError> {
        self.solve_warm_in(basis, opts, &mut crate::scratch::Scratch::default())
    }

    /// [`Model::solve_with_basis`] reusing an explicit [`Scratch`]
    /// workspace — the path [`WarmChain`](crate::WarmChain) takes so its
    /// solves retain buffer capacity and LU storage across the sequence.
    pub(crate) fn solve_with_basis_in(
        &self,
        opts: &SolverOptions,
        scratch: &mut crate::scratch::Scratch,
    ) -> Result<(Solution, Basis), LpError> {
        let (sol, basis) = self.solve_inner(opts, None, true, scratch)?;
        Ok((sol, basis.unwrap_or_default()))
    }

    /// [`Model::solve_warm`] reusing an explicit [`Scratch`] workspace.
    pub(crate) fn solve_warm_in(
        &self,
        basis: &Basis,
        opts: &SolverOptions,
        scratch: &mut crate::scratch::Scratch,
    ) -> Result<(Solution, Basis), LpError> {
        let (sol, out) = self.solve_inner(opts, Some(basis), true, scratch)?;
        Ok((sol, out.unwrap_or_default()))
    }

    fn solve_inner(
        &self,
        opts: &SolverOptions,
        warm: Option<&Basis>,
        want_basis: bool,
        scratch: &mut crate::scratch::Scratch,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        let backend = backend_for(opts.backend);
        let (sol, basis) = backend.solve_model(self, opts, warm, want_basis, scratch)?;
        if opts.verify {
            // Feasibility and objective consistency hold for truncated
            // points too; only reduced-cost optimality would not.
            self.verify_solution(&sol, opts.tol.max(1e-6) * 100.0);
        }
        Ok((sol, basis))
    }

    /// Solves with the slow dense-tableau reference solver (tests/oracles).
    pub fn solve_dense_reference(&self) -> Result<Solution, LpError> {
        dense::solve(self)
    }

    /// Objective value of an assignment (no feasibility check).
    pub fn objective_of(&self, values: &[f64]) -> f64 {
        self.cols.iter().zip(values).map(|(c, &v)| c.cost * v).sum()
    }

    /// Maximum constraint violation of an assignment.
    pub fn max_violation(&self, values: &[f64]) -> f64 {
        let mut act = vec![0.0; self.rows.len()];
        for &(r, c, a) in &self.triplets {
            act[r as usize] += a * values[c as usize];
        }
        let mut worst = 0.0_f64;
        for (row, &a) in self.rows.iter().zip(&act) {
            let v = match row.cmp {
                Cmp::Le => a - row.rhs,
                Cmp::Ge => row.rhs - a,
                Cmp::Eq => (a - row.rhs).abs(),
            };
            worst = worst.max(v);
        }
        for (col, &x) in self.cols.iter().zip(values) {
            worst = worst.max(col.lb - x).max(x - col.ub);
        }
        worst
    }

    /// Panics if `sol` violates feasibility by more than `tol`
    /// (used by `SolverOptions::verify`).
    fn verify_solution(&self, sol: &Solution, tol: f64) {
        let viol = self.max_violation(&sol.values);
        assert!(
            viol <= tol,
            "solver returned infeasible point: violation {viol:.3e} > {tol:.3e}"
        );
        let obj = self.objective_of(&sol.values);
        let scale = 1.0 + obj.abs().max(sol.objective.abs());
        assert!(
            (obj - sol.objective).abs() / scale <= tol,
            "objective mismatch: reported {} recomputed {obj}",
            sol.objective
        );
    }
}

/// An optimal (or budget-truncated feasible) solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Objective value of the returned point (optimal unless
    /// [`Status::Truncated`]).
    pub objective: f64,
    /// A valid lower bound on the optimum of the solver's working
    /// objective. Equals `objective` for [`Status::Optimal`]; for
    /// [`Status::Truncated`] it is the Lagrangian bound at the last dual
    /// iterate (`-inf` when the duals certify nothing yet), so
    /// `objective - bound` brackets the truncation gap.
    pub bound: f64,
    /// Primal values, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Dual prices, indexed by [`RowId`]: raw simplex multipliers
    /// `y = c_B B⁻¹` (for `min` problems, binding `Le` rows are
    /// nonpositive, binding `Ge` rows nonnegative). Singleton rows that
    /// presolve rewrites into variable bounds are **dual-postsolved**:
    /// when the implied bound is active they report the bound's multiplier
    /// (so pricing consumers — delayed column generation — see them bind);
    /// empty/redundant/fixed-support rows report `0.0`, which is their
    /// exact dual. Degenerate optima have non-unique duals; these are the
    /// ones complementary to the returned vertex.
    pub duals: Vec<f64>,
    /// Total simplex pivots across both phases (mirror of
    /// `stats.iterations`, kept for convenience).
    pub iterations: usize,
    /// Pivots spent in phase 1 (diagnostics).
    pub phase1_iterations: usize,
    /// Termination status: [`Status::Optimal`], or [`Status::Truncated`]
    /// when a [`Budget`] expired after feasibility.
    pub status: Status,
    /// Detailed per-solve statistics (factorization fill-in,
    /// refactorization count, warm-start outcome, ...).
    pub stats: SolveStats,
}

impl Solution {
    /// Value of variable `v`.
    #[inline]
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Dual price of row `r`.
    #[inline]
    pub fn dual(&self, r: RowId) -> f64 {
        self.duals[r.index()]
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_duplicates() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Eq, 3.0, &[(x, 1.0), (x, 2.0)]);
        // x appears twice: effective coefficient 3 => x = 1.
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Ge, 0.0, &[(x, 0.0)]);
        assert_eq!(m.num_nonzeros(), 0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.value(x), 0.0);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn infinite_lb_rejected() {
        let mut m = Model::new();
        m.add_var(0.0, f64::NEG_INFINITY, 0.0, "x");
    }

    #[test]
    #[should_panic(expected = "lb <= ub")]
    fn inverted_bounds_rejected() {
        let mut m = Model::new();
        m.add_var(0.0, 1.0, 0.0, "x");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_rejected() {
        let mut m = Model::new();
        m.add_row(Cmp::Le, 1.0, &[(VarId(5), 1.0)]);
    }

    #[test]
    fn max_violation_reports_bounds_and_rows() {
        let mut m = Model::new();
        let x = m.add_unit(0.0, "x");
        m.le(&[(x, 1.0)], 0.25);
        assert!(m.max_violation(&[0.2]) < 1e-12);
        assert!((m.max_violation(&[0.5]) - 0.25).abs() < 1e-12);
        assert!((m.max_violation(&[1.5]) - 1.25).abs() < 1e-12); // ub violated by 0.5, row by 1.25
    }
}

#[cfg(test)]
mod perturb_tests {
    use super::*;

    /// The experiment options (cost perturbation) must not move the
    /// reported objective beyond the perturbation scale, and the returned
    /// point must stay feasible.
    #[test]
    fn perturbation_preserves_objective_within_scale() {
        let mut m = Model::new();
        let x = m.add_unit(-3.0, "x");
        let y = m.add_unit(-2.0, "y");
        let z = m.add_unit(-1.0, "z");
        m.le(&[(x, 1.0), (y, 1.0), (z, 1.0)], 1.5);
        let exact = m.solve().unwrap();
        let perturbed = m.solve_with(&SolverOptions::for_experiments()).unwrap();
        assert!((exact.objective - perturbed.objective).abs() < 1e-5);
        assert!(m.max_violation(&perturbed.values) < 1e-6);
    }

    /// Phase-1 iteration accounting: an LP whose crash basis is feasible
    /// (all Le rows) reports zero phase-1 pivots.
    #[test]
    fn slack_crash_basis_skips_phase1() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        m.le(&[(x, 1.0)], 4.0);
        let s = m.solve().unwrap();
        assert_eq!(s.phase1_iterations, 0, "Le-only LPs need no phase 1");
        // Ge rows force phase 1 work (two variables, so presolve cannot
        // rewrite the row into a bound).
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(2.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        let s = m.solve().unwrap();
        assert!(s.phase1_iterations > 0);
    }
}
