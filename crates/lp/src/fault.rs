//! Fault-injection hook points for the solver.
//!
//! A [`FaultHook`] is an *optional* callback the solver consults at a small
//! set of *serial* decision points — never inside the parallel pricing scan
//! or the oracle fan-out — so an injected fault sequence is a pure function
//! of the hook's own state and the solve sequence, independent of
//! [`SolverOptions::threads`](crate::SolverOptions). That is what lets the
//! chaos suite assert byte-identical traces at 1 and 4 threads *with faults
//! firing*.
//!
//! Hooks live on the [`Scratch`](crate::Scratch) workspace (installed via
//! [`WarmChain::set_fault_hook`](crate::WarmChain::set_fault_hook)), so one
//! hook follows a whole warm-started epoch sequence. Production code never
//! installs one; the implementation lives in the `coflow-faults` crate.

/// What a hook wants done to the current column-generation round.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ColgenFault {
    /// No fault this round.
    #[default]
    None,
    /// Simulate a pricing-oracle outage: `solve_colgen` stops before this
    /// round's pricing call and returns the current restricted-master
    /// optimum with `converged = false` (a feasible, possibly suboptimal
    /// answer — the same degraded contract as a round budget).
    AbortPricing,
    /// Perturb the duals handed to the pricing oracle by the given relative
    /// magnitude (deterministic per-row jitter). The master solution is
    /// untouched; the oracle may generate suboptimal columns or terminate
    /// early, both of which the rounding layer tolerates.
    PerturbDuals(f64),
}

/// Solver-side fault-injection callbacks. All methods default to "no
/// fault", so implementors override only the surfaces they target.
///
/// Determinism contract: every method is invoked at a serial point in the
/// solve, in a sequence independent of thread count; implementations must
/// derive their decisions only from internal (seeded) state and the call
/// sequence, never from wall-clock time or addresses.
///
/// `Send + Sync` are supertraits because the solver state holding the hook
/// is *borrowed* (never mutated) across the scoped pricing threads; the
/// hook itself is only ever *called* from the coordinating thread.
pub trait FaultHook: Send + Sync {
    /// Consulted once per basis (re)factorization attempt. Returning
    /// `true` makes the factorization report a singular basis, exercising
    /// the recovery ladder (refactorize → basis repair → cold restart).
    fn on_factorization(&mut self) -> bool {
        false
    }

    /// Consulted once per column-generation round, before the master's
    /// duals are handed to the pricing oracle.
    fn on_colgen_round(&mut self, round: usize) -> ColgenFault {
        let _ = round;
        ColgenFault::None
    }
}

impl std::fmt::Debug for dyn FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook")
    }
}

/// Applies [`ColgenFault::PerturbDuals`]: scales `duals[i]` by
/// `1 + eps·j(i)` where `j(i)` is a deterministic per-row jitter in
/// `[-1, 1)` derived from splitmix64. Shared here so tests and the faults
/// crate perturb identically.
pub fn perturb_duals_in_place(duals: &mut [f64], eps: f64) {
    for (i, d) in duals.iter_mut().enumerate() {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map to [-1, 1): top 53 bits as a unit float, shifted.
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        *d *= 1.0 + eps * (2.0 * unit - 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let mut a = vec![1.0, -2.0, 0.5, 0.0];
        let mut b = a.clone();
        perturb_duals_in_place(&mut a, 1e-3);
        perturb_duals_in_place(&mut b, 1e-3);
        assert_eq!(a, b, "same eps, same input => same output");
        for (orig, new) in [1.0, -2.0, 0.5, 0.0_f64].iter().zip(&a) {
            assert!((new - orig).abs() <= 1e-3 * orig.abs() + f64::EPSILON);
        }
    }

    #[test]
    fn default_hook_is_inert() {
        struct Noop;
        impl FaultHook for Noop {}
        let mut h = Noop;
        assert!(!h.on_factorization());
        assert_eq!(h.on_colgen_round(0), ColgenFault::None);
    }
}
