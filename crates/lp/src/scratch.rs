//! Reusable solver workspace threaded through every LP solve.
//!
//! The coflow call sites solve *sequences* of structurally related LPs
//! (growing interval grids, online epoch re-solves, column-generation
//! master loops). Before this module, every solve re-allocated its entire
//! working set — CSC assembly arrays, simplex state vectors, devex
//! weights, factorization temporaries — even though consecutive solves
//! are near-identical in shape. [`Scratch`] owns all of those buffers
//! across solves: a solve *acquires* each buffer (clear + resize, never
//! shrink), and on the steady-state path of a [`WarmChain`](crate::WarmChain)
//! every acquisition is served from capacity retained by earlier solves.
//!
//! **Counting contract** (surfaced as
//! [`SolveStats::allocs`](crate::SolveStats::allocs) /
//! [`SolveStats::scratch_reuse`](crate::SolveStats::scratch_reuse)):
//! every buffer acquisition goes through [`prep`]/[`reserve`], which
//! counts an *alloc* when the buffer's retained capacity was too small
//! (capacity is then grown to the next power of two, so repeated small
//! growth converges in O(log n) allocs) and a *reuse* otherwise. The
//! counters cover the length-known workspace buffers listed on
//! [`Scratch`]; they deliberately do **not** count (a) output vectors
//! that escape into the returned [`Solution`](crate::Solution)/
//! [`Basis`](crate::Basis) (the caller owns those), (b) presolve, which
//! builds a fresh [`Presolved`](crate::presolve::Presolved) per solve,
//! and (c) push-grown pools (sparse fill-in rows, eta entries), whose
//! capacity also persists across solves but whose final length is
//! data-dependent. `allocs == 0` therefore certifies that the solve ran
//! entirely inside retained workspace capacity.

use crate::simplex::State;
use crate::sparse_lu::{ElimWs, Elimination, LuFactors, SparseCol};

/// Per-solve acquisition counters (reset at the start of every solve).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Counters {
    /// Acquisitions that had to grow the buffer.
    pub(crate) allocs: usize,
    /// Acquisitions served from retained capacity.
    pub(crate) reuses: usize,
}

/// Clears `v` and guarantees capacity for `cap` elements, counting the
/// acquisition. Growth reserves the next power of two so a slowly growing
/// sequence of solves performs O(log n) allocations total.
pub(crate) fn reserve<T>(cnt: &mut Counters, v: &mut Vec<T>, cap: usize) {
    v.clear();
    if v.capacity() < cap {
        cnt.allocs += 1;
        v.reserve_exact(cap.next_power_of_two());
    } else {
        cnt.reuses += 1;
    }
}

/// Acquires `v` as a length-`len` buffer filled with `fill` (exactly the
/// contents of a fresh `vec![fill; len]`, so buffer reuse can never change
/// numerics), counting the acquisition.
pub(crate) fn prep<T: Clone>(cnt: &mut Counters, v: &mut Vec<T>, len: usize, fill: T) {
    reserve(cnt, v, len);
    v.resize(len, fill);
}

/// Acquires an outer pool of at least `len` reusable inner vectors (inner
/// vectors keep their capacity across acquisitions; callers clear the slots
/// they use).
pub(crate) fn reserve_pool<T>(cnt: &mut Counters, pool: &mut Vec<Vec<T>>, len: usize) {
    if pool.len() < len {
        cnt.allocs += 1;
        pool.resize_with(len.next_power_of_two(), Vec::new);
    } else {
        cnt.reuses += 1;
    }
}

/// Per-phase pivot-loop vectors (duals, entering-column image, devex).
#[derive(Clone, Debug, Default)]
pub(crate) struct PhaseBufs {
    /// Row duals `y = B⁻ᵀ c_B`.
    pub(crate) y: Vec<f64>,
    /// FTRAN image of the entering column.
    pub(crate) w: Vec<f64>,
    /// Row `r` of `B⁻¹` for the devex update.
    pub(crate) rho: Vec<f64>,
    /// Devex reference weights.
    pub(crate) gamma: Vec<f64>,
    /// Per-column pricing sign: `-1` at lower bound, `+1` at upper, `0`
    /// for basic or fixed (`lb == ub`) columns. Maintained incrementally
    /// across pivots so the scan kernels replace a status match plus two
    /// bound loads with one byte load.
    pub(crate) sgn: Vec<i8>,
    /// Candidate list for candidate pricing: column indices retained by
    /// the last refill scan (eligible columns first, then the best
    /// near-misses), rescanned on every pivot until it runs dry.
    pub(crate) cand: Vec<u32>,
    /// Merge buffer for the per-section scan results: `(score, column,
    /// eligible)` entries sorted into the global top list.
    pub(crate) merged: Vec<(f64, u32, bool)>,
    /// Per-worker output slots of the parallel refill scan (one bounded
    /// local top list per fixed column section).
    pub(crate) sections: Vec<Vec<(f64, u32, bool)>>,
}

/// Refactorization temporaries: the basis-column gather pool and the
/// right-hand-side work vector for recomputing basic values.
#[derive(Clone, Debug, Default)]
pub(crate) struct FactorBufs {
    /// Reusable per-position sparse basis columns.
    pub(crate) cols: Vec<SparseCol>,
    /// RHS residual for `x_B = B⁻¹ (b − N x_N)`.
    pub(crate) r: Vec<f64>,
}

/// Working-problem assembly buffers (kept rows, CSC fill, cost vectors).
#[derive(Clone, Debug, Default)]
pub(crate) struct AsmBufs {
    /// Original indices of rows surviving presolve.
    pub(crate) kept_rows: Vec<u32>,
    /// Original row index → working row index.
    pub(crate) row_map: Vec<Option<u32>>,
    /// Nonzeros per working structural column.
    pub(crate) col_counts: Vec<usize>,
    /// Working row → slack column index (Le/Ge rows only).
    pub(crate) slack_of_row: Vec<Option<usize>>,
    /// CSC fill cursor (a working copy of `col_ptr`).
    pub(crate) fill_ptr: Vec<usize>,
    /// Phase-1 costs (jittered artificials).
    pub(crate) costs1: Vec<f64>,
    /// Phase-2 costs (true objective, optionally perturbed).
    pub(crate) costs2: Vec<f64>,
    /// Final dual extraction work vector.
    pub(crate) y: Vec<f64>,
}

/// Warm-start and crash-basis temporaries.
#[derive(Clone, Debug, Default)]
pub(crate) struct WarmBufs {
    /// Mapped basic candidates (working variable indices).
    pub(crate) cand: Vec<usize>,
    /// Mapped nonbasic-at-upper variables.
    pub(crate) uppers: Vec<usize>,
    /// Bound-shifted variables: `(var, original lb, original ub)`.
    pub(crate) shifted: Vec<(usize, f64, f64)>,
    /// Phase-0 repair costs.
    pub(crate) costs0: Vec<f64>,
    /// Implied-basic-value work vector.
    pub(crate) r: Vec<f64>,
    /// Crash-basis row residuals.
    pub(crate) resid: Vec<f64>,
}

/// Rank-revealing completion workspace for warm starts.
#[derive(Clone, Debug, Default)]
pub(crate) struct CompleteBufs {
    /// Elimination output (pivoted columns/rows are read back directly).
    pub(crate) elim: Elimination,
    /// Elimination working arrays.
    pub(crate) ws: ElimWs,
}

/// Reusable workspace for repeated LP solves.
///
/// One `Scratch` is owned by each [`WarmChain`](crate::WarmChain) and
/// threaded through [`LpBackend::solve_model`](crate::LpBackend::solve_model)
/// into the simplex and the sparse LU. It retains, across solves: the
/// entire simplex [`State`] (CSC matrix, bounds, point, statuses, basis),
/// the per-phase pivot-loop vectors, assembly and warm-start temporaries,
/// the basis-column gather pool, the rank-revealing completion workspace,
/// and the sparse LU factors themselves (elimination storage, fill-in
/// rows, eta file). One-shot [`Model::solve_with`](crate::Model::solve_with)
/// calls create a transient `Scratch` internally, so the workspace only
/// pays off — but never costs anything — on solve sequences.
///
/// Cloning a `Scratch` yields a fresh empty workspace: retained capacity
/// is a cache, not state, and must not be shared between chains.
#[derive(Default)]
pub struct Scratch {
    /// Per-solve acquisition counters.
    pub(crate) cnt: Counters,
    /// The simplex state (persisted so its vectors keep capacity).
    pub(crate) state: State,
    /// Pivot-loop vectors.
    pub(crate) ph: PhaseBufs,
    /// Refactorization temporaries.
    pub(crate) fx: FactorBufs,
    /// Assembly buffers.
    pub(crate) asm: AsmBufs,
    /// Warm-start/crash temporaries.
    pub(crate) warm: WarmBufs,
    /// Warm-start basis-completion workspace.
    pub(crate) complete: CompleteBufs,
    /// Sparse LU factors persisted between solves (the production
    /// backend's elimination storage, workspace, and eta file).
    pub(crate) lu: Option<LuFactors>,
    /// Trace recorder: spans, time accumulators, counters, histograms.
    /// Lives here because the scratch is already threaded through every
    /// solve; its ring is allocated at construction so recording on the
    /// hot path never allocates (the `allocs == 0` contract holds with
    /// tracing attached).
    pub(crate) rec: coflow_obs::Recorder,
}

impl Scratch {
    /// A fresh, empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The embedded trace recorder (spans, accumulators, counters).
    pub fn obs(&mut self) -> &mut coflow_obs::Recorder {
        &mut self.rec
    }
}

impl Clone for Scratch {
    /// Clones as a *fresh* workspace: capacity is a per-chain cache and
    /// deliberately not copied (cloned chains re-grow on first solve).
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scratch")
            .field("allocs", &self.cnt.allocs)
            .field("reuses", &self.cnt.reuses)
            .field("lu_retained", &self.lu.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prep_counts_growth_then_reuse() {
        let mut cnt = Counters::default();
        let mut v: Vec<f64> = Vec::new();
        prep(&mut cnt, &mut v, 100, 0.0);
        assert_eq!((cnt.allocs, cnt.reuses), (1, 0));
        assert_eq!(v.len(), 100);
        assert!(v.capacity() >= 128, "power-of-two headroom");
        prep(&mut cnt, &mut v, 120, 1.0);
        assert_eq!((cnt.allocs, cnt.reuses), (1, 1), "within headroom");
        assert!(v.iter().all(|&x| (x - 1.0).abs() < 1e-15));
        prep(&mut cnt, &mut v, 300, 0.0);
        assert_eq!((cnt.allocs, cnt.reuses), (2, 1));
    }

    #[test]
    fn clone_is_fresh() {
        let mut s = Scratch::new();
        prep(&mut s.cnt, &mut s.ph.y, 64, 0.0);
        let c = s.clone();
        assert_eq!(c.ph.y.capacity(), 0);
        assert_eq!(c.cnt.allocs, 0);
    }
}
