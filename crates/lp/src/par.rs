//! Scoped-thread worker pools (std-only) shared by the solver, the
//! column-generation call sites, and the bench harness.
//!
//! Two execution shapes with very different determinism contracts:
//!
//! * [`for_each_section`] — a **deterministic static partition**: the
//!   index range `0..n` is cut into `workers` fixed contiguous sections
//!   and worker `w` always processes section `w` into its own output
//!   slot. The section boundaries depend only on `(n, workers)`, never
//!   on timing, so a caller whose per-section result is reduced with a
//!   partition-independent merge (e.g. an exact top-K by a total order)
//!   gets byte-identical results at any worker count. This is what the
//!   simplex pricing scan and the colgen oracle fan-out use.
//! * [`run_parallel`] / [`run_parallel_with`] — an order-preserving
//!   parallel map over items with **work-stealing** assignment: fast for
//!   imbalanced items, but the item-to-worker mapping is
//!   timing-dependent, so per-worker state must not affect results (see
//!   the warning on [`run_parallel_with`]).
//!
//! Threads are spawned per call via [`std::thread::scope`] — no pool is
//! kept alive between calls. Callers amortize the spawn cost by keeping
//! per-call work coarse (the pricing scan only goes parallel when the
//! column range is large enough; the oracle fan-out batches a whole
//! pricing round).

use std::ops::Range;

/// Cuts `0..n` into `workers` contiguous sections and runs
/// `f(worker, section_range, &mut slots[worker])` for each, in parallel.
///
/// `slots` must hold at least `workers` elements; slot `w` receives
/// section `w`'s output. Sections are `ceil(n / workers)` wide (the last
/// may be short or empty), so the partition is a pure function of
/// `(n, workers)`. With `workers == 1` (or `n == 0`) everything runs
/// inline on the caller's thread — the serial path is the same code.
///
/// Determinism: the partition is timing-independent, but *different*
/// worker counts produce different section boundaries — a caller that
/// must be reproducible across thread counts needs a merge that is
/// invariant to how the range was cut (see the module docs).
// lint: hot
pub fn for_each_section<T: Send>(
    workers: usize,
    n: usize,
    slots: &mut [T],
    f: impl Fn(usize, Range<usize>, &mut T) + Sync,
) {
    let workers = workers.max(1).min(slots.len().max(1));
    assert!(slots.len() >= workers, "need one output slot per worker");
    let chunk = n.div_ceil(workers).max(1);
    if workers == 1 || n <= chunk {
        if let Some(slot) = slots.first_mut() {
            f(0, 0..n, slot);
        }
        return;
    }
    // lint: allow(no_panic) — workers >= 2 here, so slots is non-empty
    let (first, rest) = slots.split_first_mut().expect("checked: slots non-empty");
    std::thread::scope(|scope| {
        for (i, slot) in rest.iter_mut().take(workers - 1).enumerate() {
            let w = i + 1;
            let lo = (w * chunk).min(n);
            let hi = ((w + 1) * chunk).min(n);
            let f = &f;
            scope.spawn(move || f(w, lo..hi, slot));
        }
        // Section 0 runs on the calling thread: one spawn fewer, and the
        // serial (workers == 1) path above exercises the same closure.
        f(0, 0..chunk.min(n), first);
    });
}

/// Simple scoped-thread parallel map preserving input order.
pub fn run_parallel<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    run_parallel_with(items, threads, || (), |(), i, item| f(i, item))
}

/// [`run_parallel`] with per-worker state: `init` runs once on each worker
/// thread and the resulting state is threaded through every item that
/// worker processes. General utility for caches or scratch buffers whose
/// contents must not affect results — note `coflow_bench::run_point`
/// deliberately does *not* use it for its warm chains: work-stealing makes
/// the item-to-worker assignment timing-dependent, so anything
/// result-affecting (an accepted warm basis can change the optimal vertex)
/// must be threaded through a deterministic static partition instead
/// ([`for_each_section`]).
pub fn run_parallel_with<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1);
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        out.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&mut state, i, &items[i]);
                    // lint: allow(no_panic) — propagate a worker panic to the caller
                    **slots[i].lock().expect("worker panicked holding slot lock") = Some(r);
                }
            });
        }
    });
    out.into_iter()
        // lint: allow(no_panic) — a dead worker is a pool bug, not a data error
        .map(|o| o.expect("worker died before filling slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_cover_range_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for workers in [1usize, 2, 3, 4, 8] {
                let mut slots: Vec<Vec<usize>> = vec![Vec::new(); workers];
                for_each_section(workers, n, &mut slots, |_, range, out| {
                    out.extend(range);
                });
                let mut seen: Vec<usize> = slots.concat();
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn sections_are_contiguous_and_ordered() {
        let mut slots: Vec<Option<Range<usize>>> = vec![None; 4];
        for_each_section(4, 10, &mut slots, |_, range, out| *out = Some(range));
        let got: Vec<Range<usize>> = slots.into_iter().flatten().collect();
        assert_eq!(got, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = run_parallel(&items, 4, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_with_threads_state_through_workers() {
        let items: Vec<usize> = (0..50).collect();
        let got = run_parallel_with(
            &items,
            3,
            || 0usize,
            |calls, _, &x| {
                *calls += 1;
                x + 1
            },
        );
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
    }
}
