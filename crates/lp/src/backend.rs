//! Pluggable solver backends behind [`crate::Model::solve_with`].
//!
//! Every backend consumes the same [`Model`] and produces the same
//! [`Solution`]; they differ in the linear algebra driving the pivot loop
//! (or, for the oracle, in the algorithm entirely):
//!
//! | [`Backend`]          | implementation                                  | role |
//! |----------------------|--------------------------------------------------|------|
//! | [`Backend::Sparse`]  | revised simplex over sparse Markowitz LU + etas | production default |
//! | [`Backend::DenseInverse`] | revised simplex over an explicit dense `B⁻¹` | measurable baseline |
//! | [`Backend::Reference`] | independent full-tableau simplex ([`crate::dense`]) | testing oracle |
//!
//! The selection lives in [`crate::SolverOptions::backend`], so call sites
//! pick a backend with configuration, not code. The [`LpBackend`] trait is
//! object-safe; [`backend_for`] hands out the singleton implementations.

use crate::basis::Basis;
use crate::factor::{DenseInverse, SparseLuFactor};
use crate::model::{LpError, Model, Solution, SolverOptions};
use crate::scratch::Scratch;
use crate::{dense, presolve, simplex};

/// Which solver implementation [`Model::solve_with`] dispatches to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// Revised simplex over a sparse LU factorization with eta-file
    /// updates (the production default).
    #[default]
    Sparse,
    /// Revised simplex over an explicit dense basis inverse with
    /// Gauss–Jordan refactorization (the historical implementation, kept
    /// as a measurable baseline).
    DenseInverse,
    /// The independent dense-tableau oracle (slow; tests only). Ignores
    /// warm starts and presolve.
    Reference,
}

/// A solver implementation: model in, solution (and optionally a reusable
/// [`Basis`]) out.
pub trait LpBackend {
    /// Human-readable backend name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Solves `model`. `warm` supplies a basis snapshot from a related
    /// model (backends may ignore it); `want_basis` requests a snapshot of
    /// the final basis (`None` when unsupported or not requested);
    /// `scratch` supplies the reusable workspace — pass the same one
    /// across a sequence of related solves so steady-state solves run
    /// allocation-free (backends that don't use workspace ignore it).
    fn solve_model(
        &self,
        model: &Model,
        opts: &SolverOptions,
        warm: Option<&Basis>,
        want_basis: bool,
        scratch: &mut Scratch,
    ) -> Result<(Solution, Option<Basis>), LpError>;
}

/// Revised simplex over sparse Markowitz LU + eta file.
pub struct SparseSimplex;

impl LpBackend for SparseSimplex {
    fn name(&self) -> &'static str {
        "sparse-lu"
    }

    fn solve_model(
        &self,
        model: &Model,
        opts: &SolverOptions,
        warm: Option<&Basis>,
        want_basis: bool,
        scratch: &mut Scratch,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        let pre = presolve::presolve(model)?;
        simplex::solve_presolved::<SparseLuFactor>(model, &pre, opts, warm, want_basis, scratch)
    }
}

/// Revised simplex over an explicit dense basis inverse.
pub struct DenseInverseSimplex;

impl LpBackend for DenseInverseSimplex {
    fn name(&self) -> &'static str {
        "dense-inverse"
    }

    fn solve_model(
        &self,
        model: &Model,
        opts: &SolverOptions,
        warm: Option<&Basis>,
        want_basis: bool,
        scratch: &mut Scratch,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        let pre = presolve::presolve(model)?;
        simplex::solve_presolved::<DenseInverse>(model, &pre, opts, warm, want_basis, scratch)
    }
}

/// The independent full-tableau oracle ([`crate::dense`]).
pub struct DenseReference;

impl LpBackend for DenseReference {
    fn name(&self) -> &'static str {
        "dense-reference"
    }

    fn solve_model(
        &self,
        model: &Model,
        _opts: &SolverOptions,
        _warm: Option<&Basis>,
        want_basis: bool,
        _scratch: &mut Scratch,
    ) -> Result<(Solution, Option<Basis>), LpError> {
        let sol = dense::solve(model)?;
        // The tableau oracle does not track a bounded-variable basis; an
        // empty snapshot makes downstream warm starts a clean no-op.
        Ok((sol, want_basis.then(Basis::default)))
    }
}

/// The singleton implementation behind a [`Backend`] tag.
pub fn backend_for(kind: Backend) -> &'static dyn LpBackend {
    match kind {
        Backend::Sparse => &SparseSimplex,
        Backend::DenseInverse => &DenseInverseSimplex,
        Backend::Reference => &DenseReference,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_distinct() {
        let names = [
            backend_for(Backend::Sparse).name(),
            backend_for(Backend::DenseInverse).name(),
            backend_for(Backend::Reference).name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn reference_backend_selected_via_options() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(2.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let opts = SolverOptions {
            backend: Backend::Reference,
            ..Default::default()
        };
        let s = m.solve_with(&opts).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
    }
}
