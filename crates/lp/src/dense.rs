//! Slow, simple, *independent* dense-tableau simplex used as a testing
//! oracle for the revised solver.
//!
//! Strategy: shift every variable by its (finite) lower bound so `z >= 0`,
//! turn finite upper bounds into explicit `z_j <= u_j - l_j` rows, normalize
//! right-hand sides to be nonnegative, add slacks/artificials, and run the
//! classic two-phase full-tableau simplex with Bland's rule throughout
//! (guaranteed terminating, no numerical shortcuts). Intended for problems
//! with at most a few hundred rows/columns — tests only.

use crate::model::{Cmp, LpError, Model, Solution, Status};
use crate::nonzero;

const TOL: f64 = 1e-9;

/// Solves `model` with the reference tableau simplex.
pub fn solve(model: &Model) -> Result<Solution, LpError> {
    let n = model.num_vars();

    // Shifted problem: z = x - lb.
    let lbs: Vec<f64> = model.cols.iter().map(|c| c.lb).collect();

    // Row list: (coefs over z, cmp, rhs).
    #[derive(Clone)]
    struct DRow {
        coef: Vec<f64>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<DRow> = Vec::new();
    let mut dense_rows = vec![vec![0.0; n]; model.num_rows()];
    for &(r, c, a) in &model.triplets {
        dense_rows[r as usize][c as usize] += a;
    }
    for (i, row) in model.rows.iter().enumerate() {
        let shift: f64 = dense_rows[i].iter().zip(&lbs).map(|(a, l)| a * l).sum();
        rows.push(DRow {
            coef: dense_rows[i].clone(),
            cmp: row.cmp,
            rhs: row.rhs - shift,
        });
    }
    // Upper-bound rows.
    for (j, col) in model.cols.iter().enumerate() {
        if col.ub.is_finite() {
            let mut coef = vec![0.0; n];
            coef[j] = 1.0;
            rows.push(DRow {
                coef,
                cmp: Cmp::Le,
                rhs: col.ub - col.lb,
            });
        }
    }
    // Normalize rhs >= 0.
    for r in rows.iter_mut() {
        if r.rhs < 0.0 {
            for c in r.coef.iter_mut() {
                *c = -*c;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: structurals | slacks/surpluses | artificials.
    let mut ncols = n;
    let mut slack_col = vec![None; m];
    for (i, r) in rows.iter().enumerate() {
        if matches!(r.cmp, Cmp::Le | Cmp::Ge) {
            slack_col[i] = Some(ncols);
            ncols += 1;
        }
    }
    let mut art_col = vec![None; m];
    for (i, r) in rows.iter().enumerate() {
        let needs_art = match r.cmp {
            Cmp::Le => false, // slack is a valid basic var (rhs >= 0)
            Cmp::Ge | Cmp::Eq => true,
        };
        if needs_art {
            art_col[i] = Some(ncols);
            ncols += 1;
        }
    }
    let first_art = art_col.iter().flatten().copied().min().unwrap_or(ncols);

    // Tableau: m rows x (ncols + 1), last column rhs.
    let w = ncols + 1;
    let mut t = vec![0.0; m * w];
    let mut basis = vec![usize::MAX; m];
    for (i, r) in rows.iter().enumerate() {
        for (j, &a) in r.coef.iter().enumerate() {
            t[i * w + j] = a;
        }
        if let Some(s) = slack_col[i] {
            t[i * w + s] = if r.cmp == Cmp::Le { 1.0 } else { -1.0 };
            if r.cmp == Cmp::Le {
                basis[i] = s;
            }
        }
        if let Some(a) = art_col[i] {
            t[i * w + a] = 1.0;
            basis[i] = a;
        }
        t[i * w + ncols] = r.rhs;
    }
    debug_assert!(basis.iter().all(|&b| b != usize::MAX));

    // Objective row, kept separately: length ncols + 1.
    let mut obj = vec![0.0; w];

    let pivot =
        |t: &mut Vec<f64>, obj: &mut Vec<f64>, basis: &mut Vec<usize>, pr: usize, pc: usize| {
            let piv = t[pr * w + pc];
            for j in 0..w {
                t[pr * w + j] /= piv;
            }
            for i in 0..m {
                if i != pr {
                    let f = t[i * w + pc];
                    if nonzero(f) {
                        for j in 0..w {
                            t[i * w + j] -= f * t[pr * w + j];
                        }
                    }
                }
            }
            let f = obj[pc];
            if nonzero(f) {
                for j in 0..w {
                    obj[j] -= f * t[pr * w + j];
                }
            }
            basis[pr] = pc;
        };

    // Runs Bland's-rule simplex on the current objective row.
    // `allowed` filters candidate entering columns.
    let run = |t: &mut Vec<f64>,
               obj: &mut Vec<f64>,
               basis: &mut Vec<usize>,
               max_col: usize|
     -> Result<(), LpError> {
        for _ in 0..200_000 {
            // Bland: first column with negative reduced cost.
            let mut enter = None;
            for (j, &oj) in obj.iter().enumerate().take(max_col) {
                if oj < -TOL {
                    enter = Some(j);
                    break;
                }
            }
            let Some(pc) = enter else { return Ok(()) };
            // Ratio test, Bland tie-break on smallest basis index.
            let mut best: Option<(f64, usize)> = None;
            for i in 0..m {
                let a = t[i * w + pc];
                if a > TOL {
                    let ratio = t[i * w + ncols] / a;
                    match best {
                        None => best = Some((ratio, i)),
                        Some((br, bi)) => {
                            if ratio < br - TOL || (ratio < br + TOL && basis[i] < basis[bi]) {
                                best = Some((ratio.min(br), i));
                            }
                        }
                    }
                }
            }
            let Some((_, pr)) = best else {
                return Err(LpError::Unbounded);
            };
            pivot(t, obj, basis, pr, pc);
        }
        Err(LpError::IterationLimit)
    };

    // ---- Phase 1 ----
    if first_art < ncols {
        // w-objective: minimize sum of artificials; expressed over nonbasics
        // by subtracting artificial rows.
        for i in 0..m {
            if art_col[i].is_some() {
                for j in 0..w {
                    obj[j] -= t[i * w + j];
                }
            }
        }
        // Artificial columns have cost 1.
        for a in art_col.iter().flatten() {
            obj[*a] += 1.0;
        }
        run(&mut t, &mut obj, &mut basis, ncols)?;
        let w_opt = -obj[ncols];
        if w_opt > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive leftover degenerate basic artificials out of the basis:
        // rank-deficient (redundant) rows end phase 1 with an artificial
        // basic at value 0, and a later phase-2 pivot touching such a row
        // would silently push the artificial positive — returning an
        // infeasible point. Pivot each one onto any nonzero non-artificial
        // column of its row (a degenerate pivot: rhs is 0, feasibility is
        // unchanged); a row with no such column is entirely redundant and
        // inert under further pivots.
        for i in 0..m {
            if basis[i] >= first_art {
                if let Some(pc) = (0..first_art).find(|&j| t[i * w + j].abs() > 1e-7) {
                    pivot(&mut t, &mut obj, &mut basis, i, pc);
                }
            }
        }
    }

    // ---- Phase 2 ----
    obj.fill(0.0);
    for (j, col) in model.cols.iter().enumerate() {
        obj[j] = col.cost;
    }
    // Express over nonbasics.
    for i in 0..m {
        let b = basis[i];
        let f = obj[b];
        if nonzero(f) {
            for j in 0..w {
                obj[j] -= f * t[i * w + j];
            }
        }
    }
    // Artificials may not re-enter: restrict entering to pre-artificial cols.
    run(&mut t, &mut obj, &mut basis, first_art)?;

    // Extract.
    let mut z = vec![0.0; ncols];
    for i in 0..m {
        z[basis[i]] = t[i * w + ncols];
    }
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = z[j] + lbs[j];
    }
    let objective = model.objective_of(&values);
    Ok(Solution {
        objective,
        bound: objective,
        values,
        duals: vec![0.0; model.num_rows()],
        iterations: 0,
        phase1_iterations: 0,
        status: Status::Optimal,
        stats: crate::basis::SolveStats::default(),
    })
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use crate::{LpError, Model};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn reference_matches_known_optimum() {
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0)], 4.0);
        m.le(&[(y, 2.0)], 12.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve_dense_reference().unwrap();
        assert_close(s.objective, -36.0);
    }

    #[test]
    fn reference_handles_bounds() {
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.5, 2.0, "x");
        let s = m.solve_dense_reference().unwrap();
        assert_close(s.value(x), 2.0);
        let mut m = Model::new();
        let x = m.add_var(1.0, 0.5, 2.0, "x");
        let s = m.solve_dense_reference().unwrap();
        assert_close(s.value(x), 0.5);
    }

    #[test]
    fn reference_infeasible() {
        let mut m = Model::new();
        let x = m.add_unit(1.0, "x");
        m.ge(&[(x, 1.0)], 2.0);
        assert_eq!(m.solve_dense_reference().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn reference_unbounded() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        m.ge(&[(x, 1.0)], 1.0);
        assert_eq!(m.solve_dense_reference().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn reference_equalities() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(2.0, "y");
        m.eq(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve_dense_reference().unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.value(x), 3.0);
    }
}
