//! Presolve: fixed-variable elimination, empty-row consistency, and
//! singleton-row bound tightening.
//!
//! The coflow LP generators fix many variables (e.g. completion fractions
//! `x_{jℓ} = 0` for intervals before a flow's release time, constraint (9)/
//! (22) of the paper, when expressed as fixed variables), and they emit many
//! rows that constrain a *single* variable (precedence rows `c_f <= C_i`
//! after one side is fixed, pruned capacity rows with one surviving term,
//! release lower bounds). Eliminating both before the simplex shrinks the
//! working basis substantially:
//!
//! * a variable with `lb == ub` is **fixed**: its columns move to the
//!   right-hand side and its cost to a constant offset;
//! * a row whose support has exactly one free variable is a **bound in
//!   disguise** (`a·x {cmp} b'` after substituting fixed variables): the
//!   bound is tightened and the row dropped, never entering the basis;
//! * both rules feed each other (a singleton equality fixes its variable,
//!   which may create new singletons), so they run to a fixpoint over a
//!   work queue.
//!
//! The tightened working bounds are reported in [`Presolved::lb`]/
//! [`Presolved::ub`]; the simplex operates on those, not the model's
//! original bounds. Duals of dropped rows are reported as zero (the
//! [`crate::Solution`] documents duals as diagnostics only).

use crate::model::{Cmp, LpError, Model};

/// A dropped singleton row, recorded for **dual postsolve**: if the bound
/// it implied is active at the optimum, the row's dual is the variable's
/// (otherwise unattributed) reduced cost divided by the row coefficient —
/// without this, binding singleton rows would report dual 0 and consumers
/// that price against the duals (delayed column generation) would never
/// see the constraint bind.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SingletonBound {
    /// Original row index.
    pub row: u32,
    /// The row's single free variable (original index).
    pub var: u32,
    /// The row coefficient on that variable.
    pub coef: f64,
    /// The row implied a lower bound on the variable.
    pub lower: bool,
    /// The row implied an upper bound on the variable.
    pub upper: bool,
    /// The implied bound value (`rhs' / coef`).
    pub value: f64,
}

/// Outcome of presolve: a mapping onto a reduced variable set plus adjusted
/// right-hand sides and tightened bounds.
#[derive(Clone, Debug)]
pub struct Presolved {
    /// original var index -> reduced index (None if the var was fixed).
    pub var_map: Vec<Option<u32>>,
    /// reduced index -> original var index.
    pub kept_vars: Vec<u32>,
    /// Per original variable: its fixed value if fixed, else 0.0 (unused).
    pub fixed_values: Vec<f64>,
    /// Per original row: rhs minus contributions of fixed variables.
    pub rhs_adjust: Vec<f64>,
    /// Rows that still constrain two or more free variables.
    pub keep_row: Vec<bool>,
    /// Objective contribution of the fixed variables.
    pub obj_offset: f64,
    /// Tightened working lower bounds, per original variable.
    pub lb: Vec<f64>,
    /// Tightened working upper bounds, per original variable.
    pub ub: Vec<f64>,
    /// Number of singleton rows converted into bound updates (diagnostics).
    pub singleton_rows: usize,
    /// Number of multi-variable rows dropped as redundant — their extreme
    /// activity over the tightened variable boxes cannot violate the bound
    /// (diagnostics).
    pub redundant_rows: usize,
    /// Dropped singleton rows, in drop order, for dual postsolve.
    pub(crate) singleton_bounds: Vec<SingletonBound>,
}

/// Tolerance for declaring an empty row inconsistent or bounds crossed.
const ROW_TOL: f64 = 1e-7;

/// Runs presolve; fails fast with [`LpError::Infeasible`] when a row reduces
/// to an unsatisfiable constant relation or crosses a variable's bounds.
pub fn presolve(m: &Model) -> Result<Presolved, LpError> {
    let n = m.num_vars();
    let nr = m.num_rows();

    let mut lb: Vec<f64> = m.cols.iter().map(|c| c.lb).collect();
    let mut ub: Vec<f64> = m.cols.iter().map(|c| c.ub).collect();
    let mut fixed = vec![false; n];
    let mut fixed_values = vec![0.0; n];
    let mut obj_offset = 0.0;

    // Row supports and the transposed adjacency (var -> rows).
    let mut row_terms: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nr];
    let mut var_rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for &(r, c, a) in &m.triplets {
        row_terms[r as usize].push((c, a));
        var_rows[c as usize].push((r, a));
    }

    // Initially fixed variables (builder guarantees lb <= ub).
    for j in 0..n {
        if ub[j] - lb[j] <= 0.0 {
            fixed[j] = true;
            fixed_values[j] = lb[j];
            obj_offset += m.cols[j].cost * lb[j];
        }
    }

    let mut rhs_adjust: Vec<f64> = m.rows.iter().map(|r| r.rhs).collect();
    let mut free_count = vec![0usize; nr];
    for (r, terms) in row_terms.iter().enumerate() {
        for &(c, a) in terms {
            if fixed[c as usize] {
                rhs_adjust[r] -= a * fixed_values[c as usize];
            } else {
                free_count[r] += 1;
            }
        }
    }

    let mut live = vec![true; nr];
    let mut singleton_rows = 0usize;
    let mut singleton_bounds: Vec<SingletonBound> = Vec::new();

    // Work queue over rows; every row is examined at least once, and again
    // whenever one of its variables becomes fixed.
    let mut queue: std::collections::VecDeque<u32> = (0..nr as u32).collect();
    let mut queued = vec![true; nr];

    // Fixes variable j at v, propagating into its rows. Returns rows that
    // need re-examination (pushed by the caller's loop via `queue`).
    macro_rules! fix_var {
        ($j:expr, $v:expr) => {{
            let j = $j;
            let v: f64 = $v;
            fixed[j] = true;
            fixed_values[j] = v;
            lb[j] = v;
            ub[j] = v;
            obj_offset += m.cols[j].cost * v;
            for &(r, a) in &var_rows[j] {
                let r = r as usize;
                if live[r] {
                    rhs_adjust[r] -= a * v;
                    free_count[r] -= 1;
                    if !queued[r] {
                        queued[r] = true;
                        queue.push_back(r as u32);
                    }
                }
            }
        }};
    }

    while let Some(r) = queue.pop_front() {
        let r = r as usize;
        queued[r] = false;
        if !live[r] {
            continue;
        }
        match free_count[r] {
            0 => {
                // Constant row: `0 {cmp} rhs'` must hold.
                let rv = rhs_adjust[r];
                let tol = ROW_TOL * (1.0 + m.rows[r].rhs.abs());
                let ok = match m.rows[r].cmp {
                    Cmp::Le => rv >= -tol,
                    Cmp::Ge => rv <= tol,
                    Cmp::Eq => rv.abs() <= tol,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                live[r] = false;
            }
            1 => {
                // Singleton row: a bound on its one free variable.
                let &(c, a) = row_terms[r]
                    .iter()
                    .find(|&&(c, _)| !fixed[c as usize])
                    .ok_or_else(|| {
                        LpError::Numerical("singleton row lost its free variable".into())
                    })?;
                let j = c as usize;
                let bound = rhs_adjust[r] / a;
                let (mut new_lb, mut new_ub) = (f64::NEG_INFINITY, f64::INFINITY);
                match (m.rows[r].cmp, a > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => new_ub = bound,
                    (Cmp::Ge, true) | (Cmp::Le, false) => new_lb = bound,
                    (Cmp::Eq, _) => {
                        new_lb = bound;
                        new_ub = bound;
                    }
                }
                let tol = ROW_TOL * (1.0 + bound.abs());
                if new_lb > ub[j] + tol || new_ub < lb[j] - tol {
                    return Err(LpError::Infeasible);
                }
                // lint: allow(float_cmp) — infinity is an exact overflow sentinel here
                if new_lb == f64::INFINITY || new_ub == f64::NEG_INFINITY {
                    // Overflowed division: unsatisfiable direction.
                    return Err(LpError::Infeasible);
                }
                if new_lb.is_finite() && new_lb > lb[j] {
                    lb[j] = new_lb.min(ub[j]);
                }
                if new_ub.is_finite() && new_ub < ub[j] {
                    ub[j] = new_ub.max(lb[j]);
                }
                singleton_bounds.push(SingletonBound {
                    row: r as u32,
                    var: c,
                    coef: a,
                    lower: new_lb.is_finite(),
                    upper: new_ub.is_finite(),
                    value: bound,
                });
                live[r] = false;
                singleton_rows += 1;
                if ub[j] - lb[j] <= 0.0 {
                    fix_var!(j, lb[j]);
                }
            }
            _ => {}
        }
    }

    // Redundant-row elimination: an inequality whose extreme activity over
    // the (tightened) free-variable boxes cannot violate its bound never
    // binds — its dual is 0 and its slack would sit basic forever — so it
    // is dropped before it inflates the working basis. This is the
    // presolve-level form of the redundant-capacity-row pruning the eager
    // LP builders do at build time, and it is what keeps delayed-column-
    // generation masters small: their capacity rows are created for every
    // (edge, interval) but only the bindable ones survive. One pass after
    // the fixpoint suffices (bounds only tighten there, and tightening
    // can only make more rows redundant, never fewer — rows examined here
    // use the final bounds).
    let mut redundant_rows = 0usize;
    for r in 0..nr {
        if !live[r] || free_count[r] < 2 {
            continue;
        }
        let (mut lo, mut hi) = (0.0_f64, 0.0_f64);
        for &(c, a) in &row_terms[r] {
            let j = c as usize;
            if fixed[j] {
                continue;
            }
            // Coefficients are nonzero by the builder's contract, so
            // `a * ±inf` cannot produce NaN.
            let (alo, ahi) = if a > 0.0 {
                (a * lb[j], a * ub[j])
            } else {
                (a * ub[j], a * lb[j])
            };
            lo += alo;
            hi += ahi;
        }
        let tol = ROW_TOL * (1.0 + rhs_adjust[r].abs());
        let drop = match m.rows[r].cmp {
            Cmp::Le => hi <= rhs_adjust[r] + tol,
            Cmp::Ge => lo >= rhs_adjust[r] - tol,
            Cmp::Eq => false,
        };
        if drop {
            live[r] = false;
            redundant_rows += 1;
        }
    }

    // Final variable mapping.
    let mut var_map = vec![None; n];
    let mut kept_vars = Vec::with_capacity(n);
    for j in 0..n {
        if !fixed[j] {
            var_map[j] = Some(kept_vars.len() as u32);
            kept_vars.push(j as u32);
        }
    }

    Ok(Presolved {
        var_map,
        kept_vars,
        fixed_values,
        rhs_adjust,
        keep_row: live,
        obj_offset,
        lb,
        ub,
        singleton_rows,
        redundant_rows,
        singleton_bounds,
    })
}

/// **Dual postsolve** for dropped singleton rows: rewrites `duals` in
/// place so a singleton row whose implied bound is *active* at the optimum
/// reports the bound's multiplier (the variable's reduced cost divided by
/// the row coefficient) instead of 0. Rows whose bound is inactive keep a
/// 0 dual (complementary slackness). When several dropped rows imply the
/// same active bound, the first one recorded receives the full multiplier
/// — a valid KKT decomposition.
///
/// This is what makes the reported duals usable for *pricing*: delayed
/// column generation must see a capacity row bind even when only one
/// current column crosses it (the singleton case presolve rewrites away).
pub(crate) fn postsolve_singleton_duals(m: &Model, pre: &Presolved, tol: f64, duals: &mut [f64]) {
    if pre.singleton_bounds.is_empty() {
        return;
    }
    // Unattributed reduced cost per original variable under the kept-row
    // duals: `c_j − Σ_{kept r} y_r a_rj`.
    let mut rc: Vec<f64> = m.cols.iter().map(|c| c.cost).collect();
    for &(r, c, a) in &m.triplets {
        if pre.keep_row[r as usize] {
            rc[c as usize] -= duals[r as usize] * a;
        }
    }
    let tol = tol.max(1e-9);
    for s in &pre.singleton_bounds {
        let j = s.var as usize;
        let d = rc[j];
        let btol = tol * 10.0 * (1.0 + s.value.abs());
        // `d > 0` means the lower bound binds (min problem), `d < 0` the
        // upper; the row is eligible when it implied that side at exactly
        // the final working bound.
        let eligible = if d > tol {
            s.lower && (s.value - pre.lb[j]).abs() <= btol
        } else if d < -tol {
            s.upper && (s.value - pre.ub[j]).abs() <= btol
        } else {
            false
        };
        if eligible {
            duals[s.row as usize] = d / s.coef;
            rc[j] = 0.0;
        }
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn fixed_vars_eliminated_and_offset_counted() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 3.0, 3.0, "fixed"); // fixed at 3, cost 2
        let y = m.add_nonneg(1.0, "y");
        m.eq(&[(x, 1.0), (y, 1.0)], 5.0);
        let p = presolve(&m).unwrap();
        // The row becomes a singleton on y and fixes it at 2.
        assert_eq!(p.var_map[x.index()], None);
        assert_eq!(p.fixed_values[x.index()], 3.0);
        assert_eq!(p.fixed_values[y.index()], 2.0);
        assert_eq!(p.obj_offset, 8.0);
        assert!(!p.keep_row[0]);
        // End-to-end: y = 2, objective 6 + 2 = 8.
        let sol = m.solve().unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-7);
        assert!((sol.value(x) - 3.0).abs() < 1e-12);
        assert!((sol.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn all_fixed_consistent_row_dropped() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.0, 2.0, "x");
        m.le(&[(x, 1.0)], 2.0);
        let p = presolve(&m).unwrap();
        assert!(!p.keep_row[0]);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_fixed_inconsistent_row_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 2.0, 2.0, "x");
        m.le(&[(x, 1.0)], 1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn truly_empty_row_checked() {
        let mut m = Model::new();
        let _ = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Ge, 1.0, &[]); // 0 >= 1: impossible
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn empty_eq_zero_ok() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Eq, 0.0, &[]);
        m.ge(&[(x, 1.0)], 1.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn singleton_le_tightens_upper_bound() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x"); // min -x
        m.le(&[(x, 2.0)], 8.0); // x <= 4, as a row
        let p = presolve(&m).unwrap();
        assert_eq!(p.singleton_rows, 1);
        assert!(!p.keep_row[0]);
        assert_eq!(p.ub[x.index()], 4.0);
        // No rows survive: the solve uses the tightened bound.
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-9);
        assert!((sol.objective + 4.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_ge_tightens_lower_bound() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x"); // min x
        m.ge(&[(x, 1.0)], 3.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.lb[x.index()], 3.0);
        assert!(!p.keep_row[0]);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_negative_coef_flips_sense() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.le(&[(x, -1.0)], -3.0); // -x <= -3  <=>  x >= 3
        let p = presolve(&m).unwrap();
        assert_eq!(p.lb[x.index()], 3.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn singleton_eq_fixes_and_cascades() {
        // x = 2 (singleton eq) makes the second row a singleton on y,
        // which fixes y = 3 via its own equality.
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(1.0, "y");
        m.eq(&[(x, 1.0)], 2.0);
        m.eq(&[(x, 1.0), (y, 1.0)], 5.0);
        let p = presolve(&m).unwrap();
        assert!(p.kept_vars.is_empty(), "both vars fixed by cascade");
        assert!(!p.keep_row[0] && !p.keep_row[1]);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-9);
        assert!((sol.value(x) - 2.0).abs() < 1e-9);
        assert!((sol.value(y) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_singleton_bounds_infeasible() {
        let mut m = Model::new();
        let x = m.add_unit(1.0, "x"); // x in [0,1]
        m.ge(&[(x, 1.0)], 2.0); // x >= 2: crosses ub
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn redundant_singleton_kept_loose() {
        let mut m = Model::new();
        let x = m.add_unit(-1.0, "x");
        m.le(&[(x, 1.0)], 5.0); // looser than ub = 1: no-op bound
        let p = presolve(&m).unwrap();
        assert_eq!(p.ub[x.index()], 1.0);
        assert!(!p.keep_row[0]);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_var_rows_survive() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(1.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 2.0);
        let p = presolve(&m).unwrap();
        assert!(p.keep_row[0]);
        assert_eq!(p.singleton_rows, 0);
    }

    /// A binding singleton row must report the bound multiplier as its
    /// dual after postsolve — and match the dual the same constraint gets
    /// when it survives presolve as a two-variable row.
    #[test]
    fn singleton_row_dual_postsolved() {
        // min -x with 2x <= 2 (singleton: x <= 1, binding). KKT:
        // -1 - 2y = 0 => y = -0.5.
        let mut m = Model::new();
        let x = m.add_var(-1.0, 0.0, 5.0, "x");
        let r = m.le(&[(x, 2.0)], 2.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-9);
        assert!((sol.dual(r) - (-0.5)).abs() < 1e-9, "dual {}", sol.dual(r));

        // The kept-row variant (second variable stops the singleton
        // rewrite) must agree on the shared row's dual.
        let mut m2 = Model::new();
        let x = m2.add_var(-1.0, 0.0, 5.0, "x");
        let y = m2.add_nonneg(1.0, "y");
        let r2 = m2.le(&[(x, 2.0), (y, 1.0)], 2.0);
        let sol2 = m2.solve().unwrap();
        assert!(
            (sol2.dual(r2) - (-0.5)).abs() < 1e-9,
            "dual {}",
            sol2.dual(r2)
        );

        // A *loose* singleton row keeps dual 0 (complementary slackness).
        let mut m3 = Model::new();
        let x = m3.add_unit(-1.0, "x");
        let r3 = m3.le(&[(x, 1.0)], 10.0);
        let sol3 = m3.solve().unwrap();
        assert_eq!(sol3.dual(r3), 0.0);
    }

    #[test]
    fn redundant_le_row_dropped() {
        // x + y <= 5 with x, y in [0,1]: max activity 2 — never binds.
        let mut m = Model::new();
        let x = m.add_unit(-1.0, "x");
        let y = m.add_unit(-2.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 5.0);
        m.le(&[(x, 1.0), (y, 1.0)], 1.5); // bindable: kept
        let p = presolve(&m).unwrap();
        assert!(!p.keep_row[0] && p.keep_row[1]);
        assert_eq!(p.redundant_rows, 1);
        let sol = m.solve().unwrap();
        assert!((sol.objective + 2.5).abs() < 1e-7, "obj {}", sol.objective);
    }

    #[test]
    fn redundant_ge_row_dropped_infinite_not() {
        let mut m = Model::new();
        let x = m.add_unit(1.0, "x");
        let y = m.add_unit(1.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], -1.0); // min activity 0 >= -1: redundant
        let p = presolve(&m).unwrap();
        assert!(!p.keep_row[0]);
        // An unbounded-above variable keeps its Le row non-redundant.
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_unit(1.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 100.0);
        let p = presolve(&m).unwrap();
        assert!(p.keep_row[0]);
        assert_eq!(p.redundant_rows, 0);
    }
}
