//! Light presolve: fixed-variable elimination and empty-row consistency.
//!
//! The coflow LP generators fix many variables (e.g. completion fractions
//! `x_{jℓ} = 0` for intervals before a flow's release time, constraint (9)/
//! (22) of the paper, when expressed as fixed variables). Eliminating them
//! before the simplex shrinks the working problem substantially.

use crate::model::{Cmp, LpError, Model};

/// Outcome of presolve: a mapping onto a reduced variable set plus adjusted
/// right-hand sides.
#[derive(Clone, Debug)]
pub struct Presolved {
    /// original var index -> reduced index (None if the var was fixed).
    pub var_map: Vec<Option<u32>>,
    /// reduced index -> original var index.
    pub kept_vars: Vec<u32>,
    /// Per original variable: its fixed value if fixed, else 0.0 (unused).
    pub fixed_values: Vec<f64>,
    /// Per original row: rhs minus contributions of fixed variables.
    pub rhs_adjust: Vec<f64>,
    /// Rows that still contain free variables.
    pub keep_row: Vec<bool>,
    /// Objective contribution of the fixed variables.
    pub obj_offset: f64,
}

/// Tolerance for declaring an empty row inconsistent.
const ROW_TOL: f64 = 1e-7;

/// Runs presolve; fails fast with [`LpError::Infeasible`] when a row reduces
/// to an unsatisfiable constant relation.
pub fn presolve(m: &Model) -> Result<Presolved, LpError> {
    let n = m.num_vars();
    let mut var_map = vec![None; n];
    let mut kept_vars = Vec::with_capacity(n);
    let mut fixed_values = vec![0.0; n];
    let mut obj_offset = 0.0;

    for (j, col) in m.cols.iter().enumerate() {
        if col.ub - col.lb <= 0.0 {
            // Fixed: lb == ub (builder guarantees lb <= ub).
            fixed_values[j] = col.lb;
            obj_offset += col.cost * col.lb;
        } else {
            var_map[j] = Some(kept_vars.len() as u32);
            kept_vars.push(j as u32);
        }
    }

    let mut rhs_adjust: Vec<f64> = m.rows.iter().map(|r| r.rhs).collect();
    let mut live = vec![false; m.num_rows()];
    for &(r, c, a) in &m.triplets {
        if var_map[c as usize].is_some() {
            live[r as usize] = true;
        } else {
            rhs_adjust[r as usize] -= a * fixed_values[c as usize];
        }
    }

    // Rows with no free variables must already hold as `0 {cmp} rhs'`.
    let mut keep_row = vec![true; m.num_rows()];
    for (i, row) in m.rows.iter().enumerate() {
        if !live[i] {
            let r = rhs_adjust[i];
            let ok = match row.cmp {
                Cmp::Le => r >= -ROW_TOL,
                Cmp::Ge => r <= ROW_TOL,
                Cmp::Eq => r.abs() <= ROW_TOL,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            keep_row[i] = false;
        }
    }

    Ok(Presolved {
        var_map,
        kept_vars,
        fixed_values,
        rhs_adjust,
        keep_row,
        obj_offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn fixed_vars_eliminated_and_offset_counted() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 3.0, 3.0, "fixed"); // fixed at 3, cost 2
        let y = m.add_nonneg(1.0, "y");
        m.eq(&[(x, 1.0), (y, 1.0)], 5.0);
        let p = presolve(&m).unwrap();
        assert_eq!(p.kept_vars, vec![y.0]);
        assert_eq!(p.var_map[x.index()], None);
        assert_eq!(p.fixed_values[x.index()], 3.0);
        assert_eq!(p.obj_offset, 6.0);
        assert_eq!(p.rhs_adjust[0], 2.0); // 5 - 3
        assert!(p.keep_row[0]);
        // End-to-end: y = 2, objective 6 + 2 = 8.
        let sol = m.solve().unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-7);
        assert!((sol.value(x) - 3.0).abs() < 1e-12);
        assert!((sol.value(y) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn all_fixed_consistent_row_dropped() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.0, 2.0, "x");
        m.le(&[(x, 1.0)], 2.0);
        let p = presolve(&m).unwrap();
        assert!(!p.keep_row[0]);
        let sol = m.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_fixed_inconsistent_row_infeasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 2.0, 2.0, "x");
        m.le(&[(x, 1.0)], 1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn truly_empty_row_checked() {
        let mut m = Model::new();
        let _ = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Ge, 1.0, &[]); // 0 >= 1: impossible
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn empty_eq_zero_ok() {
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.add_row(Cmp::Eq, 0.0, &[]);
        m.ge(&[(x, 1.0)], 1.0);
        let sol = m.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-7);
    }
}
