//! Bounded-variable revised primal simplex with an explicit dense basis
//! inverse.
//!
//! Design notes (why this shape):
//!
//! * The coflow LPs have `m` in the hundreds-to-low-thousands and `n` up to
//!   tens of thousands, with very sparse columns (a flow-interval variable
//!   touches one convexity row, one completion row, and the capacity rows of
//!   its path). A revised simplex that keeps `B⁻¹` explicitly (column-major
//!   `m×m`) gives `O(m²)` per pivot with excellent cache behavior and no
//!   factorization machinery; refactorization by Gauss–Jordan restores
//!   numerical health every [`SolverOptions::refactor_every`] pivots.
//! * Bounds `l <= x <= u` are handled natively (nonbasic-at-lower /
//!   nonbasic-at-upper, bound flips) — crucial because the LPs are dominated
//!   by `[0,1]` variables and adding bound rows would double `m`.
//! * Degeneracy is endemic to interval-indexed LPs; we use Dantzig pricing
//!   with a Harris-style ratio tie-break on `|w_r|` and fall back to Bland's
//!   rule after a run of degenerate pivots to guarantee termination.
//! * Phase 1 minimizes the sum of per-row artificials; phase 2 locks the
//!   artificials to zero by setting their bounds to `[0,0]`.

use crate::model::{Cmp, LpError, Model, Solution, SolverOptions, Status};
use crate::presolve::Presolved;

/// Variable status in the simplex dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// Sparse matrix in compressed-sparse-column form over the *working*
/// variables (reduced structurals followed by slacks). Artificial columns
/// are unit vectors and handled implicitly.
struct Csc {
    m: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    #[inline]
    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[a..b], &self.values[a..b])
    }
}

struct State {
    /// Rows of the working problem.
    m: usize,
    /// Number of explicit (structural + slack) columns.
    n_expl: usize,
    csc: Csc,
    /// Sign of the artificial column for each row (+1/-1).
    art_sign: Vec<f64>,
    /// Adjusted right-hand side of the working rows.
    b: Vec<f64>,
    /// Bounds over ALL variables (explicit + artificial).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Current point over all variables.
    x: Vec<f64>,
    vstat: Vec<VStat>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Dense basis inverse, column-major: `binv[c*m + r] = B⁻¹[r][c]`.
    binv: Vec<f64>,
    /// Pivots since the last refactorization.
    since_refactor: usize,
    /// Total pivots.
    iterations: usize,
}

impl State {
    #[inline]
    fn nvars(&self) -> usize {
        self.n_expl + self.m
    }

    /// Iterate the nonzero entries of column `j` (explicit or artificial).
    fn for_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if j < self.n_expl {
            let (rows, vals) = self.csc.col(j);
            for (r, v) in rows.iter().zip(vals) {
                f(*r as usize, *v);
            }
        } else {
            let r = j - self.n_expl;
            f(r, self.art_sign[r]);
        }
    }

    /// FTRAN: `w = B⁻¹ a_j` (dense output).
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.fill(0.0);
        let m = self.m;
        self.for_col(j, |r, v| {
            let col = &self.binv[r * m..r * m + m];
            for (wi, ci) in w.iter_mut().zip(col) {
                *wi += v * ci;
            }
        });
    }

    /// BTRAN-ish: `y = c_Bᵀ B⁻¹` using only the nonzero basic costs.
    fn duals(&self, costs: &[f64], y: &mut [f64]) {
        let m = self.m;
        let mut nz: Vec<(usize, f64)> = Vec::new();
        for (r, &bj) in self.basis.iter().enumerate() {
            let c = costs[bj];
            if c != 0.0 {
                nz.push((r, c));
            }
        }
        for (c, yc) in y.iter_mut().enumerate() {
            let col = &self.binv[c * m..c * m + m];
            let mut acc = 0.0;
            for &(r, cv) in &nz {
                acc += cv * col[r];
            }
            *yc = acc;
        }
    }

    /// Reduced cost of nonbasic `j` given duals `y`.
    fn reduced_cost(&self, j: usize, costs: &[f64], y: &[f64]) -> f64 {
        let mut d = costs[j];
        self.for_col(j, |r, v| d -= y[r] * v);
        d
    }

    /// Rebuilds `binv` from scratch (Gauss–Jordan with partial pivoting)
    /// and recomputes the basic values. Returns `Err` on a singular basis.
    fn refactorize(&mut self, tol: f64) -> Result<(), LpError> {
        let m = self.m;
        if m == 0 {
            return Ok(());
        }
        // Dense B, row-major for cache-friendly row elimination.
        let mut bmat = vec![0.0; m * m];
        for (k, &bj) in self.basis.iter().enumerate() {
            self.for_col(bj, |r, v| bmat[r * m + k] = v);
        }
        let mut inv = vec![0.0; m * m];
        for r in 0..m {
            inv[r * m + r] = 1.0;
        }
        for k in 0..m {
            // Partial pivot on column k.
            let mut piv_row = k;
            let mut piv_abs = bmat[k * m + k].abs();
            for r in k + 1..m {
                let a = bmat[r * m + k].abs();
                if a > piv_abs {
                    piv_abs = a;
                    piv_row = r;
                }
            }
            if piv_abs < 1e-12 {
                return Err(LpError::Numerical(format!(
                    "singular basis at column {k} (pivot {piv_abs:.3e})"
                )));
            }
            if piv_row != k {
                for c in 0..m {
                    bmat.swap(k * m + c, piv_row * m + c);
                    inv.swap(k * m + c, piv_row * m + c);
                }
            }
            let piv = bmat[k * m + k];
            let inv_piv = 1.0 / piv;
            for c in 0..m {
                bmat[k * m + c] *= inv_piv;
                inv[k * m + c] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    bmat[r * m + c] -= f * bmat[k * m + c];
                    inv[r * m + c] -= f * inv[k * m + c];
                }
            }
        }
        // Transpose into the column-major layout.
        for r in 0..m {
            for c in 0..m {
                self.binv[c * m + r] = inv[r * m + c];
            }
        }
        self.recompute_basic_values(tol)?;
        self.since_refactor = 0;
        Ok(())
    }

    /// Recomputes `x_B = B⁻¹ (b − N x_N)` from the nonbasic point.
    fn recompute_basic_values(&mut self, tol: f64) -> Result<(), LpError> {
        let m = self.m;
        let mut r = self.b.clone();
        for j in 0..self.nvars() {
            if self.vstat[j] == VStat::Basic {
                continue;
            }
            // Snap nonbasic to its bound.
            let xb = match self.vstat[j] {
                VStat::AtLower => self.lb[j],
                VStat::AtUpper => self.ub[j],
                VStat::Basic => unreachable!(),
            };
            self.x[j] = xb;
            if xb != 0.0 {
                self.for_col(j, |row, v| r[row] -= v * xb);
            }
        }
        let mut xb = vec![0.0; m];
        for (c, &rc) in r.iter().enumerate() {
            if rc == 0.0 {
                continue;
            }
            let col = &self.binv[c * m..c * m + m];
            for (xi, ci) in xb.iter_mut().zip(col) {
                *xi += rc * ci;
            }
        }
        // Clamp tiny bound violations introduced by arithmetic noise.
        let big = tol.max(1e-9) * 1e4;
        for (row, val) in xb.iter().enumerate() {
            let j = self.basis[row];
            let mut v = *val;
            if v < self.lb[j] {
                if self.lb[j] - v > big {
                    return Err(LpError::Numerical(format!(
                        "basic var below bound by {:.3e} after refactor",
                        self.lb[j] - v
                    )));
                }
                v = self.lb[j];
            }
            if v > self.ub[j] {
                if v - self.ub[j] > big {
                    return Err(LpError::Numerical(format!(
                        "basic var above bound by {:.3e} after refactor",
                        v - self.ub[j]
                    )));
                }
                v = self.ub[j];
            }
            self.x[j] = v;
        }
        Ok(())
    }

    /// Applies the pivot update `B⁻¹ ← E B⁻¹` for entering direction `w`
    /// and leaving row `r_leave`.
    fn update_binv(&mut self, r_leave: usize, w: &[f64]) {
        let m = self.m;
        let piv = w[r_leave];
        for c in 0..m {
            let col = &mut self.binv[c * m..c * m + m];
            let t = col[r_leave] / piv;
            if t == 0.0 {
                continue;
            }
            for (ci, wi) in col.iter_mut().zip(w) {
                *ci -= wi * t;
            }
            col[r_leave] = t;
        }
        self.since_refactor += 1;
    }
}

/// Result of one phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
}

/// Runs simplex iterations until optimality for the given cost vector.
fn run_phase(
    st: &mut State,
    costs: &[f64],
    opts: &SolverOptions,
    iter_cap: usize,
) -> Result<PhaseEnd, LpError> {
    let m = st.m;
    let tol = opts.tol;
    let mut y = vec![0.0; m];
    let mut w = vec![0.0; m];
    let mut rho = vec![0.0; m];
    // Devex reference weights (reset per phase).
    let mut gamma = vec![1.0_f64; st.nvars()];
    let mut stall = 0usize;
    let mut bland = false;
    let mut local_iters = 0usize;

    loop {
        if local_iters >= iter_cap {
            return Err(LpError::IterationLimit);
        }
        local_iters += 1;

        st.duals(costs, &mut y);

        // --- Pricing: pick an entering variable (devex: maximize d²/γ). ---
        let mut enter: Option<(usize, f64, f64)> = None; // (var, reduced cost, score)
        for j in 0..st.nvars() {
            let vs = st.vstat[j];
            if vs == VStat::Basic {
                continue;
            }
            // Fixed variables (lb==ub) can never improve the objective.
            if st.ub[j] - st.lb[j] <= 0.0 {
                continue;
            }
            let d = st.reduced_cost(j, costs, &y);
            let viol = match vs {
                VStat::AtLower => -d, // want d < -tol
                VStat::AtUpper => d,  // want d > tol
                VStat::Basic => unreachable!(),
            };
            if viol > tol {
                if bland {
                    enter = Some((j, d, viol));
                    break; // Bland: first eligible index
                }
                let score = viol * viol / gamma[j];
                match enter {
                    Some((_, _, best)) if best >= score => {}
                    _ => enter = Some((j, d, score)),
                }
            }
        }
        let Some((j_in, _d_in, _)) = enter else {
            return Ok(PhaseEnd::Optimal);
        };

        // Direction: +1 when increasing from lower bound, -1 when
        // decreasing from upper bound.
        let s: f64 = if st.vstat[j_in] == VStat::AtLower {
            1.0
        } else {
            -1.0
        };

        st.ftran(j_in, &mut w);

        // --- Two-pass Harris ratio test (bounded variables). ---
        // Basic r changes by -s*t*w_r. Pass 1 computes the relaxed step
        // bound t_max (each row's limit padded by a feasibility tolerance
        // scaled by 1/|w_r|, so the eventual bound violation of any row is
        // at most `tol` in *variable space*, not `tol·|w_r|`). Pass 2 picks
        // the stabilizing pivot (largest |w_r|) among rows whose exact
        // limit fits under t_max.
        let t_flip = st.ub[j_in] - st.lb[j_in]; // may be +inf
        let zero_tol = 1e-11;
        let mut t_max = t_flip;
        for (r, &wr) in w.iter().enumerate() {
            let swr = s * wr;
            if swr.abs() <= zero_tol {
                continue;
            }
            let bj = st.basis[r];
            let slack = if swr > 0.0 {
                st.x[bj] - st.lb[bj]
            } else {
                let u = st.ub[bj];
                if u.is_infinite() {
                    continue;
                }
                u - st.x[bj]
            };
            let lim = (slack.max(0.0) + tol) / swr.abs();
            if lim < t_max {
                t_max = lim;
            }
        }

        if t_max.is_infinite() {
            return Ok(PhaseEnd::Unbounded);
        }

        let mut leave: Option<(usize, f64, f64)> = None; // (row, |w|, exact limit)
        for (r, &wr) in w.iter().enumerate() {
            let swr = s * wr;
            if swr.abs() <= zero_tol {
                continue;
            }
            let bj = st.basis[r];
            let slack = if swr > 0.0 {
                st.x[bj] - st.lb[bj]
            } else {
                let u = st.ub[bj];
                if u.is_infinite() {
                    continue;
                }
                u - st.x[bj]
            };
            let exact = (slack.max(0.0)) / swr.abs();
            if exact <= t_max {
                let better = match leave {
                    None => true,
                    Some((cur_r, cur_w, _)) => {
                        if bland {
                            st.basis[r] < st.basis[cur_r]
                        } else {
                            wr.abs() > cur_w
                        }
                    }
                };
                if better {
                    leave = Some((r, wr.abs(), exact));
                }
            }
        }

        // Choose between a basis pivot and a bound flip.
        let step = match leave {
            Some((_, _, exact)) => exact.min(t_flip),
            None => t_flip,
        };

        // Degeneracy bookkeeping.
        if step <= tol {
            stall += 1;
            if stall > opts.bland_after {
                bland = true;
            }
        } else {
            stall = 0;
            bland = false;
        }

        let use_flip = t_flip.is_finite()
            && match leave {
                None => true,
                Some((_, _, exact)) => t_flip <= exact,
            };

        if use_flip {
            // Bound flip: j_in moves to its opposite bound, basis unchanged.
            let t = t_flip;
            for (r, &wr) in w.iter().enumerate() {
                if wr != 0.0 {
                    let bj = st.basis[r];
                    st.x[bj] -= s * t * wr;
                }
            }
            st.vstat[j_in] = if s > 0.0 {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
            st.x[j_in] = if s > 0.0 { st.ub[j_in] } else { st.lb[j_in] };
            st.iterations += 1;
            continue;
        }

        let (r_lv, _, exact) = leave.expect("bounded ratio test must select a row");
        let j_out = st.basis[r_lv];
        let t = exact.max(0.0);

        // --- Devex weight update (with the pre-pivot B⁻¹). ---
        let alpha_q = w[r_lv];
        if alpha_q.abs() > 1e-12 {
            // ρ = row r_lv of B⁻¹ (strided gather from column-major).
            for (c, rc) in rho.iter_mut().enumerate() {
                *rc = st.binv[c * m + r_lv];
            }
            let gq = gamma[j_in].max(1.0);
            let ratio2 = gq / (alpha_q * alpha_q);
            let mut overflow = false;
            for j in 0..st.nvars() {
                if st.vstat[j] == VStat::Basic || j == j_in {
                    continue;
                }
                let mut aj = 0.0;
                st.for_col(j, |r, v| aj += rho[r] * v);
                if aj != 0.0 {
                    let cand = aj * aj * ratio2;
                    if cand > gamma[j] {
                        gamma[j] = cand;
                        if cand > 1e12 {
                            overflow = true;
                        }
                    }
                }
            }
            gamma[j_out] = ratio2.max(1.0);
            if overflow {
                gamma.fill(1.0);
            }
        }

        // Move the point.
        for (r, &wr) in w.iter().enumerate() {
            if wr != 0.0 {
                let bj = st.basis[r];
                st.x[bj] -= s * t * wr;
            }
        }
        st.x[j_in] = match st.vstat[j_in] {
            VStat::AtLower => st.lb[j_in] + t,
            VStat::AtUpper => st.ub[j_in] - t,
            VStat::Basic => unreachable!(),
        };
        // Snap the leaving variable to the bound it hit.
        let swr = s * w[r_lv];
        st.vstat[j_out] = if swr > 0.0 {
            VStat::AtLower
        } else {
            VStat::AtUpper
        };
        st.x[j_out] = if swr > 0.0 {
            st.lb[j_out]
        } else {
            st.ub[j_out]
        };

        st.vstat[j_in] = VStat::Basic;
        st.basis[r_lv] = j_in;
        st.update_binv(r_lv, &w);
        st.iterations += 1;

        if st.since_refactor >= opts.refactor_every {
            st.refactorize(tol)?;
        }
    }
}

/// Entry point used by [`Model::solve_with`]: solve the presolved LP.
pub fn solve_presolved(
    model: &Model,
    pre: &Presolved,
    opts: &SolverOptions,
) -> Result<Solution, LpError> {
    // ---- Assemble the working problem. ----
    let kept_rows: Vec<u32> = (0..model.num_rows() as u32)
        .filter(|&r| pre.keep_row[r as usize])
        .collect();
    let row_map: Vec<Option<u32>> = {
        let mut map = vec![None; model.num_rows()];
        for (new, &old) in kept_rows.iter().enumerate() {
            map[old as usize] = Some(new as u32);
        }
        map
    };
    let m = kept_rows.len();
    let n_struct = pre.kept_vars.len();

    // Trivial case: no rows — every variable sits at its cheapest bound.
    if m == 0 {
        let mut values = pre.fixed_values.clone();
        let mut objective = pre.obj_offset;
        for (rj, &oj) in pre.kept_vars.iter().enumerate() {
            let _ = rj;
            let col = &model.cols[oj as usize];
            let v = if col.cost >= 0.0 {
                col.lb
            } else if col.ub.is_finite() {
                col.ub
            } else {
                return Err(LpError::Unbounded);
            };
            values[oj as usize] = v;
            objective += col.cost * v;
        }
        return Ok(Solution {
            objective,
            values,
            duals: vec![0.0; model.num_rows()],
            iterations: 0,
            phase1_iterations: 0,
            status: Status::Optimal,
        });
    }

    // Column-sorted triplets over kept rows/vars.
    let mut col_counts = vec![0usize; n_struct];
    for &(r, c, _) in &model.triplets {
        if row_map[r as usize].is_some() {
            if let Some(rc) = pre.var_map[c as usize] {
                col_counts[rc as usize] += 1;
            }
        }
    }
    // Slack bookkeeping: one slack for each Le/Ge row.
    let mut slack_of_row: Vec<Option<usize>> = vec![None; m];
    let mut n_slack = 0usize;
    for (new_r, &old_r) in kept_rows.iter().enumerate() {
        match model.rows[old_r as usize].cmp {
            Cmp::Le | Cmp::Ge => {
                slack_of_row[new_r] = Some(n_slack);
                n_slack += 1;
            }
            Cmp::Eq => {}
        }
    }
    let n_expl = n_struct + n_slack;

    let mut col_ptr = vec![0usize; n_expl + 1];
    for j in 0..n_struct {
        col_ptr[j + 1] = col_ptr[j] + col_counts[j];
    }
    for j in n_struct..n_expl {
        col_ptr[j + 1] = col_ptr[j] + 1;
    }
    let nnz = col_ptr[n_expl];
    let mut row_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    {
        let mut fill = col_ptr.clone();
        for &(r, c, a) in &model.triplets {
            let (Some(nr), Some(nc)) = (row_map[r as usize], pre.var_map[c as usize]) else {
                continue;
            };
            let p = fill[nc as usize];
            row_idx[p] = nr;
            values[p] = a;
            fill[nc as usize] += 1;
        }
        // Slack columns.
        for (new_r, slack) in slack_of_row.iter().enumerate() {
            if let Some(si) = slack {
                let j = n_struct + si;
                let p = fill[j];
                row_idx[p] = new_r as u32;
                values[p] = match model.rows[kept_rows[new_r] as usize].cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => unreachable!(),
                };
                fill[j] += 1;
            }
        }
    }
    // Merge duplicate (row) entries within each column (builder allows
    // repeated terms).
    let csc = merge_duplicates(Csc {
        m,
        col_ptr,
        row_idx,
        values,
    });

    // Bounds and working arrays.
    let nvars = n_expl + m;
    let mut lb = vec![0.0; nvars];
    let mut ub = vec![f64::INFINITY; nvars];
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        lb[rj] = model.cols[oj as usize].lb;
        ub[rj] = model.cols[oj as usize].ub;
    }
    // Slacks: [0, inf). Artificials: [0, inf) during phase 1.

    let b: Vec<f64> = kept_rows
        .iter()
        .map(|&r| pre.rhs_adjust[r as usize])
        .collect();

    let mut st = State {
        m,
        n_expl,
        csc,
        art_sign: vec![1.0; m],
        b,
        lb,
        ub,
        x: vec![0.0; nvars],
        vstat: vec![VStat::AtLower; nvars],
        basis: (0..m).map(|r| n_expl + r).collect(),
        binv: vec![0.0; m * m],
        since_refactor: 0,
        iterations: 0,
    };
    for r in 0..m {
        st.binv[r * m + r] = 1.0;
    }

    // Initial nonbasic point: everything at lower bound.
    for j in 0..n_expl {
        st.x[j] = st.lb[j];
    }
    // Residual determines the crash basis: prefer the row's own slack when
    // it can sit at a feasible (nonnegative) value, otherwise fall back to
    // an artificial. This leaves artificials only on equality rows and on
    // inequality rows violated at the all-lower-bound point, which slashes
    // phase-1 work.
    let mut resid = st.b.clone();
    for j in 0..n_expl {
        let xj = st.x[j];
        if xj != 0.0 {
            st.for_col(j, |r, v| resid[r] -= v * xj);
        }
    }
    for (r, &res) in resid.iter().enumerate() {
        let aj = n_expl + r;
        let slack_ok = match slack_of_row[r] {
            Some(si) => {
                let sj = n_struct + si;
                // Slack coefficient: +1 for Le, -1 for Ge.
                let coef = match model.rows[kept_rows[r] as usize].cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    Cmp::Eq => unreachable!(),
                };
                let val = res / coef;
                if val >= 0.0 {
                    st.basis[r] = sj;
                    st.vstat[sj] = VStat::Basic;
                    st.x[sj] = val;
                    // Column r of B is coef·e_r.
                    st.binv[r * m + r] = coef;
                    true
                } else {
                    false
                }
            }
            None => false,
        };
        if slack_ok {
            // Artificial stays nonbasic at 0 and is never allowed to move.
            st.art_sign[r] = 1.0;
            st.ub[aj] = 0.0;
            st.vstat[aj] = VStat::AtLower;
            st.x[aj] = 0.0;
        } else if res >= 0.0 {
            st.art_sign[r] = 1.0;
            st.x[aj] = res;
            st.vstat[aj] = VStat::Basic;
            st.binv[r * m + r] = st.art_sign[r];
        } else {
            st.art_sign[r] = -1.0;
            st.x[aj] = -res;
            st.vstat[aj] = VStat::Basic;
            st.binv[r * m + r] = st.art_sign[r];
        }
    }

    // ---- Phase 1: minimize sum of artificials. ----
    let mut costs1 = vec![0.0; nvars];
    for c in costs1.iter_mut().skip(n_expl) {
        *c = 1.0;
    }
    let phase1_needed = st.x[n_expl..].iter().any(|&v| v > opts.tol);
    if phase1_needed {
        match run_phase(&mut st, &costs1, opts, opts.max_iters)? {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded => {
                return Err(LpError::Numerical("phase 1 reported unbounded".into()))
            }
        }
        let infeas: f64 = st.x[n_expl..].iter().sum();
        let scale = 1.0 + st.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
        if infeas > opts.tol * scale * 10.0 {
            return Err(LpError::Infeasible);
        }
    }
    let phase1_iterations = st.iterations;
    // Lock artificials at zero for phase 2.
    for j in n_expl..nvars {
        st.ub[j] = 0.0;
        if st.vstat[j] != VStat::Basic {
            st.vstat[j] = VStat::AtLower;
            st.x[j] = 0.0;
        } else {
            st.x[j] = st.x[j].min(opts.tol).max(0.0);
        }
    }

    // ---- Phase 2: the real objective. ----
    let mut costs2 = vec![0.0; nvars];
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        costs2[rj] = model.cols[oj as usize].cost;
    }
    if opts.perturb > 0.0 {
        // Deterministic anti-degeneracy perturbation on structural costs.
        let scale = costs2[..n_struct]
            .iter()
            .map(|c| c.abs())
            .fold(1.0_f64, f64::max);
        for (j, c) in costs2.iter_mut().enumerate().take(n_struct) {
            *c += opts.perturb * scale * splitmix_unit(j as u64 + 1);
        }
    }
    let remaining = opts.max_iters.saturating_sub(st.iterations).max(1);
    match run_phase(&mut st, &costs2, opts, remaining)? {
        PhaseEnd::Optimal => {}
        PhaseEnd::Unbounded => return Err(LpError::Unbounded),
    }

    // One final refactorization pass for clean values.
    st.refactorize(opts.tol)?;
    // Re-check optimality after the refresh: if the cleaned point lost
    // optimality (rare), resume pivoting once.
    match run_phase(&mut st, &costs2, opts, remaining)? {
        PhaseEnd::Optimal => {}
        PhaseEnd::Unbounded => return Err(LpError::Unbounded),
    }

    // ---- Scatter back to the original variable space. ----
    let mut values = pre.fixed_values.clone();
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        values[oj as usize] = st.x[rj];
    }
    let mut y = vec![0.0; m];
    st.duals(&costs2, &mut y);
    let mut duals = vec![0.0; model.num_rows()];
    for (new_r, &old_r) in kept_rows.iter().enumerate() {
        duals[old_r as usize] = y[new_r];
    }
    let objective = model.objective_of(&values);
    Ok(Solution {
        objective,
        values,
        duals,
        iterations: st.iterations,
        phase1_iterations,
        status: Status::Optimal,
    })
}

/// Deterministic hash → uniform float in `(0, 1]` (splitmix64 finalizer).
fn splitmix_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64 + f64::EPSILON
}

/// Collapses duplicate row entries inside each CSC column.
fn merge_duplicates(c: Csc) -> Csc {
    let n = c.col_ptr.len() - 1;
    let mut col_ptr = vec![0usize; n + 1];
    let mut row_idx = Vec::with_capacity(c.row_idx.len());
    let mut values = Vec::with_capacity(c.values.len());
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for j in 0..n {
        let (rows, vals) = (
            &c.row_idx[c.col_ptr[j]..c.col_ptr[j + 1]],
            &c.values[c.col_ptr[j]..c.col_ptr[j + 1]],
        );
        scratch.clear();
        scratch.extend(rows.iter().copied().zip(vals.iter().copied()));
        scratch.sort_unstable_by_key(|&(r, _)| r);
        let mut i = 0;
        while i < scratch.len() {
            let (r, mut v) = scratch[i];
            let mut k = i + 1;
            while k < scratch.len() && scratch[k].0 == r {
                v += scratch[k].1;
                k += 1;
            }
            if v != 0.0 {
                row_idx.push(r);
                values.push(v);
            }
            i = k;
        }
        col_ptr[j + 1] = row_idx.len();
    }
    Csc {
        m: c.m,
        col_ptr,
        row_idx,
        values,
    }
}

#[cfg(test)]
mod tests {
    use crate::{LpError, Model, SolverOptions};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_2var() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), 36.
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0)], 4.0);
        m.le(&[(y, 2.0)], 12.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0 => (1,1), obj 2.
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(1.0, "y");
        m.eq(&[(x, 1.0), (y, 1.0)], 2.0);
        m.eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn ge_rows_need_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  => (4, 0)? check: obj 2*4=8
        // vs x=1,y=3 => 11. So (4,0), obj 8.
        let mut m = Model::new();
        let x = m.add_nonneg(2.0, "x");
        let y = m.add_nonneg(3.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.ge(&[(x, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_unit(1.0, "x");
        m.ge(&[(x, 1.0)], 2.0); // x >= 2 but x <= 1
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x"); // min -x, x unbounded above
        let y = m.add_nonneg(0.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 1.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - y with x,y in [0,1] and a loose row: optimum (1,1).
        let mut m = Model::new();
        let x = m.add_unit(-1.0, "x");
        let y = m.add_unit(-1.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 10.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -2.0);
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn upper_bounds_bind() {
        // min -3x - 2y, x <= 1.5, y <= 2, x + y <= 3 => x=1.5, y=1.5.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 1.5, "x");
        let y = m.add_var(-2.0, 0.0, 2.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 1.5);
        assert_close(s.objective, -7.5);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x >= 2, y >= 3, x + y >= 6 => obj 6.
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.0, f64::INFINITY, "x");
        let y = m.add_var(1.0, 3.0, f64::INFINITY, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 6.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 6.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate LP (Beale-like): many ties in the ratio test.
        let mut m = Model::new();
        let x1 = m.add_nonneg(-0.75, "x1");
        let x2 = m.add_nonneg(150.0, "x2");
        let x3 = m.add_nonneg(-0.02, "x3");
        let x4 = m.add_nonneg(6.0, "x4");
        m.le(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        m.le(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        m.le(&[(x3, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,2],[3,1]].
        // Optimal: s0->d0:10, s1->d0:5, s1->d1:15 => 10 + 15 + 15 = 40.
        let mut m = Model::new();
        let x00 = m.add_nonneg(1.0, "x00");
        let x01 = m.add_nonneg(2.0, "x01");
        let x10 = m.add_nonneg(3.0, "x10");
        let x11 = m.add_nonneg(1.0, "x11");
        m.eq(&[(x00, 1.0), (x01, 1.0)], 10.0);
        m.eq(&[(x10, 1.0), (x11, 1.0)], 20.0);
        m.eq(&[(x00, 1.0), (x10, 1.0)], 15.0);
        m.eq(&[(x01, 1.0), (x11, 1.0)], 15.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 40.0);
    }

    #[test]
    fn free_row_zero_rhs() {
        // min x s.t. x - y = 0, y <= 5, x >= 1 => x = y = 1? y in [0,5],
        // min x with x = y, x >= 1 => 1.
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0, f64::INFINITY, "x");
        let y = m.add_var(0.0, 0.0, 5.0, "y");
        m.eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.le(&[(x, -1.0)], -3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn no_rows_bounds_only() {
        let mut m = Model::new();
        let x = m.add_var(-2.0, 0.0, 4.0, "x");
        let y = m.add_var(3.0, 1.0, 9.0, "y");
        let s = m.solve().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn no_rows_unbounded() {
        let mut m = Model::new();
        m.add_nonneg(-1.0, "x");
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn iteration_limit_respected() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        let y = m.add_nonneg(-1.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 1.0);
        let opts = SolverOptions {
            max_iters: 0,
            ..Default::default()
        };
        assert_eq!(m.solve_with(&opts).unwrap_err(), LpError::IterationLimit);
    }

    #[test]
    fn duals_on_tight_rows() {
        // min -x, x <= 4 (row), x >= 0. Dual of the row should be -1
        // (raw multiplier convention: y = c_B B^-1).
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        let r = m.le(&[(x, 1.0)], 4.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.dual(r), -1.0);
    }

    #[test]
    fn interval_lp_shape_smoke() {
        // Miniature of the paper's LP (4)-(10): 2 flows, 3 intervals,
        // one shared capacity row per interval.
        let mut m = Model::new();
        let tau = [1.0, 2.0, 4.0, 8.0];
        // x[f][l] in [0,1]; completion c_f >= sum tau_l x's; sum_l x = 1.
        let mut c_vars = Vec::new();
        let mut x_vars = vec![Vec::new(); 2];
        for (f, xv) in x_vars.iter_mut().enumerate() {
            let c = m.add_nonneg(1.0, format!("c{f}"));
            c_vars.push(c);
            for l in 0..3 {
                xv.push(m.add_unit(0.0, format!("x{f}{l}")));
            }
        }
        for f in 0..2 {
            let terms: Vec<_> = (0..3).map(|l| (x_vars[f][l], 1.0)).collect();
            m.eq(&terms, 1.0);
            let mut terms: Vec<_> = (0..3).map(|l| (x_vars[f][l], tau[l])).collect();
            terms.push((c_vars[f], -1.0));
            m.le(&terms, 0.0);
        }
        // Capacity: both flows share one unit-capacity edge; size 1 each;
        // bandwidth x * size / tau_l <= 1 per interval.
        for l in 0..3 {
            let terms: Vec<_> = (0..2).map(|f| (x_vars[f][l], 1.0 / tau[l])).collect();
            m.le(&terms, 1.0);
        }
        let s = m.solve().unwrap();
        // Feasible and bounded; both flows can finish by tau_1=2:
        // in interval 0 (len 1, completing fraction tau0-scale)...
        // just sanity-check objective within [1, 6].
        assert!(s.objective >= 1.0 - 1e-6 && s.objective <= 6.0 + 1e-6);
        assert!(m.max_violation(&s.values) < 1e-6);
    }
}
