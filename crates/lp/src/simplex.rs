//! Bounded-variable revised primal simplex, generic over the basis
//! factorization.
//!
//! Design notes (why this shape):
//!
//! * The coflow LPs have `m` in the hundreds-to-low-thousands and `n` up to
//!   tens of thousands, with very sparse columns (a flow-interval variable
//!   touches one convexity row, one completion row, and the capacity rows of
//!   its path). The pivot loop talks to the basis only through the
//!   [`Factorization`] contract (`ftran`/`btran`/`update`/`refactor`), so
//!   the representation is pluggable: the production default is the sparse
//!   Markowitz LU with eta-file updates ([`crate::sparse_lu`]); the
//!   historical explicit dense `B⁻¹` remains available as
//!   [`crate::Backend::DenseInverse`] for baseline measurements.
//! * Bounds `l <= x <= u` are handled natively (nonbasic-at-lower /
//!   nonbasic-at-upper, bound flips) — crucial because the LPs are dominated
//!   by `[0,1]` variables and adding bound rows would double `m`.
//! * Degeneracy is endemic to interval-indexed LPs; we use devex pricing
//!   with a Harris-style ratio tie-break on `|w_r|` and fall back to Bland's
//!   rule after a run of degenerate pivots to guarantee termination.
//! * Phase 1 minimizes the sum of per-row artificials; phase 2 locks the
//!   artificials to zero by setting their bounds to `[0,0]`.
//! * **Warm starts**: a [`Basis`] snapshot from a related model is mapped
//!   onto this one by variable name (slacks by row name or original row
//!   index); the mapped basic set is completed to a full nonsingular basis
//!   by a rank-revealing elimination
//!   ([`crate::sparse_lu::complete_basis_into`]), preferring each uncovered
//!   row's slack over its artificial. Basic variables the mapping forces
//!   outside their bounds are repaired by a bound-shifting "phase 0"
//!   rather than rejected wholesale; if the repair fails the solver falls
//!   back to its cold crash basis — warm starting is an optimization,
//!   never a correctness risk.

use crate::basis::{Basis, SnapStat, SolveStats};
use crate::factor::Factorization;
use crate::model::{Cmp, LpError, Model, Solution, SolverOptions, Status};
use crate::nonzero;
use crate::presolve::Presolved;
use crate::scratch::{
    prep, reserve, reserve_pool, AsmBufs, CompleteBufs, Counters, FactorBufs, PhaseBufs, Scratch,
    WarmBufs,
};
use crate::sparse_lu::complete_basis_into;
use coflow_obs::{Accum, Counter as ObsCounter, Recorder, SpanName};

/// Variable status in the simplex dictionary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

/// Sparse matrix in compressed-sparse-column form over the *working*
/// variables (reduced structurals followed by slacks). Artificial columns
/// are unit vectors and handled implicitly.
#[derive(Default)]
struct Csc {
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    #[inline]
    fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (a, b) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[a..b], &self.values[a..b])
    }
}

/// The simplex working state. Persisted inside [`Scratch`] between solves
/// so every vector keeps its capacity; [`solve_presolved`] re-lengths and
/// re-fills each field per solve.
#[derive(Default)]
pub(crate) struct State {
    /// Rows of the working problem.
    m: usize,
    /// Number of explicit (structural + slack) columns.
    n_expl: usize,
    csc: Csc,
    /// Sign of the artificial column for each row (+1/-1).
    art_sign: Vec<f64>,
    /// Adjusted right-hand side of the working rows.
    b: Vec<f64>,
    /// Bounds over ALL variables (explicit + artificial).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Current point over all variables.
    x: Vec<f64>,
    vstat: Vec<VStat>,
    /// Basic variable at each basis position.
    basis: Vec<usize>,
    /// Pivots since the last refactorization.
    since_refactor: usize,
    /// Total pivots.
    iterations: usize,
    /// Per-solve statistics under construction.
    stats: SolveStats,
    /// Optional fault-injection hook (chaos testing only), consulted once
    /// per factorization attempt — a serial point, so injected fault
    /// sequences are thread-count independent. Installed through
    /// [`crate::WarmChain::set_fault_hook`]; `None` in production.
    pub(crate) hook: Option<Box<dyn crate::FaultHook>>,
}

impl State {
    #[inline]
    fn nvars(&self) -> usize {
        self.n_expl + self.m
    }

    /// Iterate the nonzero entries of column `j` (explicit or artificial).
    fn for_col<G: FnMut(usize, f64)>(&self, j: usize, mut f: G) {
        if j < self.n_expl {
            let (rows, vals) = self.csc.col(j);
            for (r, v) in rows.iter().zip(vals) {
                f(*r as usize, *v);
            }
        } else {
            let r = j - self.n_expl;
            f(r, self.art_sign[r]);
        }
    }

    /// Gathers the basis columns into the reusable pool `fx.cols[..m]`
    /// (for factorization input) and records the basis nnz.
    fn gather_basis_cols(&mut self, cnt: &mut Counters, fx: &mut FactorBufs) {
        reserve_pool(cnt, &mut fx.cols, self.m);
        let mut nnz = 0usize;
        for (k, &j) in self.basis.iter().enumerate() {
            let col = &mut fx.cols[k];
            col.clear();
            self.for_col(j, |r, v| col.push((r as u32, v)));
            nnz += col.len();
        }
        self.stats.basis_nnz = nnz;
    }

    /// FTRAN of column `j`: `w = B⁻¹ a_j` (dense output).
    fn ftran_col<F: Factorization>(&self, f: &mut F, j: usize, w: &mut [f64]) {
        w.fill(0.0);
        // Scatter the column (structural values, or art_sign for
        // artificials), then solve.
        self.for_col(j, |r, v| w[r] += v);
        f.ftran(w);
    }

    /// Duals `y = B⁻ᵀ c_B` via BTRAN.
    fn duals<F: Factorization>(&self, f: &mut F, costs: &[f64], y: &mut [f64]) {
        for (k, &bj) in self.basis.iter().enumerate() {
            y[k] = costs[bj];
        }
        f.btran(y);
    }

    /// Reduced cost of nonbasic `j` given duals `y`.
    fn reduced_cost(&self, j: usize, costs: &[f64], y: &[f64]) -> f64 {
        let mut d = costs[j];
        self.for_col(j, |r, v| d -= y[r] * v);
        d
    }

    /// Rebuilds the factorization from the current basis and recomputes the
    /// basic values (clamping arithmetic noise, failing on violations far
    /// beyond tolerance).
    // lint: hot
    fn refactorize<F: Factorization>(
        &mut self,
        f: &mut F,
        tol: f64,
        cnt: &mut Counters,
        fx: &mut FactorBufs,
        rec: &mut Recorder,
    ) -> Result<(), LpError> {
        if self.m == 0 {
            return Ok(());
        }
        if let Some(h) = self.hook.as_mut() {
            if h.on_factorization() {
                rec.bump(ObsCounter::FaultsInjected, 1);
                return Err(LpError::Numerical("injected singular factorization".into()));
            }
        }
        let t0 = rec.stamp();
        self.gather_basis_cols(cnt, fx);
        f.refactor(self.m, &fx.cols[..self.m], cnt)?;
        self.stats.refactorizations += 1;
        rec.bump(ObsCounter::Refactorizations, 1);
        self.stats.factor_nnz = f.factor_nnz();
        let t1 = rec.lap(Accum::Factor, t0);
        self.recompute_basic_values(f, tol, cnt, &mut fx.r)?;
        rec.lap(Accum::FtranBtran, t1);
        self.since_refactor = 0;
        Ok(())
    }

    /// Recomputes `x_B = B⁻¹ (b − N x_N)` from the nonbasic point into the
    /// reusable work vector `r`.
    // lint: hot
    fn recompute_basic_values<F: Factorization>(
        &mut self,
        f: &mut F,
        tol: f64,
        cnt: &mut Counters,
        r: &mut Vec<f64>,
    ) -> Result<(), LpError> {
        reserve(cnt, r, self.m);
        r.extend_from_slice(&self.b);
        for j in 0..self.nvars() {
            // Snap nonbasic to its bound.
            let xb = match self.vstat[j] {
                VStat::Basic => continue,
                VStat::AtLower => self.lb[j],
                VStat::AtUpper => self.ub[j],
            };
            self.x[j] = xb;
            if nonzero(xb) {
                self.for_col(j, |row, v| r[row] -= v * xb);
            }
        }
        f.ftran(r);
        // Clamp tiny bound violations introduced by arithmetic noise.
        let big = tol.max(1e-9) * 1e4;
        for (pos, val) in r.iter().enumerate() {
            let j = self.basis[pos];
            let mut v = *val;
            if v < self.lb[j] {
                if self.lb[j] - v > big {
                    return Err(LpError::Numerical(format!(
                        "basic var below bound by {:.3e} after refactor",
                        self.lb[j] - v
                    )));
                }
                v = self.lb[j];
            }
            if v > self.ub[j] {
                if v - self.ub[j] > big {
                    return Err(LpError::Numerical(format!(
                        "basic var above bound by {:.3e} after refactor",
                        v - self.ub[j]
                    )));
                }
                v = self.ub[j];
            }
            self.x[j] = v;
        }
        Ok(())
    }
}

/// Result of one phase.
enum PhaseEnd {
    Optimal,
    Unbounded,
    /// A [`crate::Budget`] limit tripped (pivot cap or clock deadline).
    /// The state holds the last point reached — primal feasible whenever
    /// the phase was entered feasible — and the caller decides whether
    /// that is returnable ([`Status::Truncated`]) or not (phase 1:
    /// [`LpError::BudgetExhausted`]).
    Truncated,
}

/// SplitMix64: the statistics-grade integer hash behind the basis
/// signatures of the anti-cycling monitor (and, through
/// [`splitmix_unit`], the deterministic cost jitters).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Salt distinguishing a bound *flip* of column `j` from a basis entry of
/// `j` in the cycle signature (both are XOR-toggles, so revisiting a state
/// restores the signature exactly).
const FLIP_SALT: u64 = 0xF11B_0000_0000_0001;

/// Anti-cycling monitor: a 64-bit XOR-of-hashes signature of the current
/// dictionary (basis members, plus a toggle per at-upper flip) updated
/// incrementally at each pivot. During a degenerate stall the recent
/// signatures are ring-buffered; seeing one again means the pivot sequence
/// has returned to a dictionary it already visited with no objective
/// progress in between — a cycle devex can repeat forever — so the caller
/// locks pricing to Bland's rule for the rest of the phase (the
/// termination argument needs the lock to be permanent). Any nondegenerate
/// step clears the ring: the objective strictly improved, so no earlier
/// dictionary can recur and stale signatures would only risk a (harmless
/// but pivot-wasting) false positive.
struct CycleMon {
    sig: u64,
    ring: [u64; 32],
    len: usize,
    pos: usize,
    locked: bool,
}

impl CycleMon {
    fn new(basis: &[usize]) -> Self {
        let mut sig = 0u64;
        for &j in basis {
            sig ^= splitmix64(j as u64);
        }
        Self {
            sig,
            ring: [0; 32],
            len: 0,
            pos: 0,
            locked: false,
        }
    }

    /// Records the post-pivot signature. Returns `true` exactly once, on
    /// the pivot where a repeat is first detected.
    fn observe(&mut self, degenerate: bool) -> bool {
        if !degenerate {
            self.len = 0;
            self.pos = 0;
            return false;
        }
        if self.locked {
            return false;
        }
        if self.ring[..self.len].contains(&self.sig) {
            self.locked = true;
            return true;
        }
        self.ring[self.pos] = self.sig;
        self.pos = (self.pos + 1) % self.ring.len();
        self.len = (self.len + 1).min(self.ring.len());
        false
    }
}

/// Candidate-list capacity: how many of the best-scoring columns a refill
/// scan retains for the following pivots to rescan (two generations live
/// in the list at once, so rescans read up to twice this). Deep enough to
/// survive a run of pivots (eligibility churns fast on degenerate LPs),
/// shallow enough that a rescan costs well under a window scan — the
/// rescan is a scattered gather, and its cache misses dominate pricing
/// long before the list stops fitting.
const CAND_LIST_CAP: usize = 64;

/// Below this column count a full scan stays on the calling thread: the
/// scan is cheaper than spawning scoped workers. Thread-count invariance
/// does not depend on this threshold (see [`cand_order`]).
const PAR_SCAN_MIN_COLS: usize = 4096;

/// Total order on pricing candidates `(devex score, column)`: higher
/// score first, ties to the lower column index. The order is a pure
/// function of the candidate values, so merging per-section top-`K`
/// lists under it yields the exact global top-`K` for *any* section
/// layout — each global top-`K` element is necessarily in its own
/// section's top-`K`. That partition invariance is what makes the pivot
/// sequence byte-identical at any thread count.
#[inline]
fn cand_order(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Retention order for refill-scan entries `(score, column, eligible)`:
/// eligible columns before near-misses, then higher score, ties to the
/// lower column index. Eligible-first retention guarantees that whenever a
/// window contains an eligible column, the merged top list's head is one —
/// near-misses can never evict every eligible entry — so termination still
/// only happens after a genuinely fruitless full cycle. Like
/// [`cand_order`], this is a pure function of the entry values, so the
/// per-section merge stays partition-invariant.
#[inline]
fn refill_order(a: &(f64, u32, bool), b: &(f64, u32, bool)) -> std::cmp::Ordering {
    b.2.cmp(&a.2).then(b.0.total_cmp(&a.0)).then(a.1.cmp(&b.1))
}

/// Runs simplex iterations until optimality for the given cost vector.
// lint: hot
#[allow(clippy::too_many_arguments)]
fn run_phase<F: Factorization>(
    st: &mut State,
    f: &mut F,
    costs: &[f64],
    opts: &SolverOptions,
    iter_cap: usize,
    cnt: &mut Counters,
    ph: &mut PhaseBufs,
    fx: &mut FactorBufs,
    rec: &mut Recorder,
) -> Result<PhaseEnd, LpError> {
    let m = st.m;
    let tol = opts.tol;
    let nv = st.nvars();
    prep(cnt, &mut ph.y, m, 0.0);
    prep(cnt, &mut ph.w, m, 0.0);
    prep(cnt, &mut ph.rho, m, 0.0);
    // Devex reference weights (reset per phase).
    prep(cnt, &mut ph.gamma, nv, 1.0);
    // Pricing signs, rebuilt per phase (bounds change between phases) and
    // maintained incrementally at each pivot below.
    prep(cnt, &mut ph.sgn, nv, 0i8);
    for (j, s) in ph.sgn.iter_mut().enumerate() {
        *s = match st.vstat[j] {
            VStat::Basic => 0,
            _ if st.ub[j] - st.lb[j] <= 0.0 => 0,
            VStat::AtLower => -1,
            VStat::AtUpper => 1,
        };
    }
    // Candidate-list pricing state (reset per phase; capacity retained).
    let workers = if opts.threads > 1 && nv >= PAR_SCAN_MIN_COLS {
        opts.threads
    } else {
        1
    };
    // Two refill generations live in the list at once (see the refill
    // branch below).
    reserve(cnt, &mut ph.cand, 2 * CAND_LIST_CAP);
    reserve(cnt, &mut ph.merged, CAND_LIST_CAP * workers);
    reserve_pool(cnt, &mut ph.sections, workers);
    let PhaseBufs {
        y,
        w,
        rho,
        gamma,
        sgn,
        cand,
        merged,
        sections,
    } = ph;
    // `Pricing::Candidate`: rescan only the candidate list most pivots; a
    // full scan (parallel across fixed column sections when `opts.threads`
    // allows) refills it when it runs dry, and optimality is only declared
    // by a fruitless full scan. `Pricing::Full` goes straight to the full
    // scan every pivot (same parallel kernel, same winner as the
    // historical serial scan: best score, ties to the lower index).
    let use_list = matches!(opts.pricing, crate::model::Pricing::Candidate);
    // `Pricing::Partial` (the default): the historical sectioned scan over
    // rotating windows of ~4m columns, stopping at the first window with
    // an eligible candidate. Kept serial and byte-for-byte stable — the
    // windows are far too small to amortize scoped-thread spawns, and the
    // engine's warm-vs-cold A/B tests rely on its exact pivot sequences.
    let windowed = matches!(opts.pricing, crate::model::Pricing::Partial);
    // `Pricing::Candidate` refills from the same ~4m rotating windows the
    // sectioned scan uses (global-best pricing rules stall badly on
    // degenerate interval/transport LPs — the window rotation is what
    // diversifies entering columns); `Pricing::Full` is the degenerate
    // single-window case covering every column.
    let window = if matches!(opts.pricing, crate::model::Pricing::Full) {
        nv
    } else {
        (4 * m).max(256).min(nv.max(1))
    };
    let mut scan_start = 0usize;
    let mut stall = 0usize;
    let mut bland = false;
    let mut cyc = CycleMon::new(&st.basis);
    let mut local_iters = 0usize;
    // Boundary between the two candidate-list generations: `cand[..gen_split]`
    // is the previous refill, `cand[gen_split..]` the most recent one.
    let mut gen_split = 0usize;

    loop {
        if local_iters >= iter_cap {
            return Err(LpError::IterationLimit);
        }
        local_iters += 1;
        // Budget pivot cap: unlike the hard iteration limit above, this
        // truncates gracefully (counts pivots across both phases).
        if let Some(cap) = opts.budget.max_pivots {
            if st.iterations >= cap {
                return Ok(PhaseEnd::Truncated);
            }
        }

        let t_dual = rec.stamp();
        // Budget deadline, checked against the stamp the loop already
        // takes — budgets never add clock reads, so enabling one cannot
        // perturb the logical-clock trace of the pivots that do run.
        if let Some(deadline) = opts.budget.deadline {
            if t_dual >= deadline {
                return Ok(PhaseEnd::Truncated);
            }
        }
        st.duals(f, costs, y);
        let t_scan = rec.lap(Accum::FtranBtran, t_dual);

        // --- Pricing: pick an entering variable (devex: maximize d²/γ;
        // tie-breaks are mode-specific — see `cand_order` and the
        // windowed branch). ---
        let mut enter: Option<usize> = None;
        // Columns scanned this iteration by the windowed mode, as a
        // rotated range `scan_start + [0, scanned)` (mod nv) — its devex
        // update below is restricted to the same range.
        let mut scanned = 0usize;
        if bland {
            // Bland's rule: lowest eligible index over ALL columns (the
            // anti-cycling argument needs a consistent total order).
            st.stats.pricing_full_scans += 1;
            scanned = nv;
            scan_start = 0;
            for j in 0..nv {
                // Want d < -tol at lower bound, d > tol at upper bound.
                let sign = match st.vstat[j] {
                    VStat::Basic => continue,
                    VStat::AtLower => -1.0,
                    VStat::AtUpper => 1.0,
                };
                if st.ub[j] - st.lb[j] <= 0.0 {
                    continue;
                }
                let d = st.reduced_cost(j, costs, y);
                if sign * d > tol {
                    enter = Some(j);
                    break;
                }
            }
        } else if windowed {
            // Sectioned pricing: scan rotating windows, stopping at the
            // first window with an eligible candidate; score ties keep the
            // FIRST candidate in rotated scan order. `scan_start` sticks
            // to the window that produced the last entering variable
            // (attractive columns cluster), and optimality is only
            // declared after a full fruitless cycle.
            let mut best_score = 0.0f64;
            while scanned < nv {
                let take = window.min(nv - scanned);
                for t in 0..take {
                    let mut j = scan_start + scanned + t;
                    if j >= nv {
                        j -= nv;
                    }
                    // Want d < -tol at lower bound, d > tol at upper bound;
                    // basic and fixed (lb==ub) columns carry sign 0.
                    let sg = sgn[j];
                    if sg == 0 {
                        continue;
                    }
                    let d = st.reduced_cost(j, costs, y);
                    let viol = f64::from(sg) * d;
                    if viol > tol {
                        let score = viol * viol / gamma[j];
                        if enter.is_none() || score > best_score {
                            enter = Some(j);
                            best_score = score;
                        }
                    }
                }
                scanned += take;
                if enter.is_some() {
                    break;
                }
            }
            if scanned >= nv {
                st.stats.pricing_full_scans += 1;
            } else {
                st.stats.pricing_list_hits += 1;
            }
        } else {
            if use_list {
                // Candidate-list pass: rescan the columns of the last
                // refill under the current duals. Entries are kept even
                // while ineligible — degenerate pivots flip reduced-cost
                // signs back and forth, and a rescan is `O(nnz(list))`
                // either way — so the list only turns over at a refill.
                let mut best: Option<(f64, u32)> = None;
                for &jc in cand.iter() {
                    let j = jc as usize;
                    let sg = sgn[j];
                    if sg == 0 {
                        continue;
                    }
                    let d = st.reduced_cost(j, costs, y);
                    let viol = f64::from(sg) * d;
                    if viol > tol {
                        let c = (viol * viol / gamma[j], jc);
                        if best.is_none_or(|b| cand_order(&c, &b).is_lt()) {
                            best = Some(c);
                        }
                    }
                }
                if let Some((_, j)) = best {
                    enter = Some(j as usize);
                    st.stats.pricing_list_hits += 1;
                }
                rec.bump(ObsCounter::ColumnsPriced, cand.len() as u64);
            }
            if enter.is_none() {
                // Refill scan over rotating windows (`Pricing::Full` is the
                // degenerate case `window == nv`: one window covering every
                // column). The first window with an ELIGIBLE candidate
                // refills the list with its top `CAND_LIST_CAP` entries by
                // [`refill_order`] — eligible columns first, then the best
                // near-misses (`viol > 0` but under tolerance). On
                // degenerate LPs reduced costs hover around the tolerance
                // and flip sign every few pivots, so the near-misses are
                // precisely the columns the next rescans will find
                // eligible; retaining them is what keeps the list hit rate
                // high. Optimality is only declared after a full fruitless
                // cycle. Large windows are cut into fixed contiguous
                // sections, one scoped worker per section, each keeping a
                // bounded local top list — the exact merge below is
                // invariant to the section layout, so the refilled list
                // (and the pivot it yields) is byte-identical at any
                // `opts.threads`.
                let stv: &State = st;
                let y_s: &[f64] = y;
                let gamma_s: &[f64] = gamma;
                let sgn_s: &[i8] = sgn;
                while scanned < nv {
                    let take = window.min(nv - scanned);
                    let base_idx = (scan_start + scanned) % nv;
                    for slot in sections.iter_mut().take(workers) {
                        slot.clear();
                    }
                    let win_workers = if take >= PAR_SCAN_MIN_COLS {
                        workers
                    } else {
                        1
                    };
                    crate::par::for_each_section(
                        win_workers,
                        take,
                        &mut sections[..workers],
                        |_, range, out| {
                            let mut worst = 0usize; // index of the worst kept candidate
                            for t in range {
                                // `base_idx < nv` and `t < nv`, so one
                                // conditional subtract wraps.
                                let mut j = base_idx + t;
                                if j >= nv {
                                    j -= nv;
                                }
                                // Want d < -tol at lower bound, d > tol at
                                // upper; basic and fixed columns carry 0.
                                let sg = sgn_s[j];
                                if sg == 0 {
                                    continue;
                                }
                                let d = stv.reduced_cost(j, costs, y_s);
                                let viol = f64::from(sg) * d;
                                if viol <= 0.0 {
                                    continue;
                                }
                                let c = (viol * viol / gamma_s[j], j as u32, viol > tol);
                                if out.len() < CAND_LIST_CAP {
                                    out.push(c);
                                    if out.len() == CAND_LIST_CAP {
                                        for i in 1..out.len() {
                                            if refill_order(&out[i], &out[worst]).is_gt() {
                                                worst = i;
                                            }
                                        }
                                    }
                                } else if refill_order(&c, &out[worst]).is_lt() {
                                    out[worst] = c;
                                    worst = 0;
                                    for i in 1..out.len() {
                                        if refill_order(&out[i], &out[worst]).is_gt() {
                                            worst = i;
                                        }
                                    }
                                }
                            }
                        },
                    );
                    scanned += take;
                    merged.clear();
                    for slot in sections.iter().take(workers) {
                        merged.extend_from_slice(slot);
                    }
                    // A window of pure near-misses keeps scanning (and
                    // keeps its entries out of the list — only the
                    // producing window refills); `refill_order` then sorts
                    // eligible entries to the front, so the head is the
                    // best eligible column.
                    if merged.iter().any(|&(_, _, eligible)| eligible) {
                        merged.sort_unstable_by(refill_order);
                        merged.truncate(CAND_LIST_CAP);
                        enter = merged.first().map(|&(_, j, _)| j as usize);
                        // Keep the previous refill's generation alongside
                        // the new one: degenerate LPs see-saw between two
                        // disjoint eligible sets (one pivot flips the
                        // whole current set ineligible and the other set
                        // eligible), so the union of the last two refills
                        // is what the next few rescans will actually hit.
                        let drop = gen_split;
                        if drop > 0 {
                            cand.copy_within(drop.., 0);
                            cand.truncate(cand.len() - drop);
                        }
                        gen_split = cand.len();
                        cand.extend(merged.iter().map(|&(_, j, _)| j));
                        // Rescans take an order-independent argmax, so the
                        // new generation can be stored in column order —
                        // its entries all come from one scan window, and
                        // the ascending rescan walks that window's CSC
                        // range nearly sequentially instead of thrashing.
                        cand[gen_split..].sort_unstable();
                        break;
                    }
                }
                if scanned >= nv {
                    st.stats.pricing_full_scans += 1;
                }
            }
        }
        rec.lap(Accum::Pricing, t_scan);
        rec.bump(ObsCounter::ColumnsPriced, scanned as u64);
        let Some(j_in) = enter else {
            return Ok(PhaseEnd::Optimal);
        };
        if !bland && scanned > window {
            // The candidate came from a later window: rotate the scan start
            // there so the next iteration finds it first. (Windowed mode
            // only — the other modes never advance `scanned`.)
            scan_start = (scan_start + scanned - window) % nv;
        }

        // Direction: +1 when increasing from lower bound, -1 when
        // decreasing from upper bound.
        let s: f64 = if st.vstat[j_in] == VStat::AtLower {
            1.0
        } else {
            -1.0
        };

        let t_ftran = rec.stamp();
        st.ftran_col(f, j_in, w);
        rec.lap(Accum::FtranBtran, t_ftran);
        let wmax = w.iter().fold(0.0f64, |a, &v| a.max(v.abs()));

        // --- Two-pass Harris ratio test (bounded variables). ---
        // Basic r changes by -s*t*w_r. Pass 1 computes the relaxed step
        // bound t_max (each row's limit padded by a feasibility tolerance
        // scaled by 1/|w_r|, so the eventual bound violation of any row is
        // at most `tol` in *variable space*, not `tol·|w_r|`). Pass 2 picks
        // the stabilizing pivot (largest |w_r|) among rows whose exact
        // limit fits under t_max.
        let t_flip = st.ub[j_in] - st.lb[j_in]; // may be +inf
        let zero_tol = 1e-11_f64.max(1e-10 * wmax);
        let mut t_max = t_flip;
        for (r, &wr) in w.iter().enumerate() {
            let swr = s * wr;
            if swr.abs() <= zero_tol {
                continue;
            }
            let bj = st.basis[r];
            let slack = if swr > 0.0 {
                st.x[bj] - st.lb[bj]
            } else {
                let u = st.ub[bj];
                if u.is_infinite() {
                    continue;
                }
                u - st.x[bj]
            };
            let lim = (slack.max(0.0) + tol) / swr.abs();
            if lim < t_max {
                t_max = lim;
            }
        }

        if t_max.is_infinite() {
            return Ok(PhaseEnd::Unbounded);
        }

        let mut leave: Option<(usize, f64, f64)> = None; // (row, |w|, exact limit)
        for (r, &wr) in w.iter().enumerate() {
            let swr = s * wr;
            if swr.abs() <= zero_tol {
                continue;
            }
            let bj = st.basis[r];
            let slack = if swr > 0.0 {
                st.x[bj] - st.lb[bj]
            } else {
                let u = st.ub[bj];
                if u.is_infinite() {
                    continue;
                }
                u - st.x[bj]
            };
            let exact = (slack.max(0.0)) / swr.abs();
            if exact <= t_max {
                let better = match leave {
                    None => true,
                    Some((cur_r, cur_w, _)) => {
                        if bland {
                            st.basis[r] < st.basis[cur_r]
                        } else {
                            wr.abs() > cur_w
                        }
                    }
                };
                if better {
                    leave = Some((r, wr.abs(), exact));
                }
            }
        }

        // Choose between a basis pivot and a bound flip.
        let step = match leave {
            Some((_, _, exact)) => exact.min(t_flip),
            None => t_flip,
        };

        // Degeneracy bookkeeping. A cycle-monitor lock survives
        // nondegenerate steps; the stall-counter trigger does not.
        if step <= tol {
            stall += 1;
            if stall > opts.bland_after {
                bland = true;
            }
        } else {
            stall = 0;
            bland = cyc.locked;
        }

        let use_flip = t_flip.is_finite()
            && match leave {
                None => true,
                Some((_, _, exact)) => t_flip <= exact,
            };

        if use_flip {
            // Bound flip: j_in moves to its opposite bound, basis unchanged.
            let t = t_flip;
            for (r, &wr) in w.iter().enumerate() {
                if nonzero(wr) {
                    let bj = st.basis[r];
                    st.x[bj] -= s * t * wr;
                }
            }
            st.vstat[j_in] = if s > 0.0 {
                VStat::AtUpper
            } else {
                VStat::AtLower
            };
            sgn[j_in] = if s > 0.0 { 1 } else { -1 };
            st.x[j_in] = if s > 0.0 { st.ub[j_in] } else { st.lb[j_in] };
            st.iterations += 1;
            rec.bump(ObsCounter::Pivots, 1);
            cyc.sig ^= splitmix64(j_in as u64 ^ FLIP_SALT);
            if cyc.observe(step <= tol) {
                bland = true;
                st.stats.cycles_detected += 1;
            }
            continue;
        }

        let (r_lv, _, exact) = leave.ok_or_else(|| {
            LpError::Numerical("bounded ratio test selected no leaving row".into())
        })?;
        let j_out = st.basis[r_lv];
        let t = exact.max(0.0);

        // --- Devex weight update (with the pre-pivot basis), restricted to
        // the columns the next pricing passes will actually read: the
        // producing window for `Pricing::Partial`, the candidate list for
        // `Pricing::Candidate` (`O(nnz(list))` instead of `O(nnz(A))`),
        // every column for `Pricing::Full`. Untouched columns keep
        // slightly stale weights until the next full scan — devex is
        // approximate by design.
        let t_devex = rec.stamp();
        let alpha_q = w[r_lv];
        if alpha_q.abs() > 1e-12 {
            f.binv_row(r_lv, rho);
            let gq = gamma[j_in].max(1.0);
            let ratio2 = gq / (alpha_q * alpha_q);
            let mut overflow = false;
            let mut touch = |j: usize, gamma: &mut [f64]| {
                if st.vstat[j] == VStat::Basic || j == j_in {
                    return;
                }
                let mut aj = 0.0;
                st.for_col(j, |r, v| aj += rho[r] * v);
                if nonzero(aj) {
                    let cand = aj * aj * ratio2;
                    if cand > gamma[j] {
                        gamma[j] = cand;
                        if cand > 1e12 {
                            overflow = true;
                        }
                    }
                }
            };
            if use_list {
                // The list is all the next rescans read until a refill
                // (which rescores everything it returns anyway), so the
                // update never needs to leave it.
                for &jc in cand.iter() {
                    touch(jc as usize, gamma);
                }
            } else if scanned > 0 {
                // After the post-selection rotation the producing window
                // always sits at `scan_start + [0, min(scanned, window))`
                // (for `Pricing::Full` that is every column).
                for t in 0..scanned.min(window) {
                    let mut j = scan_start + t;
                    if j >= nv {
                        j -= nv;
                    }
                    touch(j, gamma);
                }
            }
            gamma[j_out] = ratio2.max(1.0);
            if overflow {
                gamma.fill(1.0);
            }
        }
        rec.lap(Accum::Pricing, t_devex);

        // Move the point.
        for (r, &wr) in w.iter().enumerate() {
            if nonzero(wr) {
                let bj = st.basis[r];
                st.x[bj] -= s * t * wr;
            }
        }
        // `s` encodes the entering bound: +1 from lower, -1 from upper.
        st.x[j_in] = if s > 0.0 {
            st.lb[j_in] + t
        } else {
            st.ub[j_in] - t
        };
        // Snap the leaving variable to the bound it hit.
        let swr = s * w[r_lv];
        st.vstat[j_out] = if swr > 0.0 {
            VStat::AtLower
        } else {
            VStat::AtUpper
        };
        st.x[j_out] = if swr > 0.0 {
            st.lb[j_out]
        } else {
            st.ub[j_out]
        };
        sgn[j_out] = if st.ub[j_out] - st.lb[j_out] <= 0.0 {
            0
        } else if swr > 0.0 {
            -1
        } else {
            1
        };

        st.vstat[j_in] = VStat::Basic;
        sgn[j_in] = 0;
        st.basis[r_lv] = j_in;
        st.iterations += 1;
        rec.bump(ObsCounter::Pivots, 1);
        cyc.sig ^= splitmix64(j_out as u64) ^ splitmix64(j_in as u64);
        if cyc.observe(step <= tol) {
            bland = true;
            st.stats.cycles_detected += 1;
        }
        match f.update(r_lv, w) {
            Ok(()) => {
                st.since_refactor += 1;
                if f.wants_refactor(st.since_refactor, opts) {
                    st.refactorize(f, tol, cnt, fx, rec)?;
                }
            }
            Err(_) if st.since_refactor > 0 => {
                // Stale factors produced an untrustworthy pivot: rebuild
                // from scratch (the basis change is already recorded).
                st.refactorize(f, tol, cnt, fx, rec)?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs phase 1 (when the current point carries artificial infeasibility),
/// locks the artificials, then runs phase 2 including the final
/// refactorize-and-re-optimize pass. Returns the pivot count after phase 1
/// and whether a [`crate::Budget`] truncated phase 2.
///
/// Called through the recovery ladder in [`solve_presolved_inner`], so it
/// must tolerate re-entry: the phase-1 check is value-based (artificials
/// already locked at zero skip straight to phase 2), and `st.iterations`
/// accumulates across attempts so budgets stay per-solve.
#[allow(clippy::too_many_arguments)]
fn run_phases<F: Factorization>(
    st: &mut State,
    f: &mut F,
    opts: &SolverOptions,
    costs1: &[f64],
    costs2: &[f64],
    cnt: &mut Counters,
    ph: &mut PhaseBufs,
    fx: &mut FactorBufs,
    rec: &mut Recorder,
) -> Result<(usize, bool), LpError> {
    let n_expl = st.n_expl;
    let nvars = st.nvars();
    // ---- Phase 1: minimize sum of artificials. ----
    let phase1_needed = st.x[n_expl..].iter().any(|&v| v > opts.tol);
    if phase1_needed {
        rec.enter(SpanName::Phase1);
        let end = run_phase(st, f, costs1, opts, opts.max_iters, cnt, ph, fx, rec);
        rec.exit();
        match end? {
            PhaseEnd::Optimal => {}
            // A budget expiring before feasibility leaves nothing usable.
            PhaseEnd::Truncated => return Err(LpError::BudgetExhausted),
            PhaseEnd::Unbounded => {
                return Err(LpError::Numerical("phase 1 reported unbounded".into()))
            }
        }
        let infeas: f64 = st.x[n_expl..].iter().sum();
        let scale = 1.0 + st.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
        if infeas > opts.tol * scale * 10.0 {
            return Err(LpError::Infeasible);
        }
    }
    let phase1_iterations = st.iterations;
    // Lock artificials at zero for phase 2.
    for j in n_expl..nvars {
        st.ub[j] = 0.0;
        if st.vstat[j] != VStat::Basic {
            st.vstat[j] = VStat::AtLower;
            st.x[j] = 0.0;
        } else {
            st.x[j] = st.x[j].min(opts.tol).max(0.0);
        }
    }

    // ---- Phase 2: the real objective. ----
    let remaining = opts.max_iters.saturating_sub(st.iterations).max(1);
    rec.enter(SpanName::Phase2);
    let end = run_phase(st, f, costs2, opts, remaining, cnt, ph, fx, rec);
    rec.exit();
    let mut truncated = match end? {
        PhaseEnd::Optimal => false,
        PhaseEnd::Truncated => true,
        PhaseEnd::Unbounded => return Err(LpError::Unbounded),
    };

    // One final refactorization pass for clean values.
    st.refactorize(f, opts.tol, cnt, fx, rec)?;
    if !truncated {
        // Re-check optimality after the refresh: if the cleaned point lost
        // optimality (rare), resume pivoting once. Truncated solves skip
        // the re-check — the budget is already spent.
        let remaining = opts.max_iters.saturating_sub(st.iterations).max(1);
        rec.enter(SpanName::Phase2);
        let end = run_phase(st, f, costs2, opts, remaining, cnt, ph, fx, rec);
        rec.exit();
        truncated = match end? {
            PhaseEnd::Optimal => false,
            PhaseEnd::Truncated => true,
            PhaseEnd::Unbounded => return Err(LpError::Unbounded),
        };
    }
    Ok((phase1_iterations, truncated))
}

/// `Σ costs·x` over the working variables: the working-space objective of
/// the current point, used to translate a working-space dual bound into
/// reported-objective space.
fn working_objective(st: &State, costs: &[f64]) -> f64 {
    (0..st.nvars()).map(|j| costs[j] * st.x[j]).sum()
}

/// Lagrangian dual value `yᵀb + Σ_j min_{x ∈ [l_j, u_j]} d_j·x` of the
/// working problem at duals `y` (`d` = reduced costs under `costs`): a
/// valid lower bound on the working optimum for *any* `y`. Reduced costs
/// at noise level are clamped to zero so basic columns with infinite upper
/// bound do not collapse the bound spuriously — the result is therefore
/// valid up to `tol·‖x*‖₁`. Returns `-inf` when a genuinely adverse
/// infinite-bound column makes the duals certify nothing yet.
fn lagrangian_dual(st: &State, costs: &[f64], y: &[f64], tol: f64) -> f64 {
    let mut v = 0.0;
    for (r, &br) in st.b.iter().enumerate() {
        v += y[r] * br;
    }
    for (j, &cj) in costs.iter().enumerate().take(st.nvars()) {
        let mut d = cj;
        st.for_col(j, |r, a| d -= y[r] * a);
        if d.abs() <= tol {
            continue;
        }
        if d > 0.0 {
            v += d * st.lb[j];
        } else if st.ub[j].is_finite() {
            v += d * st.ub[j];
        } else {
            return f64::NEG_INFINITY;
        }
    }
    v
}

/// Entry point used by the backends: solve the presolved LP with the given
/// factorization, optionally warm-starting from `warm` and optionally
/// extracting the final [`Basis`].
///
/// All working storage comes from `scratch`; the per-solve acquisition
/// counters are reset here and copied into the returned
/// [`SolveStats::allocs`]/[`SolveStats::scratch_reuse`] fields.
pub(crate) fn solve_presolved<F: Factorization + Default>(
    model: &Model,
    pre: &Presolved,
    opts: &SolverOptions,
    warm: Option<&Basis>,
    want_basis: bool,
    scratch: &mut Scratch,
) -> Result<(Solution, Option<Basis>), LpError> {
    scratch.cnt = Counters::default();
    // Accumulator baselines: the recorder is cumulative over the chain, so
    // the per-solve `*_ms` stats fields are deltas over this solve (the
    // stats become a view over the trace rather than parallel bookkeeping).
    let base_pricing = scratch.rec.acc(Accum::Pricing);
    let base_xfer = scratch.rec.acc(Accum::FtranBtran);
    let base_factor = scratch.rec.acc(Accum::Factor);
    scratch.rec.enter(SpanName::Solve);
    let mut f = F::default();
    f.take_from(scratch);
    let res = solve_presolved_inner(model, pre, opts, warm, want_basis, scratch, &mut f);
    f.store_into(scratch);
    scratch.rec.exit();
    scratch
        .rec
        .bump(ObsCounter::ScratchReuses, scratch.cnt.reuses as u64);
    let mode = scratch.rec.mode();
    res.map(|(mut sol, basis)| {
        sol.stats.allocs = scratch.cnt.allocs;
        sol.stats.scratch_reuse = scratch.cnt.reuses;
        sol.stats.pricing_ms = mode.to_ms(scratch.rec.acc(Accum::Pricing) - base_pricing);
        sol.stats.ftran_btran_ms = mode.to_ms(scratch.rec.acc(Accum::FtranBtran) - base_xfer);
        sol.stats.factor_ms = mode.to_ms(scratch.rec.acc(Accum::Factor) - base_factor);
        (sol, basis)
    })
}

/// The body of [`solve_presolved`], with the factorization's persisted
/// state already moved out of the scratch (so error paths in here lose at
/// most the retained factors, never corrupt them).
fn solve_presolved_inner<F: Factorization>(
    model: &Model,
    pre: &Presolved,
    opts: &SolverOptions,
    warm: Option<&Basis>,
    want_basis: bool,
    scratch: &mut Scratch,
    f: &mut F,
) -> Result<(Solution, Option<Basis>), LpError> {
    let Scratch {
        cnt,
        state: st,
        ph,
        fx,
        asm,
        warm: wb,
        complete,
        rec,
        ..
    } = scratch;
    let AsmBufs {
        kept_rows,
        row_map,
        col_counts,
        slack_of_row,
        fill_ptr,
        costs1,
        costs2,
        y: ydual,
    } = asm;
    // ---- Assemble the working problem. ----
    reserve(cnt, kept_rows, model.num_rows());
    for r in 0..model.num_rows() as u32 {
        if pre.keep_row[r as usize] {
            kept_rows.push(r);
        }
    }
    prep(cnt, row_map, model.num_rows(), None);
    for (new, &old) in kept_rows.iter().enumerate() {
        row_map[old as usize] = Some(new as u32);
    }
    let m = kept_rows.len();
    let n_struct = pre.kept_vars.len();

    // Trivial case: no rows — every variable sits at its cheapest bound.
    if m == 0 {
        let mut values = pre.fixed_values.clone();
        let mut objective = pre.obj_offset;
        let mut basis_out = want_basis.then(Basis::default);
        for &oj in pre.kept_vars.iter() {
            let oj = oj as usize;
            let (cost, lo, hi) = (model.cols[oj].cost, pre.lb[oj], pre.ub[oj]);
            let v = if cost >= 0.0 {
                lo
            } else if hi.is_finite() {
                if let Some(b) = basis_out.as_mut() {
                    b.stat
                        .insert(model.cols[oj].name.clone(), SnapStat::AtUpper);
                }
                hi
            } else {
                return Err(LpError::Unbounded);
            };
            values[oj] = v;
            objective += cost * v;
        }
        let stats = SolveStats {
            warm_attempted: warm.is_some(),
            ..Default::default()
        };
        let mut duals = vec![0.0; model.num_rows()];
        crate::presolve::postsolve_singleton_duals(model, pre, opts.tol, &mut duals);
        return Ok((
            Solution {
                objective,
                bound: objective,
                values,
                duals,
                iterations: 0,
                phase1_iterations: 0,
                status: Status::Optimal,
                stats,
            },
            basis_out,
        ));
    }

    // Column-sorted triplets over kept rows/vars.
    prep(cnt, col_counts, n_struct, 0usize);
    for &(r, c, _) in &model.triplets {
        if row_map[r as usize].is_some() {
            if let Some(rc) = pre.var_map[c as usize] {
                col_counts[rc as usize] += 1;
            }
        }
    }
    // Slack bookkeeping: one slack for each Le/Ge row.
    prep(cnt, slack_of_row, m, None);
    let mut n_slack = 0usize;
    for (new_r, &old_r) in kept_rows.iter().enumerate() {
        match model.rows[old_r as usize].cmp {
            Cmp::Le | Cmp::Ge => {
                slack_of_row[new_r] = Some(n_slack);
                n_slack += 1;
            }
            Cmp::Eq => {}
        }
    }
    let n_expl = n_struct + n_slack;

    {
        let csc = &mut st.csc;
        prep(cnt, &mut csc.col_ptr, n_expl + 1, 0usize);
        for (j, &count) in col_counts.iter().enumerate().take(n_struct) {
            csc.col_ptr[j + 1] = csc.col_ptr[j] + count;
        }
        for j in n_struct..n_expl {
            csc.col_ptr[j + 1] = csc.col_ptr[j] + 1;
        }
        let nnz = csc.col_ptr[n_expl];
        prep(cnt, &mut csc.row_idx, nnz, 0u32);
        prep(cnt, &mut csc.values, nnz, 0.0f64);
        reserve(cnt, fill_ptr, n_expl + 1);
        fill_ptr.extend_from_slice(&csc.col_ptr);
        for &(r, c, a) in &model.triplets {
            let (Some(nr), Some(nc)) = (row_map[r as usize], pre.var_map[c as usize]) else {
                continue;
            };
            let p = fill_ptr[nc as usize];
            csc.row_idx[p] = nr;
            csc.values[p] = a;
            fill_ptr[nc as usize] += 1;
        }
        // Slack columns.
        for (new_r, slack) in slack_of_row.iter().enumerate() {
            if let Some(si) = slack {
                let j = n_struct + si;
                let p = fill_ptr[j];
                csc.row_idx[p] = new_r as u32;
                csc.values[p] = match model.rows[kept_rows[new_r] as usize].cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    // lint: allow(no_panic) — slack_of_row assigns no slack to Eq rows
                    Cmp::Eq => unreachable!("Eq rows carry no slack column"),
                };
                fill_ptr[j] += 1;
            }
        }
    }
    // The model builder merges duplicate terms at `add_row` time, so each
    // CSC column already has unique row indices.

    // Bounds and working arrays.
    let nvars = n_expl + m;
    prep(cnt, &mut st.lb, nvars, 0.0);
    prep(cnt, &mut st.ub, nvars, f64::INFINITY);
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        st.lb[rj] = pre.lb[oj as usize];
        st.ub[rj] = pre.ub[oj as usize];
    }
    // Slacks: [0, inf). Artificials: [0, inf) during phase 1.

    reserve(cnt, &mut st.b, m);
    for &r in kept_rows.iter() {
        st.b.push(pre.rhs_adjust[r as usize]);
    }

    st.m = m;
    st.n_expl = n_expl;
    prep(cnt, &mut st.art_sign, m, 1.0);
    prep(cnt, &mut st.x, nvars, 0.0);
    prep(cnt, &mut st.vstat, nvars, VStat::AtLower);
    reserve(cnt, &mut st.basis, m);
    st.basis.extend(n_expl..n_expl + m);
    st.since_refactor = 0;
    st.iterations = 0;
    st.stats = SolveStats {
        rows: m,
        cols: n_expl,
        warm_attempted: warm.is_some(),
        threads: opts.threads.max(1),
        ..Default::default()
    };

    // ---- Warm start: map the snapshot onto this model's variables. ----
    let mut warm_ready = false;
    if let Some(snap) = warm {
        warm_ready = try_warm_start(
            model,
            pre,
            st,
            f,
            opts,
            snap,
            kept_rows,
            slack_of_row,
            cnt,
            ph,
            fx,
            wb,
            complete,
            rec,
        );
        st.stats.warm_used = warm_ready;
    }

    if !warm_ready {
        let first = crash_basis(
            model,
            kept_rows,
            slack_of_row,
            n_struct,
            st,
            f,
            opts,
            cnt,
            fx,
            &mut wb.resid,
            rec,
            true,
        );
        if let Err(e) = first {
            let LpError::Numerical(_) = e else {
                return Err(e);
            };
            // The very first factorization failed (in practice only an
            // injected fault: the crash basis is diagonal). Rungs 1/2 of
            // the recovery ladder would redo exactly what just failed, so
            // escalate straight to rung 3: the all-artificial identity
            // cold start.
            st.stats.recovery_cold_restarts += 1;
            rec.bump(ObsCounter::Recoveries, 1);
            crash_basis(
                model,
                kept_rows,
                slack_of_row,
                n_struct,
                st,
                f,
                opts,
                cnt,
                fx,
                &mut wb.resid,
                rec,
                false,
            )?;
        }
    }

    // ---- Cost vectors for both phases (prepared once: the recovery
    // ladder below may run the phases more than once). ----
    // The artificial costs carry a tiny deterministic jitter: exact unit
    // costs make transportation-like LPs massively dual-degenerate in
    // phase 1 (every tied reduced cost spawns a run of degenerate pivots);
    // the jitter breaks ties while keeping the phase-1 optimum's defining
    // property (zero infeasibility ⇔ all artificials at zero) intact.
    prep(cnt, costs1, nvars, 0.0);
    for (r, c) in costs1.iter_mut().skip(n_expl).enumerate() {
        *c = 1.0 + opts.phase1_jitter * splitmix_unit(r as u64 + 0x5EED);
    }
    prep(cnt, costs2, nvars, 0.0);
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        costs2[rj] = model.cols[oj as usize].cost;
    }
    if opts.perturb > 0.0 {
        // Deterministic anti-degeneracy perturbation on structural costs.
        let scale = costs2[..n_struct]
            .iter()
            .map(|c| c.abs())
            .fold(1.0_f64, f64::max);
        for (j, c) in costs2.iter_mut().enumerate().take(n_struct) {
            *c += opts.perturb * scale * splitmix_unit(j as u64 + 1);
        }
    }

    // ---- Phase 1 + phase 2, wrapped in the singular-factorization
    // recovery ladder: a numerical failure escalates through
    // (1) refactorize the current basis in place, (2) rebuild the crash
    // basis and restore feasibility from scratch, (3) cold-restart from
    // the all-artificial identity basis — before giving up. Each rung is
    // attempted at most once per solve; a rung that itself fails (the
    // basis is singular beyond repair, or the fault hook keeps firing)
    // escalates immediately.
    let mut rung = 0usize;
    let (phase1_iterations, truncated) = loop {
        match run_phases(st, f, opts, costs1, costs2, cnt, ph, fx, rec) {
            Ok(out) => break out,
            Err(LpError::Numerical(msg)) if rung < 3 => {
                let mut recovered = false;
                while !recovered && rung < 3 {
                    rung += 1;
                    rec.bump(ObsCounter::Recoveries, 1);
                    recovered = match rung {
                        1 => {
                            st.stats.recovery_refactorizations += 1;
                            st.refactorize(f, opts.tol, cnt, fx, rec).is_ok()
                        }
                        2 => {
                            st.stats.recovery_basis_repairs += 1;
                            crash_basis(
                                model,
                                kept_rows,
                                slack_of_row,
                                n_struct,
                                st,
                                f,
                                opts,
                                cnt,
                                fx,
                                &mut wb.resid,
                                rec,
                                true,
                            )
                            .is_ok()
                        }
                        _ => {
                            st.stats.recovery_cold_restarts += 1;
                            crash_basis(
                                model,
                                kept_rows,
                                slack_of_row,
                                n_struct,
                                st,
                                f,
                                opts,
                                cnt,
                                fx,
                                &mut wb.resid,
                                rec,
                                false,
                            )
                            .is_ok()
                        }
                    };
                }
                if !recovered {
                    return Err(LpError::Numerical(msg));
                }
            }
            Err(e) => return Err(e),
        }
    };

    // ---- Scatter back to the original variable space. ----
    let mut values = pre.fixed_values.clone();
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        values[oj as usize] = st.x[rj];
    }
    prep(cnt, ydual, m, 0.0);
    st.duals(f, costs2, ydual);
    let mut duals = vec![0.0; model.num_rows()];
    for (new_r, &old_r) in kept_rows.iter().enumerate() {
        duals[old_r as usize] = ydual[new_r];
    }
    crate::presolve::postsolve_singleton_duals(model, pre, opts.tol, &mut duals);
    let objective = model.objective_of(&values);
    // For optimal solves the bound IS the objective. For budget-truncated
    // solves it is the Lagrangian dual value at the current working duals,
    // translated into reported-objective space (exact for `perturb == 0`,
    // within the perturbation scale otherwise).
    let bound = if truncated {
        objective - working_objective(st, costs2) + lagrangian_dual(st, costs2, ydual, opts.tol)
    } else {
        objective
    };

    // ---- Snapshot the final basis (by name) if requested. ----
    let basis_out = want_basis.then(|| {
        let mut snap = Basis {
            rows: m,
            ..Default::default()
        };
        for (rj, &oj) in pre.kept_vars.iter().enumerate() {
            let name = &model.cols[oj as usize].name;
            match st.vstat[rj] {
                VStat::Basic => {
                    snap.stat.insert(name.clone(), SnapStat::Basic);
                }
                VStat::AtUpper => {
                    snap.stat.insert(name.clone(), SnapStat::AtUpper);
                }
                VStat::AtLower => {}
            }
        }
        // Basic slacks, remembered through their rows: by name when the
        // row is named, by original row index always.
        for (new_r, slack) in slack_of_row.iter().enumerate() {
            if let Some(si) = slack {
                if st.vstat[n_struct + si] == VStat::Basic {
                    let old_r = kept_rows[new_r];
                    snap.basic_slack_rows.insert(old_r);
                    let name = &model.rows[old_r as usize].name;
                    if !name.is_empty() {
                        snap.basic_slacks.insert(name.clone());
                    }
                }
            }
        }
        snap.kept_rows = kept_rows.iter().copied().collect();
        snap
    });

    st.stats.iterations = st.iterations;
    st.stats.phase1_iterations = phase1_iterations;
    st.stats.truncated = truncated;
    Ok((
        Solution {
            objective,
            bound,
            values,
            duals,
            iterations: st.iterations,
            phase1_iterations,
            status: if truncated {
                Status::Truncated
            } else {
                Status::Optimal
            },
            stats: st.stats,
        },
        basis_out,
    ))
}

/// Builds the cold crash basis: prefer each row's own slack when it can sit
/// at a feasible (nonnegative) value, otherwise fall back to an artificial.
/// This leaves artificials only on equality rows and on inequality rows
/// violated at the all-lower-bound point, which slashes phase-1 work.
///
/// With `prefer_slacks = false` every row is covered by its artificial
/// instead — the recovery ladder's last rung: the basis matrix is then a
/// signed identity, the one factorization that cannot fail numerically.
// lint: hot
#[allow(clippy::too_many_arguments)]
fn crash_basis<F: Factorization>(
    model: &Model,
    kept_rows: &[u32],
    slack_of_row: &[Option<usize>],
    n_struct: usize,
    st: &mut State,
    f: &mut F,
    opts: &SolverOptions,
    cnt: &mut Counters,
    fx: &mut FactorBufs,
    resid: &mut Vec<f64>,
    rec: &mut Recorder,
    prefer_slacks: bool,
) -> Result<(), LpError> {
    let m = st.m;
    let n_expl = st.n_expl;
    // Reset statuses.
    for j in 0..st.nvars() {
        st.vstat[j] = VStat::AtLower;
    }
    st.basis.clear();
    st.basis.extend(n_expl..n_expl + m);
    st.art_sign.iter_mut().for_each(|s| *s = 1.0);
    for j in n_expl..st.nvars() {
        st.lb[j] = 0.0;
        st.ub[j] = f64::INFINITY;
    }

    // Initial nonbasic point: everything at lower bound.
    for j in 0..n_expl {
        st.x[j] = st.lb[j];
    }
    reserve(cnt, resid, m);
    resid.extend_from_slice(&st.b);
    for j in 0..n_expl {
        let xj = st.x[j];
        if nonzero(xj) {
            st.for_col(j, |r, v| resid[r] -= v * xj);
        }
    }
    for (r, &res) in resid.iter().enumerate() {
        let aj = n_expl + r;
        let slack_ok = match slack_of_row[r].filter(|_| prefer_slacks) {
            Some(si) => {
                let sj = n_struct + si;
                // Slack coefficient: +1 for Le, -1 for Ge.
                let coef = match model.rows[kept_rows[r] as usize].cmp {
                    Cmp::Le => 1.0,
                    Cmp::Ge => -1.0,
                    // lint: allow(no_panic) — slack_of_row assigns no slack to Eq rows
                    Cmp::Eq => unreachable!("Eq rows carry no slack column"),
                };
                let val = res / coef;
                if val >= 0.0 {
                    st.basis[r] = sj;
                    st.vstat[sj] = VStat::Basic;
                    st.x[sj] = val;
                    true
                } else {
                    false
                }
            }
            None => false,
        };
        if slack_ok {
            // Artificial stays nonbasic at 0 and is never allowed to move.
            st.art_sign[r] = 1.0;
            st.ub[aj] = 0.0;
            st.vstat[aj] = VStat::AtLower;
            st.x[aj] = 0.0;
        } else if res >= 0.0 {
            st.art_sign[r] = 1.0;
            st.x[aj] = res;
            st.vstat[aj] = VStat::Basic;
        } else {
            st.art_sign[r] = -1.0;
            st.x[aj] = -res;
            st.vstat[aj] = VStat::Basic;
        }
    }
    st.refactorize(f, opts.tol, cnt, fx, rec)
}

/// Attempts a warm start from `snap`. Returns `true` when a mapped basis
/// factorized and produced a (near-)feasible point; on `false` the state
/// may be arbitrary and the caller must run the cold crash.
///
/// The mapping is repaired, not all-or-nothing: negative artificials get
/// their sign flipped, basic variables forced outside their range are
/// driven back by a bound-shifting "phase 0" (see inline comments), and a
/// small residual on artificials is tolerated — phase 1 clears it in far
/// fewer pivots than a cold start would need.
// lint: hot
#[allow(clippy::too_many_arguments)]
fn try_warm_start<F: Factorization>(
    model: &Model,
    pre: &Presolved,
    st: &mut State,
    f: &mut F,
    opts: &SolverOptions,
    snap: &Basis,
    kept_rows: &[u32],
    slack_of_row: &[Option<usize>],
    cnt: &mut Counters,
    ph: &mut PhaseBufs,
    fx: &mut FactorBufs,
    wb: &mut WarmBufs,
    complete: &mut CompleteBufs,
    rec: &mut Recorder,
) -> bool {
    if snap.is_empty() {
        return false;
    }
    let m = st.m;
    let n_struct = pre.kept_vars.len();
    let n_expl = st.n_expl;
    let WarmBufs {
        cand,
        uppers,
        shifted,
        costs0,
        r,
        ..
    } = wb;

    // Map snapshot statuses onto reduced indices by name.
    reserve(cnt, cand, n_struct + m);
    reserve(cnt, uppers, n_struct);
    for (rj, &oj) in pre.kept_vars.iter().enumerate() {
        match snap.stat.get(&model.cols[oj as usize].name) {
            Some(SnapStat::Basic) => cand.push(rj),
            Some(SnapStat::AtUpper) => uppers.push(rj),
            None => {}
        }
    }
    // Remembered basic slacks: matched by row name when the row is named,
    // and by original row index otherwise (exact whenever the grown model
    // keeps the old rows as a prefix; validated below either way).
    for (new_r, slack) in slack_of_row.iter().enumerate() {
        if let Some(si) = slack {
            let old_r = kept_rows[new_r];
            let name = &model.rows[old_r as usize].name;
            let hit = if name.is_empty() {
                snap.basic_slack_rows.contains(&old_r)
            } else {
                snap.basic_slacks.contains(name)
            };
            if hit {
                cand.push(n_struct + si);
                continue;
            }
            // Rows absent from the snapshot's working problem — presolved
            // away back then (a colgen capacity row no column touched yet)
            // or genuinely new in a grown model — were satisfied strictly
            // at the old optimum, so their slack is implicitly basic.
            // Seeding it keeps the mapped basis's implied point exactly at
            // the old optimum; without it the completion may cover such a
            // row with a structural column and scramble every basic value.
            if !snap.kept_rows.contains(&old_r) {
                cand.push(n_struct + si);
            }
        }
    }

    if cand.is_empty() {
        return false;
    }

    // Bound-violation threshold for treating a mapped basic value as off.
    let vtol = opts.tol.max(1e-9) * 10.0;
    st.art_sign.iter_mut().for_each(|s| *s = 1.0);

    // Complete the candidate set to a full basis: rank-revealing
    // elimination over the candidate columns, then slack (preferred) or
    // artificial unit columns for uncovered rows.
    reserve_pool(cnt, &mut fx.cols, cand.len());
    for (k, &j) in cand.iter().enumerate() {
        let col = &mut fx.cols[k];
        col.clear();
        st.for_col(j, |row, v| col.push((row as u32, v)));
    }
    complete_basis_into(
        &mut complete.elim,
        &mut complete.ws,
        m,
        &fx.cols[..cand.len()],
        cnt,
    );
    let picked = &complete.elim.pivoted_col;
    let covered = &complete.elim.pivoted_row;
    st.basis.clear();
    for (&j, &p) in cand.iter().zip(picked) {
        if p {
            st.basis.push(j);
        }
    }
    for (r, &cov) in covered.iter().enumerate() {
        if !cov {
            match slack_of_row[r] {
                Some(si) => st.basis.push(n_struct + si),
                None => st.basis.push(n_expl + r),
            }
        }
    }
    if st.basis.len() != m {
        return false;
    }

    // Statuses: basis members basic; snapshot uppers at their (finite)
    // upper bound; everything else at lower. Artificials not in the basis
    // are pinned to zero.
    for j in 0..st.nvars() {
        st.vstat[j] = VStat::AtLower;
    }
    for j in n_expl..st.nvars() {
        st.lb[j] = 0.0;
        st.ub[j] = 0.0;
    }
    for k in 0..m {
        let j = st.basis[k];
        st.vstat[j] = VStat::Basic;
        if j >= n_expl {
            st.ub[j] = f64::INFINITY; // artificial may carry residual
        }
    }
    for &j in uppers.iter() {
        if st.vstat[j] != VStat::Basic && st.ub[j].is_finite() {
            st.vstat[j] = VStat::AtUpper;
        }
    }

    // Factorize and compute the implied basic values, unclamped. A second
    // pass re-factorizes after flipping the sign of any artificial whose
    // implied value came out negative.
    prep(cnt, r, m, 0.0);
    for _pass in 0..2 {
        let t0 = rec.stamp();
        st.gather_basis_cols(cnt, fx);
        if f.refactor(m, &fx.cols[..m], cnt).is_err() {
            return false;
        }
        st.stats.refactorizations += 1;
        rec.bump(ObsCounter::Refactorizations, 1);
        st.stats.factor_nnz = f.factor_nnz();
        rec.lap(Accum::Factor, t0);
        r.copy_from_slice(&st.b);
        for j in 0..st.nvars() {
            let xb = match st.vstat[j] {
                VStat::Basic => continue,
                VStat::AtLower => st.lb[j],
                VStat::AtUpper => st.ub[j],
            };
            st.x[j] = xb;
            if nonzero(xb) {
                st.for_col(j, |row, v| r[row] -= v * xb);
            }
        }
        f.ftran(r);
        let mut flipped = false;
        for (pos, &val) in r.iter().enumerate() {
            let j = st.basis[pos];
            if j >= n_expl && val < -vtol {
                let row = j - n_expl;
                st.art_sign[row] = -st.art_sign[row];
                flipped = true;
            }
        }
        if !flipped {
            break;
        }
    }
    st.since_refactor = 0;

    // Adopt the implied point, shifting the bounds of any basic variable
    // forced outside its range: a below-lower variable works on temporary
    // bounds `[value, lb]` with phase-0 cost −1, an above-upper one on
    // `[ub, value]` with cost +1, so the minimum of the phase-0 objective
    // is attained exactly when every shifted variable is back at (or
    // inside) its original range. This "phase 0" is what makes warm
    // starting a *grown* LP robust: the embedded old optimum is usually a
    // handful of pivots from feasibility, while a cold start would redo
    // the whole phase 1.
    shifted.clear();
    prep(cnt, costs0, st.nvars(), 0.0);
    for (pos, &val) in r.iter().enumerate() {
        let j = st.basis[pos];
        if j >= n_expl {
            st.x[j] = val.max(0.0);
        } else if val < st.lb[j] - vtol {
            shifted.push((j, st.lb[j], st.ub[j]));
            costs0[j] = -1.0;
            st.ub[j] = st.lb[j];
            st.lb[j] = val;
            st.x[j] = val;
        } else if val > st.ub[j] + vtol {
            shifted.push((j, st.lb[j], st.ub[j]));
            costs0[j] = 1.0;
            st.lb[j] = st.ub[j];
            st.ub[j] = val;
            st.x[j] = val;
        } else {
            st.x[j] = val.clamp(st.lb[j], st.ub[j]);
        }
    }

    // Early junk-basis rejection, before spending repair pivots: when the
    // mapped point violates bounds on a large fraction of the basis, the
    // snapshot came from a structurally unrelated model (e.g. a different
    // random instance whose variables merely share names) and the
    // bound-shifting repair would burn its whole pivot cap only to fail —
    // cold-starting immediately is cheaper. The ¼ threshold mirrors the
    // artificial-residual acceptance test below; genuinely related models
    // (grown grids, online residuals) shift only a handful of variables.
    if shifted.len() * 4 > m {
        // The shift loop above already moved these bounds; the cold crash
        // reuses them, so put them back before bailing.
        for &(j, lb0, ub0) in shifted.iter() {
            st.lb[j] = lb0;
            st.ub[j] = ub0;
        }
        return false;
    }

    if !shifted.is_empty() {
        let cap = 200 + 4 * m;
        let repaired = matches!(
            run_phase(st, f, costs0, opts, cap, cnt, ph, fx, rec),
            Ok(PhaseEnd::Optimal)
        );
        // Restore the original bounds and re-align nonbasic statuses with
        // them; any variable still outside its range means the repair
        // failed and the caller must cold-start.
        let mut still_bad = !repaired;
        for &(j, lb0, ub0) in shifted.iter() {
            st.lb[j] = lb0;
            st.ub[j] = ub0;
            if st.x[j] < lb0 - vtol || st.x[j] > ub0 + vtol {
                still_bad = true;
            } else if st.vstat[j] != VStat::Basic {
                if (st.x[j] - ub0).abs() <= (st.x[j] - lb0).abs() && ub0.is_finite() {
                    st.vstat[j] = VStat::AtUpper;
                    st.x[j] = ub0;
                } else {
                    st.vstat[j] = VStat::AtLower;
                    st.x[j] = lb0;
                }
            } else {
                st.x[j] = st.x[j].clamp(lb0, ub0);
            }
        }
        if still_bad {
            return false;
        }
    }

    // Accept unless the mapping left so much residual on artificials that
    // phase 1 would redo everything anyway.
    let art_rows = st.x[n_expl..].iter().filter(|&&v| v > opts.tol).count();
    art_rows * 4 <= m
}

/// Deterministic hash → uniform float in `(0, 1]` (splitmix64 finalizer).
fn splitmix_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64 + f64::EPSILON
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::{splitmix64, CycleMon};
    use crate::{Backend, LpError, Model, SolverOptions};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_2var() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), 36.
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0)], 4.0);
        m.le(&[(y, 2.0)], 12.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0 => (1,1), obj 2.
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        let y = m.add_nonneg(1.0, "y");
        m.eq(&[(x, 1.0), (y, 1.0)], 2.0);
        m.eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn ge_rows_need_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  => (4, 0), obj 8.
        let mut m = Model::new();
        let x = m.add_nonneg(2.0, "x");
        let y = m.add_nonneg(3.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.ge(&[(x, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_unit(1.0, "x");
        m.ge(&[(x, 1.0)], 2.0); // x >= 2 but x <= 1
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x"); // min -x, x unbounded above
        let y = m.add_nonneg(0.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 1.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - y with x,y in [0,1] and a loose row: optimum (1,1).
        let mut m = Model::new();
        let x = m.add_unit(-1.0, "x");
        let y = m.add_unit(-1.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 10.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -2.0);
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn upper_bounds_bind() {
        // min -3x - 2y, x <= 1.5, y <= 2, x + y <= 3 => x=1.5, y=1.5.
        let mut m = Model::new();
        let x = m.add_var(-3.0, 0.0, 1.5, "x");
        let y = m.add_var(-2.0, 0.0, 2.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.5);
        assert_close(s.value(y), 1.5);
        assert_close(s.objective, -7.5);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x >= 2, y >= 3, x + y >= 6 => obj 6.
        let mut m = Model::new();
        let x = m.add_var(1.0, 2.0, f64::INFINITY, "x");
        let y = m.add_var(1.0, 3.0, f64::INFINITY, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 6.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 6.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate LP (Beale-like): many ties in the ratio test.
        let mut m = Model::new();
        let x1 = m.add_nonneg(-0.75, "x1");
        let x2 = m.add_nonneg(150.0, "x2");
        let x3 = m.add_nonneg(-0.02, "x3");
        let x4 = m.add_nonneg(6.0, "x4");
        m.le(&[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        m.le(&[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        m.le(&[(x3, 1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn transportation_problem() {
        // 2 supplies (10, 20), 2 demands (15, 15); costs [[1,2],[3,1]].
        // Optimal: s0->d0:10, s1->d0:5, s1->d1:15 => 10 + 15 + 15 = 40.
        let mut m = Model::new();
        let x00 = m.add_nonneg(1.0, "x00");
        let x01 = m.add_nonneg(2.0, "x01");
        let x10 = m.add_nonneg(3.0, "x10");
        let x11 = m.add_nonneg(1.0, "x11");
        m.eq(&[(x00, 1.0), (x01, 1.0)], 10.0);
        m.eq(&[(x10, 1.0), (x11, 1.0)], 20.0);
        m.eq(&[(x00, 1.0), (x10, 1.0)], 15.0);
        m.eq(&[(x01, 1.0), (x11, 1.0)], 15.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 40.0);
    }

    #[test]
    fn free_row_zero_rhs() {
        // min x s.t. x - y = 0, y in [0,5], x >= 1 => x = y = 1.
        let mut m = Model::new();
        let x = m.add_var(1.0, 1.0, f64::INFINITY, "x");
        let y = m.add_var(0.0, 0.0, 5.0, "y");
        m.eq(&[(x, 1.0), (y, -1.0)], 0.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut m = Model::new();
        let x = m.add_nonneg(1.0, "x");
        m.le(&[(x, -1.0)], -3.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 3.0);
    }

    #[test]
    fn no_rows_bounds_only() {
        let mut m = Model::new();
        let x = m.add_var(-2.0, 0.0, 4.0, "x");
        let y = m.add_var(3.0, 1.0, 9.0, "y");
        let s = m.solve().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn no_rows_unbounded() {
        let mut m = Model::new();
        m.add_nonneg(-1.0, "x");
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn iteration_limit_respected() {
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        let y = m.add_nonneg(-1.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 1.0);
        let opts = SolverOptions {
            max_iters: 0,
            ..Default::default()
        };
        assert_eq!(m.solve_with(&opts).unwrap_err(), LpError::IterationLimit);
    }

    #[test]
    fn duals_on_tight_rows() {
        // min -x, x <= 4 via a 2-var row (a singleton row would be
        // presolved into a bound), x >= 0. Dual of the row is -1.
        let mut m = Model::new();
        let x = m.add_nonneg(-1.0, "x");
        let y = m.add_nonneg(10.0, "y");
        let r = m.le(&[(x, 1.0), (y, 1.0)], 4.0);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 4.0);
        assert_close(s.dual(r), -1.0);
    }

    #[test]
    fn interval_lp_shape_smoke() {
        // Miniature of the paper's LP (4)-(10): 2 flows, 3 intervals,
        // one shared capacity row per interval.
        let mut m = Model::new();
        let tau = [1.0, 2.0, 4.0, 8.0];
        let mut c_vars = Vec::new();
        let mut x_vars = vec![Vec::new(); 2];
        for (f, xv) in x_vars.iter_mut().enumerate() {
            let c = m.add_nonneg(1.0, format!("c{f}"));
            c_vars.push(c);
            for l in 0..3 {
                xv.push(m.add_unit(0.0, format!("x{f}{l}")));
            }
        }
        for f in 0..2 {
            let terms: Vec<_> = (0..3).map(|l| (x_vars[f][l], 1.0)).collect();
            m.eq(&terms, 1.0);
            let mut terms: Vec<_> = (0..3).map(|l| (x_vars[f][l], tau[l])).collect();
            terms.push((c_vars[f], -1.0));
            m.le(&terms, 0.0);
        }
        for l in 0..3 {
            let terms: Vec<_> = (0..2).map(|f| (x_vars[f][l], 1.0 / tau[l])).collect();
            m.le(&terms, 1.0);
        }
        let s = m.solve().unwrap();
        assert!(s.objective >= 1.0 - 1e-6 && s.objective <= 6.0 + 1e-6);
        assert!(m.max_violation(&s.values) < 1e-6);
    }

    #[test]
    fn backends_agree_on_small_lps() {
        let build = || {
            let mut m = Model::new();
            let x = m.add_nonneg(-3.0, "x");
            let y = m.add_unit(-5.0, "y");
            let z = m.add_var(2.0, 0.5, 4.0, "z");
            m.le(&[(x, 1.0), (y, 2.0)], 4.0);
            m.ge(&[(x, 1.0), (z, 1.0)], 2.0);
            m.eq(&[(y, 1.0), (z, 1.0)], 1.5);
            m
        };
        let m = build();
        let sparse = m
            .solve_with(&SolverOptions {
                backend: Backend::Sparse,
                ..Default::default()
            })
            .unwrap();
        let dense_inv = m
            .solve_with(&SolverOptions {
                backend: Backend::DenseInverse,
                ..Default::default()
            })
            .unwrap();
        let reference = m.solve_dense_reference().unwrap();
        assert_close(sparse.objective, dense_inv.objective);
        assert_close(sparse.objective, reference.objective);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new();
        let x = m.add_nonneg(2.0, "x");
        let y = m.add_nonneg(3.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.ge(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = m.solve().unwrap();
        assert!(s.stats.iterations > 0);
        assert_eq!(s.stats.iterations, s.iterations);
        assert!(s.stats.refactorizations >= 1);
        assert!(s.stats.factor_nnz > 0);
        assert_eq!(s.stats.rows, 2);
        assert!(!s.stats.warm_attempted);
    }

    #[test]
    fn warm_start_same_model_skips_pivots() {
        // Solve once, snapshot, re-solve warm: the warm solve must accept
        // the basis and spend (near) zero pivots.
        let mut m = Model::new();
        let x = m.add_nonneg(2.0, "x");
        let y = m.add_nonneg(3.0, "y");
        let z = m.add_unit(-1.0, "z");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.le(&[(x, 1.0), (z, 2.0)], 9.0);
        m.eq(&[(y, 1.0), (z, 1.0)], 2.0);
        let opts = SolverOptions::default();
        let (cold, basis) = m.solve_with_basis(&opts).unwrap();
        let (warm, _) = m.solve_warm(&basis, &opts).unwrap();
        assert_close(cold.objective, warm.objective);
        assert!(warm.stats.warm_attempted);
        assert!(warm.stats.warm_used, "same-model warm start must be taken");
        assert_eq!(warm.stats.phase1_iterations, 0);
        assert!(
            warm.stats.iterations <= cold.stats.iterations,
            "warm {} vs cold {}",
            warm.stats.iterations,
            cold.stats.iterations
        );
    }

    #[test]
    fn warm_start_on_grown_model() {
        // A model that literally grows: extra variables and rows appended.
        // Names are stable, so the snapshot maps onto the prefix.
        let build = |stages: usize| {
            let mut m = Model::new();
            let mut xs = Vec::new();
            for k in 0..stages {
                xs.push(m.add_unit(-((k + 1) as f64), format!("x{k}")));
            }
            // Shared budget plus per-pair couplings.
            let terms: Vec<_> = xs.iter().map(|&v| (v, 1.0)).collect();
            m.le(&terms, stages as f64 * 0.6);
            for w in xs.windows(2) {
                m.le(&[(w[0], 1.0), (w[1], 1.0)], 1.2);
            }
            m
        };
        let opts = SolverOptions::default();
        let small = build(6);
        let (_, basis) = small.solve_with_basis(&opts).unwrap();
        let big = build(10);
        let (warm, _) = big.solve_warm(&basis, &opts).unwrap();
        let cold = big.solve_with(&opts).unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(warm.stats.warm_used);
    }

    #[test]
    fn warm_start_from_unrelated_model_falls_back() {
        let mut a = Model::new();
        let p = a.add_nonneg(1.0, "p");
        let q = a.add_nonneg(1.0, "q");
        a.ge(&[(p, 1.0), (q, 1.0)], 2.0);
        let (_, basis) = a.solve_with_basis(&SolverOptions::default()).unwrap();

        let mut b = Model::new();
        let x = b.add_nonneg(-1.0, "x"); // entirely different names
        let y = b.add_nonneg(-1.0, "y");
        b.le(&[(x, 1.0), (y, 1.0)], 3.0);
        let (warm, _) = b.solve_warm(&basis, &SolverOptions::default()).unwrap();
        let cold = b.solve().unwrap();
        assert_close(warm.objective, cold.objective);
        assert!(warm.stats.warm_attempted);
        assert!(!warm.stats.warm_used, "no shared names: must cold start");
    }

    /// A zero-pivot budget on an LP whose crash basis is already feasible
    /// (all `Le` rows) returns the crash point as a `Truncated` solution
    /// with a valid lower bound, instead of an error.
    #[test]
    fn pivot_budget_truncates_phase2() {
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0)], 4.0);
        m.le(&[(y, 2.0)], 12.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);
        let opts = SolverOptions {
            budget: crate::Budget {
                max_pivots: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let s = m.solve_with(&opts).unwrap();
        assert_eq!(s.status, crate::Status::Truncated);
        assert!(s.stats.truncated);
        assert_eq!(s.iterations, 0);
        // The crash point is the origin: objective 0, true optimum -36.
        assert_close(s.objective, 0.0);
        assert!(
            s.bound <= -36.0 + 1e-6,
            "bound {} must under-estimate",
            s.bound
        );
        // An ample budget leaves the solve untouched.
        let opts = SolverOptions {
            budget: crate::Budget {
                max_pivots: Some(10_000),
                ..Default::default()
            },
            ..Default::default()
        };
        let s = m.solve_with(&opts).unwrap();
        assert_eq!(s.status, crate::Status::Optimal);
        assert_close(s.objective, -36.0);
        assert_close(s.bound, -36.0);
    }

    /// A budget that expires during phase 1 means there is no feasible
    /// point to degrade to: the solve fails with `BudgetExhausted`.
    #[test]
    fn pivot_budget_in_phase1_is_exhaustion() {
        let mut m = Model::new();
        let x = m.add_nonneg(2.0, "x");
        let y = m.add_nonneg(3.0, "y");
        m.ge(&[(x, 1.0), (y, 1.0)], 4.0);
        m.ge(&[(x, 1.0)], 1.0);
        let opts = SolverOptions {
            budget: crate::Budget {
                max_pivots: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(m.solve_with(&opts).unwrap_err(), LpError::BudgetExhausted);
    }

    /// A deadline already in the past truncates immediately (the deadline
    /// is checked against the same stamps the trace already takes, so an
    /// unset deadline perturbs nothing).
    #[test]
    fn past_deadline_truncates() {
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);
        let opts = SolverOptions {
            budget: crate::Budget {
                deadline: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let s = m.solve_with(&opts).unwrap();
        assert_eq!(s.status, crate::Status::Truncated);
    }

    /// A hook that fails the first factorization forces the rung-3 cold
    /// restart; one that fails a later factorization exercises rung 1.
    /// Either way the solve still reaches the true optimum.
    #[test]
    fn fault_hook_drives_recovery_ladder() {
        struct FailCalls {
            calls: usize,
            fail_from: usize,
            fail_to: usize,
        }
        impl crate::FaultHook for FailCalls {
            fn on_factorization(&mut self) -> bool {
                self.calls += 1;
                self.calls >= self.fail_from && self.calls < self.fail_to
            }
        }
        let mut m = Model::new();
        let x = m.add_nonneg(-3.0, "x");
        let y = m.add_nonneg(-5.0, "y");
        m.le(&[(x, 1.0)], 4.0);
        m.le(&[(y, 2.0)], 12.0);
        m.le(&[(x, 3.0), (y, 2.0)], 18.0);

        // Fault on the very first factorization only.
        let mut chain = crate::WarmChain::new();
        chain.set_fault_hook(Some(Box::new(FailCalls {
            calls: 0,
            fail_from: 1,
            fail_to: 2,
        })));
        let s = chain.solve(&m, &SolverOptions::default()).unwrap();
        assert_close(s.objective, -36.0);
        assert_eq!(
            s.stats.recovery_cold_restarts, 1,
            "first-factorization fault"
        );

        // Fault on the second factorization (the end-of-phase refactorize):
        // rung 1 (plain refactorize retry) recovers.
        let mut chain = crate::WarmChain::new();
        chain.set_fault_hook(Some(Box::new(FailCalls {
            calls: 0,
            fail_from: 2,
            fail_to: 3,
        })));
        let s = chain.solve(&m, &SolverOptions::default()).unwrap();
        assert_close(s.objective, -36.0);
        assert_eq!(s.stats.recovery_refactorizations, 1, "mid-solve fault");
        assert_eq!(s.stats.recovery_cold_restarts, 0);

        // A hook that never stops failing exhausts the ladder.
        struct AlwaysFail;
        impl crate::FaultHook for AlwaysFail {
            fn on_factorization(&mut self) -> bool {
                true
            }
        }
        let mut chain = crate::WarmChain::new();
        chain.set_fault_hook(Some(Box::new(AlwaysFail)));
        assert!(matches!(
            chain.solve(&m, &SolverOptions::default()),
            Err(LpError::Numerical(_))
        ));
    }

    /// The anti-cycling monitor: signatures are XOR toggles, so revisiting
    /// a basis state during a degenerate stall is detected exactly once,
    /// and any nondegenerate step clears the history.
    #[test]
    fn cycle_monitor_detects_revisit() {
        let basis = vec![3usize, 7, 11];
        let mut cyc = CycleMon::new(&basis);
        // A 2-cycle: swap 3↔5, swap back, swap again. Signatures are only
        // recorded *after* each pivot, so detection fires on the pivot
        // that re-produces an already-buffered signature.
        cyc.sig ^= splitmix64(3) ^ splitmix64(5);
        assert!(!cyc.observe(true), "fresh signature");
        cyc.sig ^= splitmix64(5) ^ splitmix64(3);
        assert!(!cyc.observe(true), "start signature was never buffered");
        cyc.sig ^= splitmix64(3) ^ splitmix64(5);
        assert!(cyc.observe(true), "revisit must be flagged");
        assert!(cyc.locked, "detection locks Bland's rule");
        // Already locked: further revisits are not re-reported.
        cyc.sig ^= splitmix64(5) ^ splitmix64(3);
        assert!(!cyc.observe(true), "reported once per phase");

        // A nondegenerate step clears the ring: the old signature no
        // longer counts as a revisit.
        let mut cyc = CycleMon::new(&basis);
        cyc.sig ^= splitmix64(3) ^ splitmix64(5);
        assert!(!cyc.observe(true));
        cyc.sig ^= splitmix64(5) ^ splitmix64(3);
        assert!(!cyc.observe(false), "objective moved: not a cycle");
        cyc.sig ^= splitmix64(3) ^ splitmix64(5);
        assert!(!cyc.observe(true), "history was cleared");
    }
}
