//! Cross-validation of the production revised simplex against the
//! independent dense-tableau reference on randomized LPs.
//!
//! Both solvers must agree on feasibility/boundedness classification and,
//! when optimal, on the optimal objective value (primal points may differ —
//! LPs have non-unique optima — but objectives must match and both points
//! must be feasible).

// Test-local pragmatism: index-based loops mirror the math notation of the
// reference tableau, and the generated-LP tuples are verbose by nature.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use coflow_lp::{Cmp, LpError, Model, SolverOptions, LP_TOL};
use proptest::prelude::*;

/// A randomly generated LP description.
#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    costs: Vec<f64>,
    ubs: Vec<Option<f64>>,
    rows: Vec<(u8, f64, Vec<(usize, f64)>)>, // (cmp code, rhs, terms)
}

fn arb_lp(max_vars: usize, max_rows: usize, bounded: bool) -> impl Strategy<Value = RandomLp> {
    (2..=max_vars).prop_flat_map(move |n| {
        let costs = proptest::collection::vec(-5.0f64..5.0, n);
        let ubs = proptest::collection::vec(
            prop_oneof![
                3 => (0.5f64..6.0).prop_map(Some),
                if bounded { 0 } else { 2 } => Just(None)
            ],
            n,
        );
        let rows = proptest::collection::vec(
            (
                0u8..3,
                -4.0f64..8.0,
                proptest::collection::vec((0..n, -3.0f64..3.0), 1..=n.min(4)),
            ),
            1..=max_rows,
        );
        (Just(n), costs, ubs, rows).prop_map(|(n, costs, ubs, rows)| RandomLp {
            n,
            costs,
            ubs,
            rows,
        })
    })
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lp.n)
        .map(|j| {
            m.add_var(
                lp.costs[j],
                0.0,
                lp.ubs[j].unwrap_or(f64::INFINITY),
                format!("x{j}"),
            )
        })
        .collect();
    for (code, rhs, terms) in &lp.rows {
        let cmp = match code {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let t: Vec<_> = terms.iter().map(|&(j, c)| (vars[j], c)).collect();
        m.add_row(cmp, *rhs, &t);
    }
    m
}

fn classify(r: &Result<coflow_lp::Solution, LpError>) -> &'static str {
    match r {
        Ok(_) => "optimal",
        Err(LpError::Infeasible) => "infeasible",
        Err(LpError::Unbounded) => "unbounded",
        Err(e) => panic!("unexpected solver failure: {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Fully bounded random LPs: never unbounded, so the classification is
    /// binary and objectives must match exactly when feasible.
    #[test]
    fn bounded_lps_agree(lp in arb_lp(6, 5, true)) {
        let m = build(&lp);
        let fast = m.solve();
        let slow = m.solve_dense_reference();
        prop_assert_eq!(classify(&fast), classify(&slow));
        if let (Ok(f), Ok(s)) = (&fast, &slow) {
            let scale = 1.0 + f.objective.abs().max(s.objective.abs());
            prop_assert!(
                (f.objective - s.objective).abs() / scale < 1e-6,
                "objective mismatch: fast {} vs reference {}", f.objective, s.objective
            );
            prop_assert!(m.max_violation(&f.values) < 1e-6);
            prop_assert!(m.max_violation(&s.values) < 1e-6);
        }
    }

    /// Mixed LPs (some unbounded variables): classifications still agree.
    #[test]
    fn mixed_lps_agree(lp in arb_lp(5, 4, false)) {
        let m = build(&lp);
        let fast = m.solve();
        let slow = m.solve_dense_reference();
        prop_assert_eq!(classify(&fast), classify(&slow));
        if let (Ok(f), Ok(s)) = (&fast, &slow) {
            let scale = 1.0 + f.objective.abs().max(s.objective.abs());
            prop_assert!((f.objective - s.objective).abs() / scale < 1e-6);
            prop_assert!(m.max_violation(&f.values) < 1e-6);
        }
    }

    /// LPs built to be feasible by construction (rows anchored at a random
    /// interior point): solver must return optimal with objective <= the
    /// witness point's objective.
    #[test]
    fn feasible_by_construction(
        n in 2usize..7,
        seedvals in proptest::collection::vec(0.1f64..2.0, 7),
        costs in proptest::collection::vec(-3.0f64..3.0, 7),
        rows in proptest::collection::vec(
            (0u8..2, proptest::collection::vec((0usize..7, 0.1f64..2.0), 1..4)),
            1..6
        ),
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_var(costs[j], 0.0, 3.0, format!("x{j}")))
            .collect();
        let witness: Vec<f64> = (0..n).map(|j| seedvals[j].min(3.0)).collect();
        for (code, terms) in &rows {
            let t: Vec<_> = terms
                .iter()
                .filter(|(j, _)| *j < n)
                .map(|&(j, c)| (vars[j], c))
                .collect();
            if t.is_empty() { continue; }
            let act: f64 = t.iter().map(|&(v, c)| {
                let idx = vars.iter().position(|&x| x == v).unwrap();
                c * witness[idx]
            }).sum();
            // Anchor the row so the witness satisfies it with slack.
            if *code == 0 {
                m.le(&t, act + 0.5);
            } else {
                m.ge(&t, act - 0.5);
            }
        }
        let sol = m.solve().expect("feasible by construction");
        let witness_obj: f64 = (0..n).map(|j| costs[j] * witness[j]).sum();
        prop_assert!(sol.objective <= witness_obj + 1e-6);
        prop_assert!(m.max_violation(&sol.values) < 1e-6);
    }
}

/// A degenerate sparse LP description: coefficients, costs, and right-hand
/// sides drawn from tiny discrete sets, so reduced costs and ratio-test
/// limits tie constantly — the regime where naive pivoting cycles or
/// stalls, and where the sparse-LU backend must still match the oracle.
#[derive(Debug, Clone)]
struct DegenerateLp {
    n: usize,
    costs: Vec<u8>,                        // index into COSTS
    rows: Vec<(u8, u8, Vec<(usize, u8)>)>, // (cmp, rhs index, (var, coef index))
    dup_row: usize,                        // one row repeated verbatim
}

const DEG_COSTS: [f64; 4] = [-1.0, 0.0, 1.0, -1.0]; // repeated values: cost ties
const DEG_COEFS: [f64; 3] = [0.5, 1.0, 2.0];
const DEG_RHS: [f64; 4] = [0.0, 1.0, 1.0, 2.0]; // zero and repeated rhs

fn arb_degenerate(max_vars: usize, max_rows: usize) -> impl Strategy<Value = DegenerateLp> {
    (3..=max_vars).prop_flat_map(move |n| {
        let costs = proptest::collection::vec(0u8..4, n);
        let rows = proptest::collection::vec(
            (
                0u8..3,
                0u8..4,
                proptest::collection::vec((0..n, 0u8..3), 1..=n.min(3)),
            ),
            2..=max_rows,
        );
        (Just(n), costs, rows, 0usize..max_rows).prop_map(|(n, costs, rows, dup_row)| {
            DegenerateLp {
                n,
                costs,
                rows,
                dup_row,
            }
        })
    })
}

fn build_degenerate(lp: &DegenerateLp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lp.n)
        .map(|j| m.add_var(DEG_COSTS[lp.costs[j] as usize], 0.0, 1.0, format!("x{j}")))
        .collect();
    let mut add = |(code, rhs, terms): &(u8, u8, Vec<(usize, u8)>)| {
        let cmp = match code {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let t: Vec<_> = terms
            .iter()
            .map(|&(j, c)| (vars[j], DEG_COEFS[c as usize]))
            .collect();
        m.add_row(cmp, DEG_RHS[*rhs as usize], &t);
    };
    for row in &lp.rows {
        add(row);
    }
    // Repeat one row verbatim: duplicate constraints are a classic source
    // of degenerate bases (dependent artificials in phase 1).
    add(&lp.rows[lp.dup_row % lp.rows.len()]);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Degenerate sparse LPs: the production sparse-LU backend and the
    /// dense-tableau oracle must agree on classification and, when
    /// optimal, on the objective within `LP_TOL` scale.
    #[test]
    fn degenerate_sparse_matches_reference(lp in arb_degenerate(8, 6)) {
        let m = build_degenerate(&lp);
        let fast = m.solve();
        let slow = m.solve_dense_reference();
        prop_assert_eq!(classify(&fast), classify(&slow));
        if let (Ok(f), Ok(s)) = (&fast, &slow) {
            let scale = 1.0 + f.objective.abs().max(s.objective.abs());
            prop_assert!(
                (f.objective - s.objective).abs() / scale < 10.0 * LP_TOL,
                "objective mismatch: sparse {} vs reference {}", f.objective, s.objective
            );
            prop_assert!(m.max_violation(&f.values) < 10.0 * LP_TOL);
        }
    }

    /// Warm starting a *grown* model from the smaller model's basis must
    /// reproduce the cold objective exactly (warm starts are an
    /// optimization, never a correctness risk) — including when the shared
    /// rows' right-hand sides change with the growth.
    #[test]
    fn warm_start_grown_matches_cold(
        small in 3usize..7,
        extra in 1usize..5,
        costs in proptest::collection::vec(1u8..6, 12),
        budget_num in 3usize..9,  // budget rhs = stages * budget_num / 10
        pair_cap in 1usize..3,    // window rhs = 0.6 * pair_cap
    ) {
        let build = |stages: usize| {
            let mut m = Model::new();
            let xs: Vec<_> = (0..stages)
                .map(|k| m.add_unit(-(costs[k % costs.len()] as f64), format!("x{k}")))
                .collect();
            let terms: Vec<_> = xs.iter().map(|&v| (v, 1.0)).collect();
            // The budget rhs scales with the stage count, so the grown
            // model changes this shared row's rhs — exercising the
            // bound-shifting warm-start repair.
            m.le(&terms, stages as f64 * budget_num as f64 / 10.0);
            for w in xs.windows(2) {
                m.le(&[(w[0], 1.0), (w[1], 1.0)], 0.6 * pair_cap as f64);
            }
            m
        };
        let opts = SolverOptions::default();
        let (_, basis) = build(small).solve_with_basis(&opts).unwrap();
        let big = build(small + extra);
        let (warm, _) = big.solve_warm(&basis, &opts).unwrap();
        let cold = big.solve_with(&opts).unwrap();
        let scale = 1.0 + warm.objective.abs().max(cold.objective.abs());
        prop_assert!(
            (warm.objective - cold.objective).abs() / scale < 10.0 * LP_TOL,
            "warm {} vs cold {}", warm.objective, cold.objective
        );
        prop_assert!(warm.stats.warm_attempted);
        prop_assert!(big.max_violation(&warm.values) < 10.0 * LP_TOL);
    }
}

/// Deterministic regression battery: shapes that historically break naive
/// simplex implementations.
#[test]
fn regression_battery() {
    // Klee-Minty-ish 3D cube (exponential for greedy Dantzig, still must
    // terminate correctly).
    let mut m = Model::new();
    let x1 = m.add_nonneg(-100.0, "x1");
    let x2 = m.add_nonneg(-10.0, "x2");
    let x3 = m.add_nonneg(-1.0, "x3");
    m.le(&[(x1, 1.0)], 1.0);
    m.le(&[(x1, 20.0), (x2, 1.0)], 100.0);
    m.le(&[(x1, 200.0), (x2, 20.0), (x3, 1.0)], 10000.0);
    let s = m.solve().unwrap();
    let r = m.solve_dense_reference().unwrap();
    assert!((s.objective - r.objective).abs() < 1e-6);
    assert!((s.objective - (-10000.0)).abs() < 1e-5);

    // Redundant equalities (rank-deficient A rows describing the same
    // hyperplane) — phase 1 must cope with dependent artificial columns.
    let mut m = Model::new();
    let x = m.add_nonneg(1.0, "x");
    let y = m.add_nonneg(1.0, "y");
    m.eq(&[(x, 1.0), (y, 1.0)], 2.0);
    m.eq(&[(x, 2.0), (y, 2.0)], 4.0); // same plane scaled
    let s = m.solve().unwrap();
    assert!((s.objective - 2.0).abs() < 1e-6);

    // Equality chain forcing long pivoting sequences.
    let mut m = Model::new();
    let vars: Vec<_> = (0..12)
        .map(|i| m.add_var(1.0, 0.0, 10.0, format!("v{i}")))
        .collect();
    for pair in vars.windows(2) {
        m.eq(&[(pair[0], 1.0), (pair[1], -1.0)], 0.0);
    }
    m.ge(&[(vars[0], 1.0)], 3.0);
    let s = m.solve().unwrap();
    assert!(
        (s.objective - 36.0).abs() < 1e-5,
        "all twelve equal 3, obj {}",
        s.objective
    );
}

/// A medium LP with the structure of the paper's path-based formulation:
/// many [0,1] interval variables, per-flow convexity rows, per-edge-interval
/// capacity rows. Checks the solver at a realistic (if small) scale.
#[test]
fn pathlike_lp_medium() {
    let flows = 24usize;
    let paths = 3usize;
    let intervals = 8usize;
    let edges = 20usize;
    let tau: Vec<f64> = (0..=intervals)
        .map(|l| {
            if l == 0 {
                0.0
            } else {
                2.0f64.powi(l as i32 - 1)
            }
        })
        .collect();
    let mut m = Model::new();
    // x[f][p][l], completion c[f]
    let mut xv = vec![vec![vec![None; intervals]; paths]; flows];
    let mut cv = Vec::new();
    for f in 0..flows {
        cv.push(m.add_nonneg(1.0, format!("c{f}")));
        for p in 0..paths {
            for l in 0..intervals {
                xv[f][p][l] = Some(m.add_unit(0.0, format!("x{f}:{p}:{l}")));
            }
        }
    }
    for f in 0..flows {
        // Convexity.
        let mut terms = Vec::new();
        for p in 0..paths {
            for l in 0..intervals {
                terms.push((xv[f][p][l].unwrap(), 1.0));
            }
        }
        m.eq(&terms, 1.0);
        // Completion definition: c_f >= sum tau_l x.
        let mut terms: Vec<_> = (0..paths)
            .flat_map(|p| (0..intervals).map(move |l| (p, l)))
            .map(|(p, l)| (xv[f][p][l].unwrap(), tau[l + 1]))
            .collect();
        terms.push((cv[f], -1.0));
        m.le(&terms, 0.0);
    }
    // Capacity rows: flow f path p uses edges {(f+p) % E, (f+p+1) % E}.
    for l in 0..intervals {
        for e in 0..edges {
            let mut terms = Vec::new();
            for f in 0..flows {
                for p in 0..paths {
                    let e1 = (f + p) % edges;
                    let e2 = (f + p + 1) % edges;
                    if e == e1 || e == e2 {
                        // size 1 flows: bandwidth = x / interval length
                        let len = tau[l + 1] - tau[l];
                        terms.push((xv[f][p][l].unwrap(), 1.0 / len));
                    }
                }
            }
            if !terms.is_empty() {
                m.le(&terms, 1.0);
            }
        }
    }
    let sol = m.solve().expect("path-like LP should be feasible");
    assert!(m.max_violation(&sol.values) < 1e-6);
    assert!(sol.objective > 0.0);
    // Every completion must be >= earliest interval end where work fits.
    for f in 0..flows {
        assert!(
            sol.value(cv[f]) >= tau[1] - 1e-6,
            "flow {f} finishes impossibly early"
        );
    }
}
