//! Thread-count invariance of the parallel pricing paths.
//!
//! The candidate-list refill scan and the full devex scan both cut large
//! windows into fixed contiguous sections, one scoped worker per section,
//! and merge the per-section bounded top lists under a total order on the
//! candidate values. That merge is partition-invariant (every global
//! top-`K` element is in its own section's top-`K`), so the pivot
//! sequence — and therefore every solver output — must be byte-identical
//! at any `SolverOptions::threads`. These tests pin that contract: not
//! "close objectives", but identical iteration counts, identical pricing
//! counters, bit-identical objectives and primal values, and equal bases.

use coflow_lp::{Basis, Cmp, Model, Pricing, Solution, SolverOptions};

/// A degenerate transportation LP: `n x n` assignment-like structure with
/// equality supplies and slack-bearing demand caps. Dual-degenerate enough
/// to exercise candidate-list churn, Bland fallbacks, and refill scans.
fn transport(n: usize) -> Model {
    let mut m = Model::new();
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            row.push(m.add_nonneg(((i * 7 + j * 13) % 10) as f64 + 1.0, format!("x{i}_{j}")));
        }
    }
    let total: f64 = (0..n).map(|i| 1.0 + (i % 3) as f64).sum();
    for (i, row) in vars.iter().enumerate() {
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_row(Cmp::Eq, 1.0 + (i % 3) as f64, &terms);
    }
    for j in 0..n {
        let terms: Vec<_> = vars.iter().map(|row| (row[j], 1.0)).collect();
        m.add_row(Cmp::Le, total / n as f64 + 1.0, &terms);
    }
    m
}

/// A small mixed-row LP family parameterized by a seed: bounded variables,
/// all three row senses, deterministic pseudo-random data.
fn mixed(seed: u64, n: usize, rows: usize) -> Model {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut m = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|j| {
            m.add_var(
                next() * 10.0 - 5.0,
                0.0,
                0.5 + next() * 5.0,
                format!("x{j}"),
            )
        })
        .collect();
    for r in 0..rows {
        let cmp = match r % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(j, _)| (j + r) % 3 != 0)
            .map(|(_, &v)| (v, next() * 6.0 - 3.0))
            .collect();
        let rhs = match cmp {
            Cmp::Ge => -(next() * 2.0),
            _ => next() * 8.0,
        };
        m.add_row(cmp, rhs, &terms);
    }
    m
}

fn solve(m: &Model, pricing: Pricing, threads: usize) -> (Solution, Basis) {
    let opts = SolverOptions {
        verify: false,
        pricing,
        threads,
        ..Default::default()
    };
    m.solve_with_basis(&opts).expect("LP must solve")
}

/// Asserts byte-identical solver outputs (not approximate agreement).
fn assert_identical(label: &str, a: &(Solution, Basis), b: &(Solution, Basis), threads: usize) {
    let ctx = format!("{label}: threads={threads} vs 1");
    assert_eq!(
        a.0.objective.to_bits(),
        b.0.objective.to_bits(),
        "{ctx}: objective bits differ"
    );
    assert_eq!(a.0.stats.iterations, b.0.stats.iterations, "{ctx}: pivots");
    assert_eq!(
        a.0.stats.pricing_full_scans, b.0.stats.pricing_full_scans,
        "{ctx}: full scans"
    );
    assert_eq!(
        a.0.stats.pricing_list_hits, b.0.stats.pricing_list_hits,
        "{ctx}: list hits"
    );
    assert_eq!(a.0.values.len(), b.0.values.len(), "{ctx}: value count");
    for (j, (x, y)) in a.0.values.iter().zip(&b.0.values).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: value {j} bits differ");
    }
    assert_eq!(a.1, b.1, "{ctx}: bases differ");
}

/// Candidate pricing: identical pivot sequence and outputs at 1/2/4/8
/// threads on a degenerate transport LP (heavy list churn + refills).
#[test]
fn candidate_pricing_thread_invariant_on_transport() {
    let m = transport(24);
    let base = solve(&m, Pricing::Candidate, 1);
    assert!(base.0.stats.pricing_list_hits > 0, "list must serve pivots");
    assert_eq!(base.0.stats.threads, 1);
    for threads in [2, 4, 8] {
        let sol = solve(&m, Pricing::Candidate, threads);
        assert_eq!(sol.0.stats.threads, threads, "threads stat must record");
        assert_identical("candidate/transport", &sol, &base, threads);
    }
}

/// Candidate pricing stays thread-invariant across a family of mixed-row
/// LPs (bounded variables, all row senses).
#[test]
fn candidate_pricing_thread_invariant_on_mixed_lps() {
    for seed in 0..12u64 {
        let m = mixed(seed, 40, 18);
        let base = solve(&m, Pricing::Candidate, 1);
        for threads in [2, 4, 8] {
            let sol = solve(&m, Pricing::Candidate, threads);
            assert_identical(&format!("candidate/mixed[{seed}]"), &sol, &base, threads);
        }
    }
}

/// Full pricing on an LP large enough (`nv >= 4096`) that the scan is
/// genuinely cut into multiple worker sections: the sectioned merge must
/// reproduce the serial scan bit-for-bit.
#[test]
fn full_pricing_sectioned_scan_matches_serial() {
    let m = transport(70); // 4900 structural columns: sections engage
    let base = solve(&m, Pricing::Full, 1);
    for threads in [2, 4, 8] {
        let sol = solve(&m, Pricing::Full, threads);
        assert_identical("full/transport", &sol, &base, threads);
    }
}

/// The default partial pricing ignores `threads` by design (its windows
/// are too small to amortize spawns): outputs are identical with the knob
/// set, and candidate pricing agrees with it on the optimum.
#[test]
fn partial_pricing_unaffected_by_thread_knob() {
    let m = transport(24);
    let a = solve(&m, Pricing::Partial, 1);
    let b = solve(&m, Pricing::Partial, 4);
    assert_identical("partial/transport", &b, &a, 4);
    let c = solve(&m, Pricing::Candidate, 4);
    assert!(
        (a.0.objective - c.0.objective).abs() <= 1e-6 * (1.0 + a.0.objective.abs()),
        "partial {} vs candidate {}",
        a.0.objective,
        c.0.objective
    );
}

/// Under the logical clock the rendered trace depends only on the
/// *sequence* of recording calls, and the pivot sequence is already
/// thread-invariant (the tests above), so the whole JSONL trace — spans,
/// accumulators, counters, histograms — must be byte-identical at any
/// thread count.
#[test]
fn logical_clock_traces_byte_identical_across_threads() {
    let trace_at = |threads: usize| {
        let m = transport(24);
        let mut chain = coflow_lp::WarmChain::new();
        chain.obs().set_mode(coflow_obs::ClockMode::Logical);
        let opts = SolverOptions {
            verify: false,
            pricing: Pricing::Candidate,
            threads,
            ..Default::default()
        };
        chain.solve(&m, &opts).expect("LP must solve");
        chain.take_trace().render_jsonl()
    };
    let base = trace_at(1);
    assert!(!base.is_empty(), "trace must not be empty");
    for threads in [2, 4] {
        let t = trace_at(threads);
        assert_eq!(t, base, "threads={threads}: trace bytes differ from serial");
    }
}
