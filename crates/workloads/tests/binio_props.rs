//! Property tests for the binary snapshot format.
//!
//! * **Round-trip fidelity** — for random generated instances,
//!   JSON → binary → JSON is *byte-identical*: the binary format stores
//!   every `f64` as its bit pattern, and the JSON writer uses shortest
//!   round-trip float formatting, so no information can drift through a
//!   format conversion.
//! * **Corruption safety** — truncating a snapshot at any point, or
//!   scribbling over its header, yields a typed [`BinError`], never a
//!   panic, a bogus instance, or an unbounded allocation.

use coflow_workloads::binio::{from_bin, to_bin, BinError, MAGIC};
use coflow_workloads::gen::{generate, GenConfig};
use coflow_workloads::io::to_json;
use proptest::prelude::*;

/// A random instance: varied topology, coflow count, width, and timing,
/// with a deterministic sprinkling of committed paths (binary snapshots
/// must carry the full routed state, not just raw demands).
fn arb_instance() -> impl Strategy<Value = coflow_core::Instance> {
    (0usize..3, 1usize..5, 1usize..5, 0u64..1000).prop_map(|(topo, n, w, seed)| {
        let t = match topo {
            0 => coflow_net::topo::fat_tree(4, 1.0),
            1 => coflow_net::topo::line(4, 2.0),
            _ => coflow_net::topo::triangle(),
        };
        let mut inst = generate(
            &t,
            &GenConfig {
                n_coflows: n,
                width: w,
                size_mean: 3.0,
                arrival_rate: 0.5,
                seed,
                ..Default::default()
            },
        );
        // Commit a shortest path on every third flow.
        let graph = inst.graph.clone();
        for (k, c) in inst.coflows.iter_mut().enumerate() {
            for (j, f) in c.flows.iter_mut().enumerate() {
                if (k + j) % 3 == 0 && f.src != f.dst {
                    f.path = coflow_net::paths::bfs_shortest_path(&graph, f.src, f.dst);
                }
            }
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn json_bin_json_is_byte_identical(inst in arb_instance()) {
        let json1 = to_json(&inst).unwrap();
        let bytes = to_bin(&inst).unwrap();
        let back = from_bin(&bytes).unwrap();
        let json2 = to_json(&back).unwrap();
        prop_assert_eq!(json1, json2);
    }

    #[test]
    fn truncation_at_any_cut_is_a_typed_error(inst in arb_instance(), frac in 0.0f64..1.0) {
        let bytes = to_bin(&inst).unwrap();
        let cut = (((bytes.len() as f64) * frac) as usize).min(bytes.len() - 1);
        let err = from_bin(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, BinError::BadMagic | BinError::Truncated | BinError::Malformed(_)),
            "cut at {}: unexpected {:?}", cut, err
        );
    }

    #[test]
    fn header_corruption_is_a_typed_error(inst in arb_instance(), byte in 0usize..8, val in 0u8..255) {
        let mut bytes = to_bin(&inst).unwrap();
        // Force the chosen header byte to actually change.
        let val = if bytes[byte] == val { val.wrapping_add(1) } else { val };
        bytes[byte] = val;
        match from_bin(&bytes) {
            Err(BinError::BadMagic) => prop_assert!(byte < MAGIC.len()),
            Err(BinError::UnsupportedVersion(v)) => {
                prop_assert!(byte >= MAGIC.len());
                prop_assert!(v != coflow_workloads::binio::VERSION);
            }
            other => prop_assert!(false, "expected a header error, got {:?}", other),
        }
    }
}

/// Non-proptest spot check: a committed path survives the binary hop with
/// its exact edge sequence (the property tests only compare JSON text).
#[test]
fn committed_path_edges_survive() {
    let t = coflow_net::topo::fat_tree(4, 1.0);
    let mut inst = generate(
        &t,
        &GenConfig {
            n_coflows: 2,
            width: 3,
            seed: 7,
            ..Default::default()
        },
    );
    let graph = inst.graph.clone();
    let f = &mut inst.coflows[0].flows[0];
    let (src, dst) = (f.src, f.dst);
    if src != dst {
        f.path = coflow_net::paths::bfs_shortest_path(&graph, src, dst);
    }
    let back = from_bin(&to_bin(&inst).unwrap()).unwrap();
    assert_eq!(
        back.coflows[0].flows[0].path, inst.coflows[0].flows[0].path,
        "exact edge ids must survive"
    );
}
