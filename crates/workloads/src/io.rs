//! Instance snapshots: JSON (de)serialization for reproducibility.
//!
//! The experiment harness records the exact instances behind every reported
//! number. The build environment has no crates.io access, so instead of
//! `serde_json` this module hand-rolls the one format it needs: a small
//! JSON value type, a recursive-descent parser, and the instance snapshot
//! schema below. Floats are printed with Rust's shortest round-trip
//! formatting, so `to_json` → `from_json` reproduces every `f64` bit for
//! bit.
//!
//! ```json
//! {
//!   "nodes": ["host-0", null, ...],
//!   "edges": [[src, dst, cap], ...],
//!   "coflows": [
//!     {"weight": w,
//!      "flows": [{"src": s, "dst": d, "size": x, "release": r,
//!                 "path": [e0, e1] | null}, ...]},
//!     ...
//!   ]
//! }
//! ```

use coflow_core::model::{Coflow, FlowSpec, Instance};
use coflow_net::{EdgeId, Graph, NodeId, Path as NetPath};
use std::fmt;
use std::path::Path;

/// What went wrong, coarsely: callers that only want to distinguish
/// resource-limit rejections (hostile or corrupt input) from ordinary
/// malformed documents can match on this instead of the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JsonErrorKind {
    /// Syntax or schema violation (the common case).
    #[default]
    Malformed,
    /// Input exceeds [`MAX_INPUT_BYTES`]; parsing never started.
    TooLarge,
    /// Nesting exceeds [`MAX_DEPTH`]; parsing stopped at the ceiling.
    TooDeep,
}

/// Error produced by [`from_json`] / [`to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description, with byte offset for parse errors.
    pub message: String,
    /// Coarse classification (see [`JsonErrorKind`]).
    pub kind: JsonErrorKind,
}

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            kind: JsonErrorKind::Malformed,
        }
    }

    fn limit(kind: JsonErrorKind, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            kind,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serializes an instance to pretty JSON.
pub fn to_json(instance: &Instance) -> Result<String, JsonError> {
    // JSON has no representation for non-finite numbers; {:?} would emit
    // `inf`/`NaN` text that this module's own parser rejects on load.
    for (i, c) in instance.coflows.iter().enumerate() {
        if !c.weight.is_finite() {
            return Err(JsonError::new(format!(
                "coflow {i}: non-finite weight {}",
                c.weight
            )));
        }
        for (j, f) in c.flows.iter().enumerate() {
            if !f.size.is_finite() || !f.release.is_finite() {
                return Err(JsonError::new(format!(
                    "coflow {i} flow {j}: non-finite size {} or release {}",
                    f.size, f.release
                )));
            }
        }
    }
    let g = &instance.graph;
    let mut s = String::with_capacity(4096);
    s.push_str("{\n  \"nodes\": [");
    for (i, v) in g.nodes().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match g.label(v) {
            Some(l) => write_json_string(&mut s, l),
            None => s.push_str("null"),
        }
    }
    s.push_str("],\n  \"edges\": [\n");
    for (i, e) in g.edges().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        let (src, dst) = g.endpoints(e);
        s.push_str(&format!("    [{}, {}, {:?}]", src.0, dst.0, g.capacity(e)));
    }
    s.push_str("\n  ],\n  \"coflows\": [\n");
    for (i, c) in instance.coflows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!("    {{\"weight\": {:?}, \"flows\": [\n", c.weight));
        for (j, f) in c.flows.iter().enumerate() {
            if j > 0 {
                s.push_str(",\n");
            }
            s.push_str(&format!(
                "      {{\"src\": {}, \"dst\": {}, \"size\": {:?}, \"release\": {:?}, \"path\": ",
                f.src.0, f.dst.0, f.size, f.release
            ));
            match &f.path {
                None => s.push_str("null"),
                Some(p) => {
                    s.push('[');
                    for (k, e) in p.edges.iter().enumerate() {
                        if k > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&e.0.to_string());
                    }
                    s.push(']');
                }
            }
            s.push('}');
        }
        s.push_str("\n    ]}");
    }
    s.push_str("\n  ]\n}\n");
    Ok(s)
}

/// Parses an instance from JSON produced by [`to_json`].
pub fn from_json(s: &str) -> Result<Instance, JsonError> {
    let value = parse_json(s)?;
    let obj = value.as_object("top level")?;

    let mut graph = Graph::new();
    for (i, n) in obj
        .get("nodes", "top level")?
        .as_array("nodes")?
        .iter()
        .enumerate()
    {
        match n {
            Value::Null => {
                graph.add_node();
            }
            Value::Str(l) => {
                graph.add_labeled_node(l.clone());
            }
            _ => {
                return Err(JsonError::new(format!(
                    "nodes[{i}]: expected string or null"
                )))
            }
        }
    }
    let n_nodes = graph.node_count();
    for (i, e) in obj
        .get("edges", "top level")?
        .as_array("edges")?
        .iter()
        .enumerate()
    {
        let t = e.as_array(&format!("edges[{i}]"))?;
        if t.len() != 3 {
            return Err(JsonError::new(format!(
                "edges[{i}]: expected [src, dst, cap]"
            )));
        }
        let src = t[0].as_index(&format!("edges[{i}].src"), n_nodes)?;
        let dst = t[1].as_index(&format!("edges[{i}].dst"), n_nodes)?;
        let cap = t[2].as_f64(&format!("edges[{i}].cap"))?;
        if !(cap >= 0.0 && cap.is_finite()) {
            return Err(JsonError::new(format!("edges[{i}]: bad capacity {cap}")));
        }
        graph.add_edge(NodeId(src as u32), NodeId(dst as u32), cap);
    }
    let n_edges = graph.edge_count();

    let mut coflows = Vec::new();
    for (i, c) in obj
        .get("coflows", "top level")?
        .as_array("coflows")?
        .iter()
        .enumerate()
    {
        let ctx = format!("coflows[{i}]");
        let cobj = c.as_object(&ctx)?;
        let weight = cobj.get("weight", &ctx)?.as_f64(&format!("{ctx}.weight"))?;
        if !(weight >= 0.0 && weight.is_finite()) {
            return Err(JsonError::new(format!(
                "{ctx}: weight must be finite and >= 0, got {weight}"
            )));
        }
        let mut flows = Vec::new();
        for (j, f) in cobj
            .get("flows", &ctx)?
            .as_array(&format!("{ctx}.flows"))?
            .iter()
            .enumerate()
        {
            let fctx = format!("{ctx}.flows[{j}]");
            let fobj = f.as_object(&fctx)?;
            let src = fobj
                .get("src", &fctx)?
                .as_index(&format!("{fctx}.src"), n_nodes)?;
            let dst = fobj
                .get("dst", &fctx)?
                .as_index(&format!("{fctx}.dst"), n_nodes)?;
            let size = fobj.get("size", &fctx)?.as_f64(&format!("{fctx}.size"))?;
            let release = fobj
                .get("release", &fctx)?
                .as_f64(&format!("{fctx}.release"))?;
            // NaN fails every comparison, so `!(x >= 0)` catches NaN,
            // negatives, and (via is_finite) overflow literals like 1e999.
            if !(size >= 0.0 && size.is_finite()) {
                return Err(JsonError::new(format!(
                    "{fctx}: size must be finite and >= 0, got {size}"
                )));
            }
            if !(release >= 0.0 && release.is_finite()) {
                return Err(JsonError::new(format!(
                    "{fctx}: release must be finite and >= 0, got {release}"
                )));
            }
            let mut spec = FlowSpec::new(NodeId(src as u32), NodeId(dst as u32), size, release);
            match fobj.get("path", &fctx)? {
                Value::Null => {}
                p => {
                    let edges = p
                        .as_array(&format!("{fctx}.path"))?
                        .iter()
                        .enumerate()
                        .map(|(k, e)| {
                            e.as_index(&format!("{fctx}.path[{k}]"), n_edges)
                                .map(|x| EdgeId(x as u32))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    spec.path = Some(NetPath::new(edges));
                }
            }
            flows.push(spec);
        }
        coflows.push(Coflow::new(weight, flows));
    }
    Ok(Instance::new(graph, coflows))
}

/// Writes an instance snapshot to disk.
pub fn save(instance: &Instance, path: &Path) -> std::io::Result<()> {
    let json = to_json(instance).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

/// Loads an instance snapshot from disk.
pub fn load(path: &Path) -> std::io::Result<Instance> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s).map_err(std::io::Error::other)
}

/// Writes a trace snapshot as JSONL (one JSON object per line), creating
/// parent directories as needed. The bytes are exactly
/// [`coflow_obs::Trace::render_jsonl`] — the canonical serialization, so
/// logical-clock traces written here byte-diff clean across runs.
pub fn write_trace(path: &Path, trace: &coflow_obs::Trace) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, trace.render_jsonl())
}

/// Reads a JSONL trace file back as one [`Value`] per line (blank lines
/// skipped). Consumers dispatch on each object's `"type"` field; see the
/// `trace_view` tool for the main reader.
pub fn read_trace_lines(path: &Path) -> std::io::Result<Vec<Value>> {
    let s = std::fs::read_to_string(path)?;
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_json(l).map_err(std::io::Error::other))
        .collect()
}

// ---------------------------------------------------------------------------
// Minimal JSON value, parser, and string writer.
// ---------------------------------------------------------------------------

/// A JSON value.
///
/// Public so other crates in the workspace (the online engine's
/// [`EngineMetrics`-style] snapshots, the bench drivers) can build and
/// render machine-readable artifacts through the one hand-rolled JSON
/// implementation instead of each formatting strings by hand. Construct
/// values directly (`Value::Obj(vec![("k".into(), Value::Num(1.0))])`),
/// render with [`Value::render`], parse with [`parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`; non-finite values cannot be rendered).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Renders to a pretty-printed JSON string (2-space indent). Floats use
    /// Rust's shortest round-trip formatting, so [`parse_json`] ∘ `render`
    /// is the identity on every finite `f64`.
    ///
    /// # Panics
    /// On non-finite numbers (JSON cannot represent them; callers validate
    /// before building the tree, as [`to_json`] does for instances).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, level: usize) {
        let pad = |out: &mut String, l: usize| {
            for _ in 0..l {
                out.push_str("  ");
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                assert!(x.is_finite(), "JSON cannot represent {x}");
                out.push_str(&format!("{x:?}"));
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays stay on one line.
                if items
                    .iter()
                    .all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)))
                {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, level);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, level + 1);
                    v.write(out, level + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, level);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, level + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, level + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, level);
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object value (`None` for non-objects).
    pub fn lookup(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Value {
    fn as_array(&self, ctx: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Arr(v) => Ok(v),
            _ => Err(JsonError::new(format!("{ctx}: expected array"))),
        }
    }

    fn as_object(&self, ctx: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Obj(_) => Ok(self),
            _ => Err(JsonError::new(format!("{ctx}: expected object"))),
        }
    }

    fn get(&self, key: &str, ctx: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("{ctx}: missing key \"{key}\""))),
            _ => Err(JsonError::new(format!("{ctx}: expected object"))),
        }
    }

    fn as_f64(&self, ctx: &str) -> Result<f64, JsonError> {
        match self {
            Value::Num(x) => Ok(*x),
            _ => Err(JsonError::new(format!("{ctx}: expected number"))),
        }
    }

    /// A non-negative integer strictly below `bound`.
    fn as_index(&self, ctx: &str, bound: usize) -> Result<usize, JsonError> {
        let x = self.as_f64(ctx)?;
        // lint: allow(float_cmp) — fract() == 0.0 is the exact integrality test
        if x < 0.0 || x.fract() != 0.0 || !x.is_finite() {
            return Err(JsonError::new(format!(
                "{ctx}: expected a non-negative integer, got {x}"
            )));
        }
        let i = x as usize;
        if i >= bound {
            return Err(JsonError::new(format!(
                "{ctx}: index {i} out of range (< {bound})"
            )));
        }
        Ok(i)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting ceiling: snapshot files are 3 levels deep, so any input past
/// this is garbage — better a `JsonError` than recursing to stack overflow.
pub const MAX_DEPTH: usize = 64;

/// Input-size ceiling (bytes). The largest committed artifacts are a few
/// megabytes; a document past this is a corrupt or hostile file, rejected
/// up front ([`JsonErrorKind::TooLarge`]) before the parser allocates a
/// value tree proportional to it.
pub const MAX_INPUT_BYTES: usize = 64 << 20;

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_json(s: &str) -> Result<Value, JsonError> {
    if s.len() > MAX_INPUT_BYTES {
        return Err(JsonError::limit(
            JsonErrorKind::TooLarge,
            format!(
                "input is {} bytes, over the {MAX_INPUT_BYTES}-byte limit",
                s.len()
            ),
        ));
    }
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::limit(
                JsonErrorKind::TooDeep,
                format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos),
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        self.descend()?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_byte(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by to_json;
                            // reject rather than silently corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("bad UTF-8"))?;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use coflow_net::topo;

    #[test]
    fn json_roundtrip_preserves_instance() {
        let t = topo::fat_tree(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                n_coflows: 3,
                width: 4,
                ..Default::default()
            },
        );
        let json = to_json(&inst).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.coflow_count(), inst.coflow_count());
        assert_eq!(back.flow_count(), inst.flow_count());
        assert_eq!(back.graph.edge_count(), inst.graph.edge_count());
        for ((_, _, a), (_, _, b)) in inst.flows().zip(back.flows()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.size, b.size);
            // Shortest round-trip float formatting is exact.
            assert_eq!(a.release, b.release);
        }
        assert!(back.validate().is_empty());
    }

    #[test]
    fn roundtrip_preserves_labels_paths_and_capacities() {
        let t = topo::triangle();
        let p = coflow_net::paths::bfs_shortest_path(&t.graph, t.hosts[0], t.hosts[1]).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                2.5,
                vec![FlowSpec::with_path(
                    t.hosts[0],
                    t.hosts[1],
                    3.0,
                    0.25,
                    p.clone(),
                )],
            )],
        );
        let back = from_json(&to_json(&inst).unwrap()).unwrap();
        assert_eq!(back.graph.label(t.hosts[0]), inst.graph.label(t.hosts[0]));
        assert_eq!(back.coflows[0].weight, 2.5);
        assert_eq!(back.coflows[0].flows[0].path.as_ref(), Some(&p));
        for e in inst.graph.edges() {
            assert_eq!(back.graph.capacity(e), inst.graph.capacity(e));
            assert_eq!(back.graph.endpoints(e), inst.graph.endpoints(e));
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = topo::triangle();
        let inst = crate::suite::figure1_instance();
        let _ = t;
        let dir = std::env::temp_dir().join("coflow-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("fig1.json");
        save(&inst, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(back.flow_count(), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("").is_err());
        assert!(from_json("{}").is_err(), "missing keys must be reported");
        assert!(from_json("{\"nodes\": [], \"edges\": [[0, 0, 1.0]], \"coflows\": []}").is_err());
    }

    #[test]
    fn deep_nesting_rejected_not_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = from_json(&bomb).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);
        assert!(err.message.contains("nesting deeper than"), "{err}");
        // Exactly at the ceiling still parses (as unbalanced input, but
        // the depth guard itself must not fire one level early).
        let at_limit = "[".repeat(MAX_DEPTH);
        assert_eq!(
            from_json(&at_limit).unwrap_err().kind,
            JsonErrorKind::Malformed
        );
    }

    #[test]
    fn oversized_input_rejected_before_parsing() {
        let huge = "x".repeat(MAX_INPUT_BYTES + 1);
        let err = from_json(&huge).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooLarge);
        assert!(err.message.contains("byte limit"), "{err}");
        // Ordinary malformed input keeps the default kind.
        assert_eq!(
            from_json("{not json").unwrap_err().kind,
            JsonErrorKind::Malformed
        );
    }

    #[test]
    fn non_finite_values_rejected_at_save_time() {
        let t = topo::triangle();
        let flow = |size: f64, release: f64| FlowSpec::new(t.hosts[0], t.hosts[1], size, release);
        let bad_weight = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(f64::INFINITY, vec![flow(1.0, 0.0)])],
        );
        assert!(to_json(&bad_weight)
            .unwrap_err()
            .message
            .contains("non-finite weight"));
        let bad_size = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(1.0, vec![flow(f64::NAN, 0.0)])],
        );
        assert!(to_json(&bad_size).is_err());
        let bad_release = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(1.0, vec![flow(1.0, f64::INFINITY)])],
        );
        assert!(to_json(&bad_release).is_err());
    }

    #[test]
    fn negative_or_nonfinite_scalars_rejected_at_load_time() {
        let doc = |size: &str, release: &str, weight: &str| {
            format!(
                concat!(
                    "{{\"nodes\": [null, null], \"edges\": [[0, 1, 1.0]], \"coflows\": [",
                    "{{\"weight\": {}, \"flows\": [{{\"src\": 0, \"dst\": 1, ",
                    "\"size\": {}, \"release\": {}, \"path\": null}}]}}]}}"
                ),
                weight, size, release
            )
        };
        assert!(from_json(&doc("1.0", "0.0", "1.0")).is_ok());
        let err = from_json(&doc("1.0", "-0.5", "1.0")).unwrap_err();
        assert!(err.message.contains("release must be finite"), "{err}");
        let err = from_json(&doc("1.0", "1e999", "1.0")).unwrap_err();
        assert!(err.message.contains("release must be finite"), "{err}");
        let err = from_json(&doc("-2.0", "0.0", "1.0")).unwrap_err();
        assert!(err.message.contains("size must be finite"), "{err}");
        let err = from_json(&doc("1.0", "0.0", "-1.0")).unwrap_err();
        assert!(err.message.contains("weight must be finite"), "{err}");
    }

    #[test]
    fn value_render_parse_roundtrip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("online/\"smoke\"".into())),
            ("pivots".into(), Value::Num(42.0)),
            ("warm".into(), Value::Bool(true)),
            (
                "rates".into(),
                Value::Arr(vec![Value::Num(0.25), Value::Num(0.5)]),
            ),
            ("empty".into(), Value::Arr(vec![])),
            ("nothing".into(), Value::Null),
        ]);
        let back = parse_json(&v.render()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.lookup("pivots"), Some(&Value::Num(42.0)));
        assert_eq!(back.lookup("missing"), None);
    }

    #[test]
    fn trace_file_roundtrips_line_by_line() {
        let mut rec = coflow_obs::Recorder::new();
        rec.set_mode(coflow_obs::ClockMode::Logical);
        rec.enter(coflow_obs::SpanName::Solve);
        rec.enter(coflow_obs::SpanName::Phase2);
        rec.exit();
        rec.exit();
        let trace = rec.drain();
        let dir = std::env::temp_dir().join("coflow-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("trace.jsonl");
        write_trace(&p, &trace).unwrap();
        let lines = read_trace_lines(&p).unwrap();
        assert_eq!(
            lines[0].lookup("type"),
            Some(&Value::Str("meta".into())),
            "first line must be the meta record"
        );
        assert_eq!(
            lines[0].lookup("clock"),
            Some(&Value::Str("logical".into()))
        );
        let spans = lines
            .iter()
            .filter(|l| l.lookup("type") == Some(&Value::Str("span".into())))
            .count();
        assert_eq!(spans, 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn special_strings_roundtrip() {
        let mut g = Graph::new();
        g.add_labeled_node("weird \"label\"\nwith\tescapes\\and-unicode-\u{3b1}");
        g.add_node();
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let inst = Instance::new(g, vec![]);
        let back = from_json(&to_json(&inst).unwrap()).unwrap();
        assert_eq!(
            back.graph.label(NodeId(0)),
            inst.graph.label(NodeId(0)),
            "escaped label must survive the round trip"
        );
        assert_eq!(back.graph.label(NodeId(1)), None);
    }
}
