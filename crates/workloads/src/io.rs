//! Instance snapshots: JSON (de)serialization for reproducibility.
//!
//! The experiment harness records the exact instances behind every reported
//! number; `serde_json` is the one dependency added beyond the base budget
//! (justified in DESIGN.md §2).

use coflow_core::model::Instance;
use std::path::Path;

/// Serializes an instance to pretty JSON.
pub fn to_json(instance: &Instance) -> serde_json::Result<String> {
    serde_json::to_string_pretty(instance)
}

/// Parses an instance from JSON.
pub fn from_json(s: &str) -> serde_json::Result<Instance> {
    serde_json::from_str(s)
}

/// Writes an instance snapshot to disk.
pub fn save(instance: &Instance, path: &Path) -> std::io::Result<()> {
    let json = to_json(instance).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

/// Loads an instance snapshot from disk.
pub fn load(path: &Path) -> std::io::Result<Instance> {
    let s = std::fs::read_to_string(path)?;
    from_json(&s).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use coflow_net::topo;

    #[test]
    fn json_roundtrip_preserves_instance() {
        let t = topo::fat_tree(4, 1.0);
        let inst = generate(&t, &GenConfig { n_coflows: 3, width: 4, ..Default::default() });
        let json = to_json(&inst).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.coflow_count(), inst.coflow_count());
        assert_eq!(back.flow_count(), inst.flow_count());
        assert_eq!(back.graph.edge_count(), inst.graph.edge_count());
        for ((_, _, a), (_, _, b)) in inst.flows().zip(back.flows()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.size, b.size);
            // JSON float text can drop an ULP.
            assert!((a.release - b.release).abs() < 1e-9);
        }
        assert!(back.validate().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let t = topo::triangle();
        let inst = crate::suite::figure1_instance();
        let _ = t;
        let dir = std::env::temp_dir().join("coflow-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("fig1.json");
        save(&inst, &p).unwrap();
        let back = load(&p).unwrap();
        assert_eq!(back.flow_count(), 4);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(from_json("{not json").is_err());
    }
}
