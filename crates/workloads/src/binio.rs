//! Binary instance snapshots: compact, exact, versioned.
//!
//! JSON snapshots ([`crate::io`]) are the human-auditable format; this
//! module is the fast path for large instances (fat-tree sweeps, online
//! traces): no float parsing on load, no text rendering on save, and an
//! unambiguous on-disk size. Every `f64` is stored as its IEEE-754 bit
//! pattern, so a JSON → binary → JSON round trip is **byte-identical** —
//! the property the snapshot determinism tests pin down.
//!
//! ## Format (all integers little-endian)
//!
//! ```text
//! magic   4 bytes  "COFB"
//! version u32      1
//! section u32 len + payload   (× 3, in order: nodes, edges, coflows)
//! ```
//!
//! Section payloads:
//!
//! * **nodes** — `u32` count; per node a `u32` label byte-length
//!   (`u32::MAX` = unlabeled) followed by that many UTF-8 bytes;
//! * **edges** — `u32` count; per edge `u32 src`, `u32 dst`,
//!   `u64 cap_bits`;
//! * **coflows** — `u32` count; per coflow `u64 weight_bits`, `u32`
//!   flow count; per flow `u32 src`, `u32 dst`, `u64 size_bits`,
//!   `u64 release_bits`, then a `u32` path edge-count (`u32::MAX` = no
//!   prescribed path) followed by `u32` edge ids.
//!
//! Loads validate exactly what [`crate::io::from_json`] validates
//! (index bounds, finite non-negative scalars), with typed
//! [`BinError`]s instead of message strings so callers can distinguish
//! "wrong file type" from "truncated download" from "hostile contents".

use coflow_core::model::{Coflow, FlowSpec, Instance};
use coflow_net::{EdgeId, Graph, NodeId, Path as NetPath};
use std::fmt;
use std::path::Path;

/// The 4-byte magic prefix of every binary snapshot.
pub const MAGIC: [u8; 4] = *b"COFB";
/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Sentinel length meaning "absent" (unlabeled node / no prescribed path).
const NONE_LEN: u32 = u32::MAX;

/// Error produced by [`from_bin`] / [`to_bin`].
#[derive(Debug, Clone, PartialEq)]
pub enum BinError {
    /// The input does not start with [`MAGIC`] — not a binary snapshot.
    BadMagic,
    /// The snapshot declares a version this reader does not understand.
    UnsupportedVersion(u32),
    /// The input ended before the declared structure did.
    Truncated,
    /// Structurally complete but semantically invalid (bad index, negative
    /// size, non-UTF-8 label, trailing bytes, ...).
    Malformed(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "binary snapshot error: bad magic (not a COFB file)"),
            BinError::UnsupportedVersion(v) => {
                write!(f, "binary snapshot error: unsupported version {v}")
            }
            BinError::Truncated => write!(f, "binary snapshot error: truncated input"),
            BinError::Malformed(m) => write!(f, "binary snapshot error: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

fn malformed(msg: impl Into<String>) -> BinError {
    BinError::Malformed(msg.into())
}

// --- Writing. --------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Appends `body` to `out` as a length-prefixed section.
fn put_section(out: &mut Vec<u8>, body: &[u8]) {
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

/// Serializes an instance to the binary snapshot format.
///
/// Rejects non-finite scalars for parity with [`crate::io::to_json`]:
/// the formats must accept the same instances, or converting between
/// them could fail halfway.
pub fn to_bin(instance: &Instance) -> Result<Vec<u8>, BinError> {
    for (i, c) in instance.coflows.iter().enumerate() {
        if !c.weight.is_finite() {
            return Err(malformed(format!(
                "coflow {i}: non-finite weight {}",
                c.weight
            )));
        }
        for (j, f) in c.flows.iter().enumerate() {
            if !f.size.is_finite() || !f.release.is_finite() {
                return Err(malformed(format!(
                    "coflow {i} flow {j}: non-finite size {} or release {}",
                    f.size, f.release
                )));
            }
        }
    }
    let g = &instance.graph;

    let mut nodes = Vec::new();
    put_u32(&mut nodes, g.node_count() as u32);
    for v in g.nodes() {
        match g.label(v) {
            Some(l) => {
                put_u32(&mut nodes, l.len() as u32);
                nodes.extend_from_slice(l.as_bytes());
            }
            None => put_u32(&mut nodes, NONE_LEN),
        }
    }

    let mut edges = Vec::new();
    put_u32(&mut edges, g.edge_count() as u32);
    for e in g.edges() {
        let (src, dst) = g.endpoints(e);
        put_u32(&mut edges, src.0);
        put_u32(&mut edges, dst.0);
        put_f64(&mut edges, g.capacity(e));
    }

    let mut coflows = Vec::new();
    put_u32(&mut coflows, instance.coflow_count() as u32);
    for c in &instance.coflows {
        put_f64(&mut coflows, c.weight);
        put_u32(&mut coflows, c.flows.len() as u32);
        for f in &c.flows {
            put_u32(&mut coflows, f.src.0);
            put_u32(&mut coflows, f.dst.0);
            put_f64(&mut coflows, f.size);
            put_f64(&mut coflows, f.release);
            match &f.path {
                None => put_u32(&mut coflows, NONE_LEN),
                Some(p) => {
                    put_u32(&mut coflows, p.edges.len() as u32);
                    for e in &p.edges {
                        put_u32(&mut coflows, e.0);
                    }
                }
            }
        }
    }

    let mut out = Vec::with_capacity(12 + nodes.len() + edges.len() + coflows.len() + 12);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_section(&mut out, &nodes);
    put_section(&mut out, &edges);
    put_section(&mut out, &coflows);
    Ok(out)
}

// --- Reading. --------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos.checked_add(n).ok_or(BinError::Truncated)?)
            .ok_or(BinError::Truncated)?;
        self.pos += n;
        Ok(chunk)
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, BinError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(buf)))
    }

    /// A count prefix, sanity-bounded by the bytes that remain: every
    /// counted element occupies at least `min_elem_bytes`, so a count
    /// larger than `remaining / min_elem_bytes` cannot be satisfied —
    /// reject it *before* any `Vec::with_capacity` sees it.
    fn count(&mut self, min_elem_bytes: usize, ctx: &str) -> Result<usize, BinError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(malformed(format!(
                "{ctx}: count {n} exceeds what the input could hold"
            )));
        }
        Ok(n)
    }

    /// A section's length prefix; returns a sub-reader over its payload.
    fn section(&mut self, ctx: &str) -> Result<Reader<'a>, BinError> {
        let len = self.u32()? as usize;
        let body = self.take(len)?;
        let _ = ctx;
        Ok(Reader {
            bytes: body,
            pos: 0,
        })
    }

    fn finish(&self, ctx: &str) -> Result<(), BinError> {
        if self.pos != self.bytes.len() {
            return Err(malformed(format!("{ctx}: trailing bytes")));
        }
        Ok(())
    }
}

fn index(x: u32, bound: usize, ctx: &str) -> Result<u32, BinError> {
    if (x as usize) < bound {
        Ok(x)
    } else {
        Err(malformed(format!(
            "{ctx}: index {x} out of range (< {bound})"
        )))
    }
}

/// Parses an instance from bytes produced by [`to_bin`].
pub fn from_bin(bytes: &[u8]) -> Result<Instance, BinError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4).map_err(|_| BinError::BadMagic)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }

    let mut graph = Graph::new();
    let mut nodes = r.section("nodes")?;
    let n_nodes = nodes.count(4, "nodes")?;
    for i in 0..n_nodes {
        let len = nodes.u32()?;
        if len == NONE_LEN {
            graph.add_node();
        } else {
            let raw = nodes.take(len as usize)?;
            let label = std::str::from_utf8(raw)
                .map_err(|_| malformed(format!("nodes[{i}]: label is not UTF-8")))?;
            graph.add_labeled_node(label.to_string());
        }
    }
    nodes.finish("nodes")?;

    let mut edges = r.section("edges")?;
    let n_edges = edges.count(16, "edges")?;
    for i in 0..n_edges {
        let src = index(edges.u32()?, n_nodes, &format!("edges[{i}].src"))?;
        let dst = index(edges.u32()?, n_nodes, &format!("edges[{i}].dst"))?;
        let cap = edges.f64()?;
        if !(cap >= 0.0 && cap.is_finite()) {
            return Err(malformed(format!("edges[{i}]: bad capacity {cap}")));
        }
        graph.add_edge(NodeId(src), NodeId(dst), cap);
    }
    edges.finish("edges")?;

    let mut cf = r.section("coflows")?;
    let n_coflows = cf.count(12, "coflows")?;
    let mut coflows = Vec::with_capacity(n_coflows);
    for i in 0..n_coflows {
        let ctx = format!("coflows[{i}]");
        let weight = cf.f64()?;
        if !(weight >= 0.0 && weight.is_finite()) {
            return Err(malformed(format!(
                "{ctx}: weight must be finite and >= 0, got {weight}"
            )));
        }
        let n_flows = cf.count(28, &ctx)?;
        let mut flows = Vec::with_capacity(n_flows);
        for j in 0..n_flows {
            let fctx = format!("{ctx}.flows[{j}]");
            let src = index(cf.u32()?, n_nodes, &format!("{fctx}.src"))?;
            let dst = index(cf.u32()?, n_nodes, &format!("{fctx}.dst"))?;
            let size = cf.f64()?;
            let release = cf.f64()?;
            if !(size >= 0.0 && size.is_finite()) {
                return Err(malformed(format!(
                    "{fctx}: size must be finite and >= 0, got {size}"
                )));
            }
            if !(release >= 0.0 && release.is_finite()) {
                return Err(malformed(format!(
                    "{fctx}: release must be finite and >= 0, got {release}"
                )));
            }
            let mut spec = FlowSpec::new(NodeId(src), NodeId(dst), size, release);
            let plen = cf.u32()?;
            if plen != NONE_LEN {
                if (plen as usize).saturating_mul(4) > cf.bytes.len() - cf.pos {
                    return Err(malformed(format!(
                        "{fctx}.path: count {plen} exceeds what the input could hold"
                    )));
                }
                let mut es = Vec::with_capacity(plen as usize);
                for k in 0..plen {
                    es.push(EdgeId(index(
                        cf.u32()?,
                        n_edges,
                        &format!("{fctx}.path[{k}]"),
                    )?));
                }
                spec.path = Some(NetPath::new(es));
            }
            flows.push(spec);
        }
        coflows.push(Coflow::new(weight, flows));
    }
    cf.finish("coflows")?;
    r.finish("top level")?;
    Ok(Instance::new(graph, coflows))
}

/// Writes a binary instance snapshot to disk.
pub fn save_bin(instance: &Instance, path: &Path) -> std::io::Result<()> {
    let bytes = to_bin(instance).map_err(std::io::Error::other)?;
    std::fs::write(path, bytes)
}

/// Loads a binary instance snapshot from disk.
pub fn load_bin(path: &Path) -> std::io::Result<Instance> {
    let bytes = std::fs::read(path)?;
    from_bin(&bytes).map_err(std::io::Error::other)
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use coflow_net::topo;

    fn sample() -> Instance {
        let t = topo::fat_tree(4, 1.0);
        generate(
            &t,
            &GenConfig {
                n_coflows: 3,
                width: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn bin_roundtrip_preserves_instance_exactly() {
        let inst = sample();
        let bytes = to_bin(&inst).unwrap();
        let back = from_bin(&bytes).unwrap();
        assert_eq!(back.coflow_count(), inst.coflow_count());
        assert_eq!(back.flow_count(), inst.flow_count());
        for ((_, _, a), (_, _, b)) in inst.flows().zip(back.flows()) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.size.to_bits(), b.size.to_bits());
            assert_eq!(a.release.to_bits(), b.release.to_bits());
        }
        for e in inst.graph.edges() {
            assert_eq!(back.graph.capacity(e), inst.graph.capacity(e));
            assert_eq!(back.graph.endpoints(e), inst.graph.endpoints(e));
        }
        for v in inst.graph.nodes() {
            assert_eq!(back.graph.label(v), inst.graph.label(v));
        }
    }

    #[test]
    fn json_bin_json_is_byte_identical() {
        let inst = sample();
        let json1 = crate::io::to_json(&inst).unwrap();
        let back = from_bin(&to_bin(&inst).unwrap()).unwrap();
        let json2 = crate::io::to_json(&back).unwrap();
        assert_eq!(json1, json2);
    }

    #[test]
    fn paths_and_labels_roundtrip() {
        let t = topo::triangle();
        let p = coflow_net::paths::bfs_shortest_path(&t.graph, t.hosts[0], t.hosts[1]).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                2.5,
                vec![FlowSpec::with_path(
                    t.hosts[0],
                    t.hosts[1],
                    3.0,
                    0.25,
                    p.clone(),
                )],
            )],
        );
        let back = from_bin(&to_bin(&inst).unwrap()).unwrap();
        assert_eq!(back.coflows[0].flows[0].path.as_ref(), Some(&p));
        assert_eq!(
            back.graph.label(t.hosts[0]),
            inst.graph.label(t.hosts[0]),
            "labels must survive the round trip"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(from_bin(b"JSON").unwrap_err(), BinError::BadMagic);
        assert_eq!(from_bin(b"CO").unwrap_err(), BinError::BadMagic);
        assert_eq!(from_bin(b"").unwrap_err(), BinError::BadMagic);
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = to_bin(&sample()).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            from_bin(&bytes).unwrap_err(),
            BinError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = to_bin(&sample()).unwrap();
        for cut in 8..bytes.len() {
            let err = from_bin(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, BinError::Truncated | BinError::Malformed(_)),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn hostile_counts_rejected_without_allocation() {
        // A coflows section declaring u32::MAX-1 coflows in a 4-byte body.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // nodes section
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // edges section
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // coflows section
        bytes.extend_from_slice(&(u32::MAX - 1).to_le_bytes());
        let err = from_bin(&bytes).unwrap_err();
        assert!(
            matches!(&err, BinError::Malformed(m) if m.contains("exceeds")),
            "{err:?}"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bin(&sample()).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_bin(&bytes).unwrap_err(),
            BinError::Malformed(_)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let inst = crate::suite::figure1_instance();
        let dir = std::env::temp_dir().join("coflow-binio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("fig1.bin");
        save_bin(&inst, &p).unwrap();
        let back = load_bin(&p).unwrap();
        assert_eq!(back.flow_count(), inst.flow_count());
        std::fs::remove_file(&p).ok();
    }
}
