//! The configurable random instance generator (§4.1).

use crate::rng::{exponential, poisson};
use coflow_core::model::{Coflow, FlowSpec, Instance};
use coflow_net::topo::{random_host_pair, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator parameters. The paper under-specifies its generator ("based on
/// Poisson distributions"); every knob here is explicit and recorded with
/// results.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of coflows.
    pub n_coflows: usize,
    /// Flows per coflow ("coflow width" in §4.3).
    pub width: usize,
    /// Mean of the (shifted) Poisson flow size: `size = 1 + Poisson(λ)`.
    pub size_mean: f64,
    /// Mean of the (shifted) Poisson coflow weight: `w = 1 + Poisson(λ)`.
    pub weight_mean: f64,
    /// Coflow arrivals form a Poisson process with this rate (expected
    /// inter-arrival `1/rate`); `0` puts every coflow at time 0.
    pub arrival_rate: f64,
    /// Per-flow release jitter after the coflow arrival: `Exp(rate)`;
    /// `0` releases all flows exactly at the coflow arrival.
    pub jitter_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            n_coflows: 10,
            width: 16,
            size_mean: 4.0,
            weight_mean: 1.0,
            arrival_rate: 0.5,
            jitter_rate: 2.0,
            seed: 0,
        }
    }
}

/// Generates a random circuit-coflow instance on `topo`.
///
/// Sources and destinations are distinct uniform host pairs; sizes and
/// weights are shifted Poisson (never zero); coflow arrivals follow a
/// Poisson process; each flow's release adds exponential jitter to its
/// coflow's arrival (per-flow release times are this paper's
/// generalization, §1.1).
pub fn generate(topo: &Topology, cfg: &GenConfig) -> Instance {
    assert!(topo.host_count() >= 2, "need at least 2 hosts");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut coflows = Vec::with_capacity(cfg.n_coflows);
    let mut arrival = 0.0_f64;
    for _ in 0..cfg.n_coflows {
        if cfg.arrival_rate > 0.0 {
            arrival += exponential(&mut rng, cfg.arrival_rate);
        }
        let weight = 1.0 + poisson(&mut rng, cfg.weight_mean) as f64;
        let flows = (0..cfg.width)
            .map(|_| {
                let (src, dst) = random_host_pair(topo, &mut rng);
                let size = 1.0 + poisson(&mut rng, cfg.size_mean) as f64;
                let release = if cfg.jitter_rate > 0.0 {
                    arrival + exponential(&mut rng, cfg.jitter_rate)
                } else {
                    arrival
                };
                FlowSpec::new(src, dst, size, release)
            })
            .collect();
        coflows.push(Coflow::new(weight, flows));
    }
    Instance::new(topo.graph.clone(), coflows)
}

/// Generates a unit-size (packet) instance on `topo` — same release/weight
/// machinery with all sizes 1, for the §3 experiments.
pub fn generate_packets(topo: &Topology, cfg: &GenConfig) -> Instance {
    let mut inst = generate(topo, cfg);
    for c in inst.coflows.iter_mut() {
        for f in c.flows.iter_mut() {
            f.size = 1.0;
        }
    }
    inst
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_net::topo;

    #[test]
    fn shape_matches_config() {
        let t = topo::fat_tree(4, 1.0);
        let cfg = GenConfig {
            n_coflows: 7,
            width: 5,
            seed: 3,
            ..Default::default()
        };
        let inst = generate(&t, &cfg);
        assert_eq!(inst.coflow_count(), 7);
        assert_eq!(inst.flow_count(), 35);
        assert!(inst.validate().is_empty(), "{:?}", inst.validate());
    }

    #[test]
    fn sizes_weights_at_least_one() {
        let t = topo::fat_tree(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                n_coflows: 20,
                width: 8,
                ..Default::default()
            },
        );
        for c in &inst.coflows {
            assert!(c.weight >= 1.0);
            for f in &c.flows {
                assert!(f.size >= 1.0);
                assert!(f.release >= 0.0);
            }
        }
    }

    #[test]
    fn endpoints_are_hosts() {
        let t = topo::fat_tree(4, 1.0);
        let inst = generate(&t, &GenConfig::default());
        for (_, _, f) in inst.flows() {
            assert!(t.hosts.contains(&f.src));
            assert!(t.hosts.contains(&f.dst));
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let t = topo::star(6, 1.0);
        let a = generate(
            &t,
            &GenConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let b = generate(
            &t,
            &GenConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let c = generate(
            &t,
            &GenConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let key = |i: &Instance| {
            i.flows()
                .map(|(_, _, f)| (f.src.0, f.dst.0, f.size as u64, (f.release * 1e6) as u64))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_ne!(key(&a), key(&c));
    }

    #[test]
    fn releases_increase_with_arrival_process() {
        let t = topo::star(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                n_coflows: 30,
                width: 2,
                arrival_rate: 1.0,
                jitter_rate: 0.0,
                ..Default::default()
            },
        );
        let arrivals: Vec<f64> = inst.coflows.iter().map(|c| c.earliest_release()).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(arrivals, sorted, "coflow arrivals must be nondecreasing");
        assert!(*arrivals.last().unwrap() > 0.0);
    }

    #[test]
    fn zero_rates_put_everything_at_zero_release() {
        let t = topo::star(4, 1.0);
        let inst = generate(
            &t,
            &GenConfig {
                arrival_rate: 0.0,
                jitter_rate: 0.0,
                ..Default::default()
            },
        );
        for (_, _, f) in inst.flows() {
            assert_eq!(f.release, 0.0);
        }
    }

    #[test]
    fn packet_variant_unit_sizes() {
        let t = topo::grid(3, 3, 1.0);
        let inst = generate_packets(
            &t,
            &GenConfig {
                n_coflows: 4,
                width: 3,
                ..Default::default()
            },
        );
        for (_, _, f) in inst.flows() {
            assert_eq!(f.size, 1.0);
        }
    }
}
