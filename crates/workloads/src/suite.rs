//! Named experiment scenarios.
//!
//! * [`fig3_config`] / [`fig4_config`] — the paper's two sweeps (§4.3):
//!   Figure 3 fixes 10 coflows and varies width ∈ {4, 8, 16, 32};
//!   Figure 4 fixes width 16 and varies #coflows ∈ {10, 15, 20, 25, 30}.
//! * [`mapreduce_shuffle`] — the motivating workload of §1: reducers
//!   cannot start until all map outputs arrive, i.e. each reducer's inbound
//!   transfers form one coflow (here: the whole shuffle stage is one
//!   coflow whose flows are the `m × r` map→reduce transfers).
//! * [`broadcast`] — one-to-many replication as a single coflow.
//! * [`figure1_instance`] — the triangle example of Figure 1, with the
//!   exact sizes from the paper.

use crate::gen::GenConfig;
use coflow_core::model::{Coflow, FlowSpec, Instance};
use coflow_net::topo::Topology;
use coflow_net::NodeId;

/// Figure 3 point: 10 coflows, the given width, one of 10 seeded trials.
pub fn fig3_config(width: usize, trial: u64) -> GenConfig {
    GenConfig {
        n_coflows: 10,
        width,
        // Distinct seeds per (width, trial) point.
        seed: 0x0F13_0000 + (width as u64) * 101 + trial,
        ..Default::default()
    }
}

/// Figure 4 point: width 16, the given number of coflows.
pub fn fig4_config(n_coflows: usize, trial: u64) -> GenConfig {
    GenConfig {
        n_coflows,
        width: 16,
        seed: 0x0F14_0000 + (n_coflows as u64) * 101 + trial,
        ..Default::default()
    }
}

/// A MapReduce shuffle on `topo`: `m` mappers and `r` reducers drawn from
/// the host set round-robin; every (mapper, reducer) transfer has the given
/// size; the whole shuffle is one coflow (the reduce phase starts when the
/// last transfer lands — §1's motivating semantics).
pub fn mapreduce_shuffle(
    topo: &Topology,
    m: usize,
    r: usize,
    size: f64,
    weight: f64,
    release: f64,
) -> Instance {
    assert!(m + r <= topo.host_count(), "need m + r distinct hosts");
    let mappers = &topo.hosts[..m];
    let reducers = &topo.hosts[m..m + r];
    let flows: Vec<FlowSpec> = mappers
        .iter()
        .flat_map(|&s| {
            reducers
                .iter()
                .map(move |&d| FlowSpec::new(s, d, size, release))
        })
        .collect();
    Instance::new(topo.graph.clone(), vec![Coflow::new(weight, flows)])
}

/// Several shuffle stages arriving over time (a small Spark-like job mix).
pub fn shuffle_mix(topo: &Topology, stages: &[(usize, usize, f64, f64, f64)]) -> Instance {
    let mut coflows = Vec::new();
    for &(m, r, size, weight, release) in stages {
        let one = mapreduce_shuffle(topo, m, r, size, weight, release);
        coflows.extend(one.coflows);
    }
    Instance::new(topo.graph.clone(), coflows)
}

/// A broadcast: `src_idx`-th host replicates `size` units to `fanout`
/// other hosts, as one coflow.
pub fn broadcast(
    topo: &Topology,
    src_idx: usize,
    fanout: usize,
    size: f64,
    weight: f64,
) -> Instance {
    let src = topo.hosts[src_idx];
    let flows: Vec<FlowSpec> = topo
        .hosts
        .iter()
        .filter(|&&h| h != src)
        .take(fanout)
        .map(|&d| FlowSpec::new(src, d, size, 0.0))
        .collect();
    assert_eq!(flows.len(), fanout, "not enough hosts for fanout");
    Instance::new(topo.graph.clone(), vec![Coflow::new(weight, flows)])
}

/// The exact Figure 1 instance: triangle x,y,z; coflow A = {A1: x→y size 2,
/// A2: y→z size 1}, B = {y→z size 1}, C = {x→y size 2}; unit weights.
/// Known values: fair sharing 10, priority(A,B,C) 8, optimum 7.
pub fn figure1_instance() -> Instance {
    let t = coflow_net::topo::triangle();
    let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
    Instance::new(
        t.graph,
        vec![
            Coflow::new(
                1.0,
                vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(y, z, 1.0, 0.0)],
            ),
            Coflow::new(1.0, vec![FlowSpec::new(y, z, 1.0, 0.0)]),
            Coflow::new(1.0, vec![FlowSpec::new(x, y, 2.0, 0.0)]),
        ],
    )
}

/// Helper used in tests/examples: all-pairs incast onto one host.
pub fn incast(topo: &Topology, dst_idx: usize, size: f64) -> Instance {
    let dst = topo.hosts[dst_idx];
    let flows: Vec<FlowSpec> = topo
        .hosts
        .iter()
        .filter(|&&h| h != dst)
        .map(|&s| FlowSpec::new(s, dst, size, 0.0))
        .collect();
    Instance::new(topo.graph.clone(), vec![Coflow::new(1.0, flows)])
}

/// Convenience re-export for hosts-by-index addressing in examples.
pub fn host(topo: &Topology, i: usize) -> NodeId {
    topo.hosts[i]
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_net::topo;

    #[test]
    fn fig3_fig4_seeds_distinct() {
        let a = fig3_config(4, 0);
        let b = fig3_config(4, 1);
        let c = fig3_config(8, 0);
        let d = fig4_config(10, 0);
        let seeds = [a.seed, b.seed, c.seed, d.seed];
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(a.n_coflows, 10);
        assert_eq!(d.width, 16);
    }

    #[test]
    fn shuffle_is_one_coflow_m_by_r() {
        let t = topo::fat_tree(4, 1.0);
        let inst = mapreduce_shuffle(&t, 4, 3, 2.0, 1.0, 0.0);
        assert_eq!(inst.coflow_count(), 1);
        assert_eq!(inst.flow_count(), 12);
        assert!(inst.validate().is_empty());
        // All destinations are reducers.
        for (_, _, f) in inst.flows() {
            assert!(t.hosts[4..7].contains(&f.dst));
            assert!(t.hosts[..4].contains(&f.src));
        }
    }

    #[test]
    fn shuffle_mix_stacks_stages() {
        let t = topo::fat_tree(4, 1.0);
        let inst = shuffle_mix(&t, &[(2, 2, 1.0, 1.0, 0.0), (3, 1, 2.0, 2.0, 5.0)]);
        assert_eq!(inst.coflow_count(), 2);
        assert_eq!(inst.flow_count(), 4 + 3);
        assert_eq!(inst.coflows[1].earliest_release(), 5.0);
    }

    #[test]
    fn broadcast_fanout() {
        let t = topo::star(6, 1.0);
        let inst = broadcast(&t, 0, 4, 3.0, 2.0);
        assert_eq!(inst.flow_count(), 4);
        for (_, _, f) in inst.flows() {
            assert_eq!(f.src, t.hosts[0]);
            assert_eq!(f.size, 3.0);
        }
    }

    #[test]
    fn incast_targets_one_host() {
        let t = topo::star(5, 1.0);
        let inst = incast(&t, 2, 1.0);
        assert_eq!(inst.flow_count(), 4);
        for (_, _, f) in inst.flows() {
            assert_eq!(f.dst, t.hosts[2]);
        }
    }

    #[test]
    fn figure1_matches_paper() {
        let inst = figure1_instance();
        assert_eq!(inst.coflow_count(), 3);
        assert_eq!(inst.flow_count(), 4);
        assert_eq!(inst.total_size(), 6.0);
        assert!(inst.validate().is_empty());
    }
}
