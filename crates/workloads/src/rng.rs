//! Distribution samplers built on `rand`'s uniform source.
//!
//! The dependency budget deliberately excludes `rand_distr`; Poisson and
//! exponential sampling are a few lines each and implementing them in-tree
//! keeps the workload generator auditable.

use rand::RngExt;

/// Samples `Poisson(lambda)` by Knuth's product method, splitting large
/// `lambda` to avoid `exp(-lambda)` underflow (valid because a Poisson of
/// sum-parameter is the sum of independent Poissons).
///
/// # Panics
/// If `lambda` is negative or non-finite.
pub fn poisson<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "need lambda >= 0, got {lambda}"
    );
    // lint: allow(float_cmp) — exact zero short-circuit, not a tolerance decision
    if lambda == 0.0 {
        return 0;
    }
    let mut remaining = lambda;
    let mut total = 0u64;
    const CHUNK: f64 = 30.0;
    while remaining > CHUNK {
        total += poisson_knuth(rng, CHUNK);
        remaining -= CHUNK;
    }
    total + poisson_knuth(rng, remaining)
}

fn poisson_knuth<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0_f64;
    loop {
        p *= rng.random::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Samples `Exponential(rate)` by inversion (mean `1 / rate`).
///
/// # Panics
/// If `rate <= 0` or non-finite.
pub fn exponential<R: RngExt + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "need rate > 0, got {rate}");
    let u: f64 = rng.random::<f64>();
    // u in [0,1); 1-u in (0,1] avoids ln(0).
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(42);
        for &lambda in &[0.5, 3.0, 12.0, 75.0] {
            let n = 20_000;
            let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            let tol = 5.0 * (lambda / n as f64).sqrt() + 0.05;
            assert!((mean - lambda).abs() < tol, "lambda={lambda}: mean {mean}");
            // Poisson variance = lambda.
            assert!(
                (var - lambda).abs() < 6.0 * tol * lambda.max(1.0).sqrt(),
                "lambda={lambda}: var {var}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 0.25;
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 2.0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "lambda >= 0")]
    fn poisson_negative_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        poisson(&mut rng, -1.0);
    }

    #[test]
    #[should_panic(expected = "rate > 0")]
    fn exponential_zero_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| poisson(&mut rng, 4.0)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| poisson(&mut rng, 4.0)).collect()
        };
        assert_eq!(a, b);
    }
}
