//! # coflow-workloads
//!
//! Random coflow instance generation per §4.1 of the paper: "Each coflow
//! instance is randomly generated with flow release times, flow sizes, and
//! coflow weights based on Poisson distributions. Each result is the
//! average of 10 tries."
//!
//! * [`rng`] — self-contained Poisson and exponential samplers (the paper's
//!   distributions; kept in-tree so the only RNG dependency is `rand`'s
//!   uniform source);
//! * [`gen`] — the configurable instance generator;
//! * [`suite`] — named scenarios: the Figure 3 / Figure 4 sweeps, a
//!   MapReduce shuffle, a broadcast pattern, and packet workloads;
//! * [`io`] — JSON (de)serialization of instances for reproducibility
//!   snapshots;
//! * [`binio`] — the compact binary snapshot format (`COFB`): exact f64
//!   bit patterns, versioned header, typed load errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod binio;
pub mod gen;
pub mod io;
pub mod rng;
pub mod suite;

pub use gen::{generate, GenConfig};
