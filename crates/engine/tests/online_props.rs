//! Property tests tying the online engine back to the offline pipeline.
//!
//! * **Offline equivalence** — with every release at 0 the canonical trace
//!   admits everything in one epoch; under an arrivals-only trigger the
//!   engine's `LpOrder` policy then *is* the offline §2.2 pipeline (same
//!   LP, same rounding seed, same order) driven by the same shared fluid
//!   allocator, so the weighted completion times must agree exactly.
//! * **Feasibility invariants** — on arbitrary arrival streams, every
//!   policy's realized schedule passes the §1.1 checker: rate allocations
//!   never exceed any link capacity at any event time, releases are
//!   respected, and all demanded volume is delivered.

use coflow_core::circuit::lp_free::{solve_free_paths_lp_paths, FreePathsLpConfig};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig};
use coflow_core::order::lp_order;
use coflow_engine::{run, EngineConfig, EpochTrigger, Fifo, Greedy, LpOrder, WeightedFair};
use coflow_sim::fluid::{simulate, SimConfig};
use coflow_workloads::gen::{generate, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All releases at 0 + a single epoch ⇒ `LpOrder` reproduces the
    /// offline circuit schedule's weighted completion time exactly.
    #[test]
    fn single_epoch_lp_order_matches_offline(n in 1usize..4, w in 1usize..4, seed in 0u64..200) {
        let topo = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(&topo, &GenConfig {
            n_coflows: n,
            width: w,
            size_mean: 3.0,
            arrival_rate: 0.0,
            jitter_rate: 0.0,
            seed,
            ..Default::default()
        });
        let lp_cfg = FreePathsLpConfig::default();
        let round_cfg = FreeRoundingConfig { seed, ..Default::default() };

        // Offline reference: LP → rounding → LP order → fluid simulation.
        let lp = solve_free_paths_lp_paths(&inst, &lp_cfg).unwrap();
        let rounding = round_free_paths(&inst, &lp, &round_cfg);
        let order = lp_order(&inst, &lp.base);
        let offline = simulate(&inst, &rounding.paths, &order, &SimConfig::default());

        // Online engine, single epoch (everything arrives at t = 0 and the
        // trigger never fires again).
        let mut pol = LpOrder::new(lp_cfg, round_cfg);
        let cfg = EngineConfig { trigger: EpochTrigger::arrivals_only(), ..Default::default() };
        let online = run(&inst, &mut pol, &cfg);

        // All arrivals at 0 must make exactly one epoch.
        prop_assert_eq!(online.engine.epochs, 1);
        prop_assert!(
            (online.metrics.weighted_sum - offline.metrics.weighted_sum).abs() < 1e-9,
            "online {} vs offline {}",
            online.metrics.weighted_sum,
            offline.metrics.weighted_sum
        );
        for (a, b) in online.flow_completion.iter().zip(&offline.flow_completion) {
            prop_assert!((a - b).abs() < 1e-9, "flow completions diverge: {a} vs {b}");
        }
    }

    /// On Poisson arrival streams, every policy's fluid rate allocations
    /// never exceed link capacity at any event time (and the schedule is
    /// feasible end to end: releases respected, volume delivered).
    #[test]
    fn rates_never_exceed_capacity(n in 1usize..4, w in 1usize..3, seed in 0u64..200) {
        let topo = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(&topo, &GenConfig {
            n_coflows: n,
            width: w,
            size_mean: 3.0,
            arrival_rate: 0.7,
            jitter_rate: 2.0,
            seed,
            ..Default::default()
        });
        let (mut fifo, mut greedy, mut fair, mut lp) =
            (Fifo, Greedy, WeightedFair, LpOrder::default());
        let policies: Vec<(&str, &mut dyn coflow_engine::OnlinePolicy)> = vec![
            ("Fifo", &mut fifo),
            ("Greedy", &mut greedy),
            ("WeightedFair", &mut fair),
            ("LpOrder", &mut lp),
        ];
        for (name, pol) in policies {
            let out = run(&inst, pol, &EngineConfig::default());
            let routed = inst.with_paths(&out.paths);
            // The checker enforces per-edge capacity at *every* segment
            // boundary (i.e. every event time), release times, and exact
            // demand delivery.
            let violations = out.schedule.check(&routed, 1e-6, 1e-6);
            prop_assert!(violations.is_empty(), "{name}: {violations:?}");
            for (_, flat, spec) in inst.flows() {
                prop_assert!(
                    out.flow_completion[flat] >= spec.release - 1e-9,
                    "{name}: flow {flat} completes before release"
                );
            }
            let delivered: f64 = out.schedule.flows.iter().map(|f| f.delivered()).sum();
            prop_assert!(
                (delivered - inst.total_size()).abs() < 1e-5 * (1.0 + inst.total_size()),
                "{name}: delivered {delivered} vs demand {}",
                inst.total_size()
            );
        }
    }

    /// Warm-started epoch sequences reach the same realized objective as
    /// cold ones (the basis reuse is a pure speed lever), while reusing
    /// the previous basis in most epochs.
    #[test]
    fn warm_and_cold_lp_runs_agree(seed in 0u64..100) {
        let topo = coflow_net::topo::fat_tree(4, 1.0);
        let inst = generate(&topo, &GenConfig {
            n_coflows: 3,
            width: 2,
            size_mean: 3.0,
            arrival_rate: 0.5,
            jitter_rate: 0.0,
            seed,
            ..Default::default()
        });
        let mk = || (FreePathsLpConfig::default(), FreeRoundingConfig { seed, ..Default::default() });
        let (lc, rc) = mk();
        let warm = run(&inst, &mut LpOrder::new(lc, rc), &EngineConfig::default());
        let (lc, rc) = mk();
        let cold = run(&inst, &mut LpOrder::cold(lc, rc), &EngineConfig::default());
        prop_assert!(
            (warm.metrics.weighted_sum - cold.metrics.weighted_sum).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.metrics.weighted_sum,
            cold.metrics.weighted_sum
        );
        prop_assert_eq!(cold.engine.warm_attempted, 0);
        if warm.engine.epochs > 1 {
            prop_assert!(warm.engine.warm_attempted > 0);
        }
    }
}

/// Column-generation epoch re-solves with a cross-epoch pool: the realized
/// schedule stays feasible, colgen metrics land in the engine log, and the
/// pooled run never generates more columns than the cold-pool baseline
/// (later epochs are seeded with earlier epochs' discoveries).
#[test]
fn colgen_pooled_epochs_feasible_and_reuse_columns() {
    let topo = coflow_net::topo::fat_tree(4, 1.0);
    let inst = generate(
        &topo,
        &GenConfig {
            n_coflows: 4,
            width: 3,
            size_mean: 3.0,
            arrival_rate: 0.5,
            jitter_rate: 0.0,
            seed: 7,
            ..Default::default()
        },
    );
    let mk = || {
        (
            FreePathsLpConfig::default(),
            FreeRoundingConfig {
                seed: 7,
                ..Default::default()
            },
        )
    };
    let (lc, rc) = mk();
    let mut pooled_policy = LpOrder::colgen(lc, rc);
    let pooled = run(&inst, &mut pooled_policy, &EngineConfig::default());
    let (lc, rc) = mk();
    let coldpool = run(
        &inst,
        &mut LpOrder::colgen_cold_pool(lc, rc),
        &EngineConfig::default(),
    );

    for out in [&pooled, &coldpool] {
        let routed = inst.with_paths(&out.paths);
        let violations = out.schedule.check(&routed, 1e-6, 1e-6);
        assert!(violations.is_empty(), "{violations:?}");
    }
    assert!(
        pooled.engine.total_columns > 0,
        "colgen stats must be logged"
    );
    assert!(pooled
        .engine
        .epoch_log
        .iter()
        .all(|e| e.solve.is_none() || e.colgen.is_some()));
    assert!(
        pooled.engine.total_columns_generated <= coldpool.engine.total_columns_generated,
        "pooled epochs must not price more columns than cold pools ({} vs {})",
        pooled.engine.total_columns_generated,
        coldpool.engine.total_columns_generated
    );
    assert!(
        pooled_policy.pooled_paths() > 0,
        "the cross-epoch pool must retain generated paths"
    );
}

/// Steady-state epoch re-solves run entirely inside retained scratch:
/// with every coflow arriving at t = 0 there is a single admission, so
/// after the first epoch the LP keeps its shape (completed flows freeze
/// at size 0 instead of dropping out) and every warm re-solve through the
/// pooled colgen policy must report `allocs == 0` — the certificate that
/// the whole solve (assembly, factorization, pricing, warm-start probing)
/// was served from capacity retained in the policy's `Scratch`. See the
/// counting contract on `coflow_lp::scratch`.
#[test]
fn steady_state_epochs_allocate_nothing() {
    let topo = coflow_net::topo::fat_tree(4, 1.0);
    let inst = generate(
        &topo,
        &GenConfig {
            n_coflows: 5,
            width: 3,
            size_mean: 3.0,
            arrival_rate: 0.0,
            jitter_rate: 0.0,
            seed: 11,
            ..Default::default()
        },
    );
    let lc = FreePathsLpConfig::default();
    let rc = FreeRoundingConfig {
        seed: 11,
        ..Default::default()
    };
    let mut pol = LpOrder::colgen(lc, rc);
    let out = run(&inst, &mut pol, &EngineConfig::default());
    let solves: Vec<_> = out
        .engine
        .epoch_log
        .iter()
        .filter_map(|e| e.solve)
        .collect();
    assert!(
        solves.len() >= 2,
        "need completion-triggered epochs after the first (got {})",
        solves.len()
    );
    assert!(
        solves[0].scratch_reuse > 0,
        "even the first epoch's colgen rounds reuse scratch within the solve chain"
    );
    for (i, s) in solves.iter().enumerate().skip(1) {
        assert_eq!(
            s.allocs, 0,
            "epoch {i} re-solve allocated outside retained scratch (reuse {})",
            s.scratch_reuse
        );
    }
    // The allocs == 0 contract above held with the trace sink attached:
    // the recorder lives inside the same retained scratch, so recording
    // epoch/plan spans and the resolve histogram must not count as an
    // allocation. The trace proves the sink was live, not a no-op.
    let trace = &out.trace;
    assert!(!trace.is_empty(), "engine trace must record spans");
    assert_eq!(
        trace.span_count(coflow_obs::SpanName::Epoch),
        out.engine.epochs,
        "one epoch span per engine epoch"
    );
    assert_eq!(
        trace.counter(coflow_obs::Counter::Epochs) as usize,
        out.engine.epochs,
        "epoch counter tracks the epoch count"
    );
    assert_eq!(
        trace.hists[coflow_obs::HistId::Resolve as usize].total() as usize,
        out.engine.epochs,
        "one resolve-latency sample per epoch"
    );
}

/// The allocation-free steady-state contract survives the threaded
/// configuration: candidate-list pricing plus concurrent colgen oracles
/// (`threads >= 2`) route all per-worker state through retained scratch,
/// so warm epoch re-solves still report `allocs == 0` and record the
/// thread knob in their stats.
#[test]
fn steady_state_epochs_allocate_nothing_with_parallel_oracles() {
    use coflow_lp::{Pricing, SolverOptions};
    let topo = coflow_net::topo::fat_tree(4, 1.0);
    let inst = generate(
        &topo,
        &GenConfig {
            n_coflows: 5,
            width: 3,
            size_mean: 3.0,
            arrival_rate: 0.0,
            jitter_rate: 0.0,
            seed: 11,
            ..Default::default()
        },
    );
    let lc = FreePathsLpConfig {
        solver: SolverOptions {
            pricing: Pricing::Candidate,
            threads: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let rc = FreeRoundingConfig {
        seed: 11,
        ..Default::default()
    };
    let mut pol = LpOrder::colgen(lc, rc);
    let out = run(&inst, &mut pol, &EngineConfig::default());
    let solves: Vec<_> = out
        .engine
        .epoch_log
        .iter()
        .filter_map(|e| e.solve)
        .collect();
    assert!(
        solves.len() >= 2,
        "need completion-triggered epochs after the first (got {})",
        solves.len()
    );
    for (i, s) in solves.iter().enumerate() {
        assert_eq!(s.threads, 4, "epoch {i} must record the thread knob");
        if i > 0 {
            assert_eq!(
                s.allocs, 0,
                "epoch {i} threaded re-solve allocated outside retained scratch (reuse {})",
                s.scratch_reuse
            );
        }
    }
}
