//! Online scheduling policies: what the engine asks at every epoch
//! boundary.
//!
//! A policy sees the [`Residual`] instance (remaining sizes, frozen
//! completed flows, releases on the epoch's local clock) and returns an
//! [`EpochPlan`]: routing commitments for flows that do not have a path
//! yet, plus the rate discipline the executor applies until the next
//! boundary. Four implementations span the repo's layers:
//!
//! * [`LpOrder`] — the paper's §2.2 pipeline (path LP → randomized
//!   rounding → LP-completion-time order) re-run on the residual instance,
//!   threading one [`WarmChain`] across epochs so each re-solve starts
//!   from the previous optimal basis;
//! * [`Greedy`] — shortest-remaining-coflow-first (Varys-style SEBF
//!   analogue in the fluid model);
//! * [`WeightedFair`] — weighted max–min fair sharing by coflow weight;
//! * [`Fifo`] — serve coflows in admission order.

use coflow_core::circuit::lp_free::{
    solve_free_paths_lp_colgen_on_grid, solve_free_paths_lp_paths_on_grid, ColumnMode,
    FreePathsLpConfig, PathPool,
};
use coflow_core::circuit::round_free::{round_free_paths, FreeRoundingConfig};
use coflow_core::order::lp_order;
use coflow_core::residual::Residual;
use coflow_core::{Instance, IntervalGrid};
use coflow_lp::{ChainStats, ColGenStats, SolveStats, WarmChain};
use coflow_net::{paths as netpaths, Path};

/// What a policy sees at an epoch boundary.
#[derive(Debug)]
pub struct EpochView<'a> {
    /// Wall-clock time of the boundary.
    pub now: f64,
    /// The full (offline) instance, for weights/topology lookups.
    pub original: &'a Instance,
    /// The residual instance at `now` (see [`coflow_core::residual`]).
    pub residual: &'a Residual,
    /// Committed path per **original** flat index (`None` = unrouted).
    pub paths: &'a [Option<Path>],
}

/// Rate discipline until the next epoch boundary. Flow indices are
/// **original** flat indices.
#[derive(Clone, Debug)]
pub enum RatePlan {
    /// Serve active flows greedily in this priority order (highest first);
    /// the executor re-applies the order as flows complete or release
    /// ([`coflow_sim::fluid::greedy_fill`]).
    Ordered(Vec<usize>),
    /// Weighted max–min fair shares with these per-flow weights
    /// ([`coflow_sim::fluid::fair_fill`]).
    Fair(Vec<f64>),
}

/// A policy's answer at an epoch boundary.
#[derive(Clone, Debug)]
pub struct EpochPlan {
    /// Routing commitments `(original flat index, path)` for flows without
    /// a path. The engine rejects re-routing of committed flows.
    pub routes: Vec<(usize, Path)>,
    /// Rate discipline until the next boundary.
    pub rates: RatePlan,
}

/// Why a policy could not produce a plan this epoch.
///
/// A plan failure is an *epoch-local* event, not a run failure: the engine
/// answers it with its degradation ladder (retry → reuse the standing plan
/// → fall back to a solver-free policy — see
/// [`RecoveryPolicy`](crate::engine::RecoveryPolicy)).
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyError {
    /// The LP re-solve failed (numerical breakdown past the solver's own
    /// recovery ladder, infeasibility, budget exhaustion before
    /// feasibility, ...).
    Lp(coflow_lp::LpError),
    /// Any other policy-internal failure.
    Other(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Lp(e) => write!(f, "lp: {e}"),
            PolicyError::Other(msg) => f.write_str(msg),
        }
    }
}

impl From<coflow_lp::LpError> for PolicyError {
    fn from(e: coflow_lp::LpError) -> Self {
        PolicyError::Lp(e)
    }
}

/// An online scheduling policy.
pub trait OnlinePolicy {
    /// Display name (stable; used in metrics artifacts).
    fn name(&self) -> &'static str;

    /// Computes the plan for the epoch starting at `view.now`, or reports
    /// why it cannot (the engine's degradation ladder takes over).
    fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError>;

    /// Solver statistics of the last [`OnlinePolicy::plan`] call's LP
    /// re-solve (`None` for solver-free policies).
    fn last_solve(&self) -> Option<SolveStats> {
        None
    }

    /// Aggregate warm-chain statistics across all re-solves so far
    /// (`None` for solver-free policies).
    fn chain_stats(&self) -> Option<ChainStats> {
        None
    }

    /// Column-generation statistics of the last [`OnlinePolicy::plan`]
    /// call's LP re-solve (`None` for solver-free policies and eager
    /// column enumeration).
    fn last_colgen(&self) -> Option<ColGenStats> {
        None
    }
}

/// BFS-shortest-path routes for every live, unrouted flow — the default
/// routing of the solver-free policies, and the routing rung the engine
/// uses when it reuses a stale plan (a reused plan cannot route flows that
/// arrived after it was computed).
pub(crate) fn route_missing(view: &EpochView<'_>) -> Vec<(usize, Path)> {
    let g = &view.original.graph;
    let mut routes = Vec::new();
    for (rflat, &oflat) in view.residual.flat_map.iter().enumerate() {
        let spec = view
            .residual
            .instance
            .flow(view.residual.instance.id_of_flat(rflat));
        if view.paths[oflat].is_none() && spec.size > 0.0 {
            let p = netpaths::bfs_shortest_path(g, spec.src, spec.dst)
                // lint: allow(no_panic) — instance validation checked reachability at admission
                .expect("instance validated: destination reachable");
            routes.push((oflat, p));
        }
    }
    routes
}

/// Priority order over original flats from a coflow ranking: coflows in
/// `ranked` order (residual indices), flows within a coflow in flat order.
fn order_by_coflows(residual: &Residual, ranked: &[usize]) -> Vec<usize> {
    let inst = &residual.instance;
    let mut order = Vec::with_capacity(residual.flat_map.len());
    for &rc in ranked {
        for j in 0..inst.coflows[rc].flows.len() {
            let rflat = inst.flat_index(coflow_core::FlowId {
                coflow: rc as u32,
                flow: j as u32,
            });
            order.push(residual.flat_map[rflat]);
        }
    }
    order
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

/// First-in-first-out: coflows in admission order, flows within a coflow in
/// flat order, greedy rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl OnlinePolicy for Fifo {
    fn name(&self) -> &'static str {
        "Fifo"
    }

    fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError> {
        let ranked: Vec<usize> = (0..view.residual.instance.coflow_count()).collect();
        Ok(EpochPlan {
            routes: route_missing(view),
            rates: RatePlan::Ordered(order_by_coflows(view.residual, &ranked)),
        })
    }
}

// ---------------------------------------------------------------------------
// Greedy (shortest remaining coflow first)
// ---------------------------------------------------------------------------

/// Shortest-remaining-coflow-first (Varys-style): coflows ranked by
/// remaining volume, ties by admission order; greedy rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Greedy;

impl OnlinePolicy for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError> {
        let inst = &view.residual.instance;
        let mut ranked: Vec<usize> = (0..inst.coflow_count()).collect();
        ranked.sort_by(|&a, &b| {
            inst.coflows[a]
                .total_size()
                .partial_cmp(&inst.coflows[b].total_size())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Ok(EpochPlan {
            routes: route_missing(view),
            rates: RatePlan::Ordered(order_by_coflows(view.residual, &ranked)),
        })
    }
}

// ---------------------------------------------------------------------------
// Weighted fair sharing
// ---------------------------------------------------------------------------

/// Weighted max–min fair sharing: every live flow gets a share proportional
/// to its coflow's weight (the online analogue of the Figure 1 fair-sharing
/// strawman, made weight-aware).
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedFair;

impl OnlinePolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "WeightedFair"
    }

    fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError> {
        let mut weights = vec![1.0; view.original.flow_count()];
        for (id, flat, _) in view.original.flows() {
            weights[flat] = view.original.coflows[id.coflow as usize].weight.max(1e-9);
        }
        Ok(EpochPlan {
            routes: route_missing(view),
            rates: RatePlan::Fair(weights),
        })
    }
}

// ---------------------------------------------------------------------------
// LP order (the paper's pipeline, re-run per epoch)
// ---------------------------------------------------------------------------

/// The paper's §2.2 pipeline on the residual instance: path LP →
/// randomized rounding (routes for newly arrived flows; committed flows
/// keep their path via the LP's prescribed-path restriction) →
/// LP-completion-time priority order. Consecutive epochs thread one
/// [`WarmChain`], so each re-solve warm-starts from the previous basis —
/// set [`LpOrder::warm`] to `false` to force cold re-solves (for A/B
/// measurements).
///
/// With [`ColumnMode::Delayed`] in `lp_cfg.columns` the re-solves run by
/// column generation and the policy keeps one [`PathPool`] **across
/// epochs**: residual flat indices are stable (admission appends, frozen
/// flows keep their slot), so epoch `k+1`'s restricted master is seeded
/// with every path epochs `0..k` paid pricing rounds to discover — the
/// column-side analogue of the warm-started basis. Set
/// [`LpOrder::pool_reuse`] to `false` to clear the pool (and the chain)
/// every epoch, the cold baseline the pooled mode is measured against.
#[derive(Clone, Debug)]
pub struct LpOrder {
    /// LP configuration (grid ε, candidate-path budget, column mode,
    /// solver options).
    pub lp_cfg: FreePathsLpConfig,
    /// Rounding configuration (α, displacement, seed, selection).
    pub round_cfg: FreeRoundingConfig,
    /// Warm-start consecutive epoch re-solves (default `true`).
    pub warm: bool,
    /// Keep the generated-column pool across epochs (default `true`;
    /// only meaningful with [`ColumnMode::Delayed`]).
    pub pool_reuse: bool,
    chain: WarmChain,
    pool: PathPool,
    last: Option<SolveStats>,
    last_colgen: Option<ColGenStats>,
}

impl Default for LpOrder {
    fn default() -> Self {
        Self::new(FreePathsLpConfig::default(), FreeRoundingConfig::default())
    }
}

impl LpOrder {
    /// A warm-starting LP policy with the given configurations.
    pub fn new(lp_cfg: FreePathsLpConfig, round_cfg: FreeRoundingConfig) -> Self {
        Self {
            lp_cfg,
            round_cfg,
            warm: true,
            pool_reuse: true,
            chain: WarmChain::new(),
            pool: PathPool::new(),
            last: None,
            last_colgen: None,
        }
    }

    /// Same, but every epoch re-solve cold-starts (baseline for measuring
    /// the warm-start win).
    pub fn cold(lp_cfg: FreePathsLpConfig, round_cfg: FreeRoundingConfig) -> Self {
        Self {
            warm: false,
            ..Self::new(lp_cfg, round_cfg)
        }
    }

    /// Column-generation mode with cross-epoch pool (and basis) reuse.
    pub fn colgen(lp_cfg: FreePathsLpConfig, round_cfg: FreeRoundingConfig) -> Self {
        Self::new(
            FreePathsLpConfig {
                columns: ColumnMode::delayed(),
                ..lp_cfg
            },
            round_cfg,
        )
    }

    /// Column-generation mode that clears the pool *and* the chain every
    /// epoch: the fully cold baseline for the pooled A/B.
    pub fn colgen_cold_pool(lp_cfg: FreePathsLpConfig, round_cfg: FreeRoundingConfig) -> Self {
        Self {
            warm: false,
            pool_reuse: false,
            ..Self::colgen(lp_cfg, round_cfg)
        }
    }

    /// Total paths currently interned in the cross-epoch pool.
    pub fn pooled_paths(&self) -> usize {
        self.pool.len()
    }

    /// Installs a solver fault-injection hook on the policy's warm chain
    /// (`None` removes it). A chaos facility — see
    /// [`coflow_lp::FaultHook`]; production configurations never set one.
    pub fn set_fault_hook(&mut self, hook: Option<Box<dyn coflow_lp::FaultHook>>) {
        self.chain.set_fault_hook(hook);
    }
}

impl OnlinePolicy for LpOrder {
    fn name(&self) -> &'static str {
        "LpOrder"
    }

    fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError> {
        let residual = view.residual;
        let inst = &residual.instance;
        if inst.flow_count() == 0 {
            return Ok(EpochPlan {
                routes: Vec::new(),
                rates: RatePlan::Ordered(Vec::new()),
            });
        }
        if !self.warm {
            self.chain.reset();
        }
        let grid = IntervalGrid::cover(self.lp_cfg.eps, inst.horizon());
        // Residual LPs are feasible by construction, but the *solve* can
        // still fail (numerical breakdown past the solver's recovery
        // ladder, an exhausted budget, injected faults): that surfaces
        // here as a PolicyError for the engine's degradation ladder.
        let lp = match self.lp_cfg.columns {
            ColumnMode::Eager => {
                self.last_colgen = None;
                solve_free_paths_lp_paths_on_grid(inst, &self.lp_cfg, grid, &mut self.chain)?
            }
            ColumnMode::Delayed { .. } => {
                if !self.pool_reuse {
                    self.pool.clear();
                }
                let (lp, cg) = solve_free_paths_lp_colgen_on_grid(
                    inst,
                    &self.lp_cfg,
                    grid,
                    &mut self.chain,
                    &mut self.pool,
                )?;
                self.last_colgen = Some(cg);
                lp
            }
        };
        self.last = Some(lp.base.stats);
        let rounding = round_free_paths(inst, &lp, &self.round_cfg);
        let routes = residual
            .flat_map
            .iter()
            .enumerate()
            .filter(|&(rflat, &oflat)| {
                view.paths[oflat].is_none() && !rounding.paths[rflat].is_empty()
            })
            .map(|(rflat, &oflat)| (oflat, rounding.paths[rflat].clone()))
            .collect();
        let order = lp_order(inst, &lp.base)
            .order
            .into_iter()
            .map(|rflat| residual.flat_map[rflat])
            .collect();
        Ok(EpochPlan {
            routes,
            rates: RatePlan::Ordered(order),
        })
    }

    fn last_solve(&self) -> Option<SolveStats> {
        self.last
    }

    fn chain_stats(&self) -> Option<ChainStats> {
        Some(self.chain.stats())
    }

    fn last_colgen(&self) -> Option<ColGenStats> {
        self.last_colgen
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::residual::residual_instance;
    use coflow_core::{Coflow, FlowSpec};
    use coflow_net::{topo, NodeId};

    fn view_fixture(inst: &Instance) -> (Residual, Vec<Option<Path>>) {
        let remaining: Vec<f64> = inst.flows().map(|(_, _, f)| f.size).collect();
        let paths = vec![None; inst.flow_count()];
        let admitted: Vec<usize> = (0..inst.coflow_count()).collect();
        (
            residual_instance(inst, 0.0, &admitted, &remaining, &paths),
            paths,
        )
    }

    fn two_coflow_line() -> Instance {
        let t = topo::line(2, 1.0);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 5.0, 0.0)]),
                Coflow::new(3.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        )
    }

    #[test]
    fn greedy_ranks_short_coflows_first() {
        let inst = two_coflow_line();
        let (residual, paths) = view_fixture(&inst);
        let view = EpochView {
            now: 0.0,
            original: &inst,
            residual: &residual,
            paths: &paths,
        };
        let plan = Greedy.plan(&view).unwrap();
        match plan.rates {
            RatePlan::Ordered(o) => assert_eq!(o, vec![1, 0], "size-1 coflow first"),
            _ => panic!("greedy is ordered"),
        }
        assert_eq!(plan.routes.len(), 2, "both flows get routed");
    }

    #[test]
    fn fifo_keeps_admission_order() {
        let inst = two_coflow_line();
        let (residual, paths) = view_fixture(&inst);
        let view = EpochView {
            now: 0.0,
            original: &inst,
            residual: &residual,
            paths: &paths,
        };
        match Fifo.plan(&view).unwrap().rates {
            RatePlan::Ordered(o) => assert_eq!(o, vec![0, 1]),
            _ => panic!("fifo is ordered"),
        }
    }

    #[test]
    fn weighted_fair_uses_coflow_weights() {
        let inst = two_coflow_line();
        let (residual, paths) = view_fixture(&inst);
        let view = EpochView {
            now: 0.0,
            original: &inst,
            residual: &residual,
            paths: &paths,
        };
        match WeightedFair.plan(&view).unwrap().rates {
            RatePlan::Fair(w) => assert_eq!(w, vec![1.0, 3.0]),
            _ => panic!("weighted fair is fair"),
        }
    }

    #[test]
    fn lp_order_prioritizes_heavy_coflow_and_reports_stats() {
        let inst = two_coflow_line();
        let (residual, paths) = view_fixture(&inst);
        let view = EpochView {
            now: 0.0,
            original: &inst,
            residual: &residual,
            paths: &paths,
        };
        let mut pol = LpOrder::default();
        let plan = pol.plan(&view).unwrap();
        match plan.rates {
            RatePlan::Ordered(o) => {
                assert_eq!(o.len(), 2);
                assert_eq!(o[0], 1, "weight-3 size-1 coflow must be served first");
            }
            _ => panic!("lp policy is ordered"),
        }
        assert!(pol.last_solve().is_some());
        assert_eq!(pol.chain_stats().unwrap().solves, 1);
    }

    #[test]
    fn committed_paths_are_not_rerouted() {
        let inst = two_coflow_line();
        let remaining: Vec<f64> = inst.flows().map(|(_, _, f)| f.size).collect();
        let p = netpaths::bfs_shortest_path(&inst.graph, NodeId(0), NodeId(1)).unwrap();
        let paths = vec![Some(p), None];
        let residual = residual_instance(&inst, 0.0, &[0, 1], &remaining, &paths);
        let view = EpochView {
            now: 0.0,
            original: &inst,
            residual: &residual,
            paths: &paths,
        };
        for plan in [
            Fifo.plan(&view).unwrap(),
            Greedy.plan(&view).unwrap(),
            LpOrder::default().plan(&view).unwrap(),
        ] {
            assert!(
                plan.routes.iter().all(|&(f, _)| f != 0),
                "flow 0 already committed"
            );
            assert!(plan.routes.iter().any(|&(f, _)| f == 1));
        }
    }
}
