//! Arrival traces: the time-ordered stream of coflow arrivals the engine
//! ingests.
//!
//! The canonical trace of an [`Instance`] releases each coflow at its
//! earliest member-flow release (the generator's Poisson arrival process —
//! `coflow-workloads::gen` — puts exactly that structure on instances).
//! Custom traces allow batching or replaying recorded arrival logs.

use coflow_core::Instance;

/// A time-ordered stream of coflow arrivals.
#[derive(Clone, Debug, Default)]
pub struct ArrivalTrace {
    /// `(arrival time, original coflow index)`, sorted by time then index.
    events: Vec<(f64, usize)>,
}

impl ArrivalTrace {
    /// The canonical trace: each coflow arrives at its earliest flow
    /// release (empty coflows arrive at 0 and complete immediately).
    pub fn from_instance(instance: &Instance) -> Self {
        let events = instance
            .coflows
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let r = c.earliest_release();
                (if r.is_finite() { r } else { 0.0 }, i)
            })
            .collect();
        Self::from_events(events)
    }

    /// A custom trace. Events are sorted by `(time, coflow index)`.
    ///
    /// # Panics
    /// If a time is negative or non-finite, or an index repeats.
    pub fn from_events(mut events: Vec<(f64, usize)>) -> Self {
        // lint: allow(hash_order) — duplicate-detection set, never iterated
        let mut seen = std::collections::HashSet::new();
        for &(t, i) in &events {
            assert!(t >= 0.0 && t.is_finite(), "bad arrival time {t}");
            assert!(seen.insert(i), "coflow {i} arrives twice");
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Self { events }
    }

    /// The sorted events.
    pub fn events(&self) -> &[(f64, usize)] {
        &self.events
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when there are no arrivals.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::{Coflow, FlowSpec};
    use coflow_net::{topo, NodeId};

    #[test]
    fn instance_trace_sorted_by_earliest_release() {
        let t = topo::line(3, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 5.0)]),
                Coflow::new(
                    1.0,
                    vec![
                        FlowSpec::new(NodeId(0), NodeId(1), 1.0, 3.0),
                        FlowSpec::new(NodeId(1), NodeId(2), 1.0, 9.0),
                    ],
                ),
            ],
        );
        let tr = ArrivalTrace::from_instance(&inst);
        assert_eq!(tr.events(), &[(3.0, 1), (5.0, 0)]);
    }

    #[test]
    fn ties_break_by_index() {
        let tr = ArrivalTrace::from_events(vec![(1.0, 2), (1.0, 0), (0.5, 1)]);
        assert_eq!(tr.events(), &[(0.5, 1), (1.0, 0), (1.0, 2)]);
        assert_eq!(tr.len(), 3);
        assert!(!tr.is_empty());
    }

    #[test]
    #[should_panic(expected = "arrives twice")]
    fn duplicate_coflow_rejected() {
        let _ = ArrivalTrace::from_events(vec![(0.0, 1), (1.0, 1)]);
    }
}
