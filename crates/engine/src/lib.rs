//! # coflow-engine
//!
//! An event-driven **online** scheduler for coflows with release dates:
//! the scenario the paper's model already carries (per-flow releases,
//! Poisson coflow arrivals in `coflow-workloads::gen`) but that every
//! offline solver in the workspace ignores by seeing the whole instance at
//! time 0.
//!
//! ```text
//!  arrivals ──▶ admission ──▶ residual instance ──▶ OnlinePolicy::plan
//!     ▲            (epoch boundary: EpochTrigger)        │
//!     │                                                  ▼
//!  ArrivalTrace        fluid executor ◀── routes + RatePlan
//!                 (greedy_fill / fair_fill between events)
//! ```
//!
//! * [`trace::ArrivalTrace`] — the time-ordered coflow arrival stream;
//! * [`epoch::EpochTrigger`] — which events open an epoch (arrival,
//!   completion, periodic tick);
//! * [`coflow_core::residual`] — the residual instance handed to policies:
//!   remaining sizes, frozen completed flows, stable flat indices (what
//!   makes warm starts possible);
//! * [`policy`] — the [`policy::OnlinePolicy`] trait and four
//!   implementations: [`policy::LpOrder`] (the paper's LP pipeline
//!   re-solved per epoch through one [`coflow_lp::WarmChain`]),
//!   [`policy::Greedy`], [`policy::WeightedFair`], [`policy::Fifo`];
//! * [`engine`] — the event loop ([`engine::run`] / [`engine::run_trace`]);
//! * [`metrics`] — [`metrics::EngineMetrics`] with per-epoch
//!   [`coflow_lp::SolveStats`], serialized through
//!   [`coflow_workloads::io::Value`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod epoch;
pub mod metrics;
pub mod policy;
pub mod trace;

pub use engine::{run, run_trace, EngineConfig, EngineOutcome};
pub use epoch::EpochTrigger;
pub use metrics::{EngineMetrics, EpochRecord};
pub use policy::{
    EpochPlan, EpochView, Fifo, Greedy, LpOrder, OnlinePolicy, RatePlan, WeightedFair,
};
pub use trace::ArrivalTrace;

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::{Coflow, FlowSpec, Instance};
    use coflow_net::{topo, NodeId};

    fn staggered() -> Instance {
        let t = topo::line(2, 1.0);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 2.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 1.0)]),
            ],
        )
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let inst = staggered();
        let out = run(&inst, &mut Fifo, &EngineConfig::default());
        // FIFO: coflow 0 runs [0,2], coflow 1 waits, runs [2,3].
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 3.0).abs() < 1e-9);
        assert_eq!(out.engine.policy, "Fifo");
        assert!(out.engine.epochs >= 2, "one epoch per arrival at least");
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn greedy_preempts_for_short_coflow() {
        let inst = staggered();
        let out = run(&inst, &mut Greedy, &EngineConfig::default());
        // At t=1 the size-1 coflow has less remaining (1) than coflow 0
        // (also 1 remaining — tie broken by admission keeps coflow 0...
        // make sizes decisive: remaining of coflow 0 at t=1 is 1.0, tie;
        // admission order wins, so coflow 0 finishes first at 2.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fair_splits_capacity() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        );
        let out = run(&inst, &mut WeightedFair, &EngineConfig::default());
        // Equal weights: both progress at 1/2 until both finish at 2.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fair_favors_heavy_coflow() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(3.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        );
        let out = run(&inst, &mut WeightedFair, &EngineConfig::default());
        assert!(
            out.flow_completion[0] < out.flow_completion[1],
            "weight-3 coflow must finish first: {:?}",
            out.flow_completion
        );
    }

    #[test]
    fn lp_order_threads_warm_chain_across_epochs() {
        let inst = staggered();
        let mut pol = LpOrder::default();
        let out = run(&inst, &mut pol, &EngineConfig::default());
        assert!(out.engine.epochs >= 2);
        assert!(out.engine.total_pivots > 0);
        assert!(
            out.engine.warm_used >= 1,
            "second epoch must reuse the basis: {:?}",
            out.engine
        );
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn periodic_trigger_batches_admissions() {
        let inst = staggered();
        let cfg = EngineConfig {
            trigger: EpochTrigger::periodic(4.0),
            ..Default::default()
        };
        let out = run(&inst, &mut Fifo, &cfg);
        // Coflow 1 arrives at t=1 but is only admitted at the t=4 tick
        // (coflow 0 keeps the engine busy until then), so it completes at 5.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!(
            (out.flow_completion[1] - 5.0).abs() < 1e-9,
            "got {:?}",
            out.flow_completion
        );
    }

    #[test]
    fn empty_instance_is_a_noop() {
        let g = coflow_net::Graph::with_nodes(2);
        let inst = Instance::new(g, vec![]);
        let out = run(&inst, &mut Greedy, &EngineConfig::default());
        assert_eq!(out.engine.epochs, 0);
        assert_eq!(out.metrics.weighted_sum, 0.0);
    }

    #[test]
    fn custom_trace_delays_admission() {
        let inst = staggered();
        let trace = ArrivalTrace::from_events(vec![(3.0, 0), (3.0, 1)]);
        let out = run_trace(&inst, &trace, &mut Fifo, &EngineConfig::default());
        // Nothing runs before t=3 even though releases are 0 and 1.
        for fs in &out.schedule.flows {
            for s in &fs.segments {
                assert!(s.start >= 3.0 - 1e-9);
            }
        }
        assert!((out.flow_completion[0] - 5.0).abs() < 1e-9);
    }
}
