//! # coflow-engine
//!
//! An event-driven **online** scheduler for coflows with release dates:
//! the scenario the paper's model already carries (per-flow releases,
//! Poisson coflow arrivals in `coflow-workloads::gen`) but that every
//! offline solver in the workspace ignores by seeing the whole instance at
//! time 0.
//!
//! ```text
//!  arrivals ──▶ admission ──▶ residual instance ──▶ OnlinePolicy::plan
//!     ▲            (epoch boundary: EpochTrigger)        │
//!     │                                                  ▼
//!  ArrivalTrace        fluid executor ◀── routes + RatePlan
//!                 (greedy_fill / fair_fill between events)
//! ```
//!
//! * [`trace::ArrivalTrace`] — the time-ordered coflow arrival stream;
//! * [`epoch::EpochTrigger`] — which events open an epoch (arrival,
//!   completion, periodic tick);
//! * [`coflow_core::residual`] — the residual instance handed to policies:
//!   remaining sizes, frozen completed flows, stable flat indices (what
//!   makes warm starts possible);
//! * [`policy`] — the [`policy::OnlinePolicy`] trait and four
//!   implementations: [`policy::LpOrder`] (the paper's LP pipeline
//!   re-solved per epoch through one [`coflow_lp::WarmChain`]),
//!   [`policy::Greedy`], [`policy::WeightedFair`], [`policy::Fifo`];
//! * [`engine`] — the event loop ([`engine::run`] / [`engine::run_trace`]);
//! * [`metrics`] — [`metrics::EngineMetrics`] with per-epoch
//!   [`coflow_lp::SolveStats`], serialized through
//!   [`coflow_workloads::io::Value`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod epoch;
pub mod metrics;
pub mod policy;
pub mod trace;

pub use engine::{run, run_trace, EngineConfig, EngineOutcome, FallbackPolicy, RecoveryPolicy};
pub use epoch::EpochTrigger;
pub use metrics::{EngineMetrics, EpochRecord};
pub use policy::{
    EpochPlan, EpochView, Fifo, Greedy, LpOrder, OnlinePolicy, PolicyError, RatePlan, WeightedFair,
};
pub use trace::ArrivalTrace;

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_core::{Coflow, FlowSpec, Instance};
    use coflow_net::{topo, NodeId};

    fn staggered() -> Instance {
        let t = topo::line(2, 1.0);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 2.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 1.0)]),
            ],
        )
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let inst = staggered();
        let out = run(&inst, &mut Fifo, &EngineConfig::default());
        // FIFO: coflow 0 runs [0,2], coflow 1 waits, runs [2,3].
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 3.0).abs() < 1e-9);
        assert_eq!(out.engine.policy, "Fifo");
        assert!(out.engine.epochs >= 2, "one epoch per arrival at least");
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn greedy_preempts_for_short_coflow() {
        let inst = staggered();
        let out = run(&inst, &mut Greedy, &EngineConfig::default());
        // At t=1 the size-1 coflow has less remaining (1) than coflow 0
        // (also 1 remaining — tie broken by admission keeps coflow 0...
        // make sizes decisive: remaining of coflow 0 at t=1 is 1.0, tie;
        // admission order wins, so coflow 0 finishes first at 2.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fair_splits_capacity() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        );
        let out = run(&inst, &mut WeightedFair, &EngineConfig::default());
        // Equal weights: both progress at 1/2 until both finish at 2.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!((out.flow_completion[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_fair_favors_heavy_coflow() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(3.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        );
        let out = run(&inst, &mut WeightedFair, &EngineConfig::default());
        assert!(
            out.flow_completion[0] < out.flow_completion[1],
            "weight-3 coflow must finish first: {:?}",
            out.flow_completion
        );
    }

    #[test]
    fn lp_order_threads_warm_chain_across_epochs() {
        let inst = staggered();
        let mut pol = LpOrder::default();
        let out = run(&inst, &mut pol, &EngineConfig::default());
        assert!(out.engine.epochs >= 2);
        assert!(out.engine.total_pivots > 0);
        assert!(
            out.engine.warm_used >= 1,
            "second epoch must reuse the basis: {:?}",
            out.engine
        );
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    /// A junk warm basis — here one whose factorization fails, via a fault
    /// hook forcing the warm-start refactorization singular — must be
    /// rejected early in the epoch loop: the solver cold-starts that epoch
    /// (`warm_attempted` without `warm_used`), the run stays checker-clean,
    /// and warm starts resume on later epochs once the basis is sane again.
    #[test]
    fn junk_warm_basis_is_rejected_in_epoch_loop() {
        struct FailFirst {
            calls: usize,
        }
        impl coflow_lp::FaultHook for FailFirst {
            fn on_factorization(&mut self) -> bool {
                self.calls += 1;
                self.calls == 1
            }
        }
        let inst = staggered();
        let mut pol = LpOrder::default();
        let a = run(&inst, &mut pol, &EngineConfig::default());
        assert!(a.engine.epochs >= 2);

        // The chain still holds run A's final basis. Poison its very next
        // factorization: the epoch-1 warm-start refactorize fails, which is
        // exactly what a stale/corrupt snapshot looks like to the solver.
        pol.set_fault_hook(Some(Box::new(FailFirst { calls: 0 })));
        let b = run(&inst, &mut pol, &EngineConfig::default());
        let first = b.engine.epoch_log[0]
            .solve
            .as_ref()
            .expect("first epoch of an LpOrder run re-solves");
        assert!(first.warm_attempted, "stale basis must be offered");
        assert!(
            !first.warm_used,
            "junk basis must be rejected, not limp along: {first:?}"
        );
        assert!(
            b.engine.warm_used >= 1,
            "later epochs must warm-start again: {:?}",
            b.engine
        );
        assert!(b.flow_completion.iter().all(|&c| c.is_finite() && c > 0.0));
        let routed = inst.with_paths(&b.paths);
        assert!(b.schedule.check(&routed, 1e-6, 1e-6).is_empty());
        // Same instance, so the degraded run still lands on the same plan.
        assert_eq!(a.flow_completion, b.flow_completion);
    }

    #[test]
    fn periodic_trigger_batches_admissions() {
        let inst = staggered();
        let cfg = EngineConfig {
            trigger: EpochTrigger::periodic(4.0),
            ..Default::default()
        };
        let out = run(&inst, &mut Fifo, &cfg);
        // Coflow 1 arrives at t=1 but is only admitted at the t=4 tick
        // (coflow 0 keeps the engine busy until then), so it completes at 5.
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!(
            (out.flow_completion[1] - 5.0).abs() < 1e-9,
            "got {:?}",
            out.flow_completion
        );
    }

    #[test]
    fn empty_instance_is_a_noop() {
        let g = coflow_net::Graph::with_nodes(2);
        let inst = Instance::new(g, vec![]);
        let out = run(&inst, &mut Greedy, &EngineConfig::default());
        assert_eq!(out.engine.epochs, 0);
        assert_eq!(out.metrics.weighted_sum, 0.0);
    }

    /// A policy whose `plan` fails in a chosen call window; outside the
    /// window it defers to [`Greedy`].
    struct Flaky {
        calls: usize,
        fail_from: usize,
        fail_to: usize,
    }

    impl OnlinePolicy for Flaky {
        fn name(&self) -> &'static str {
            "Flaky"
        }
        fn plan(&mut self, view: &EpochView<'_>) -> Result<EpochPlan, PolicyError> {
            self.calls += 1;
            if self.calls >= self.fail_from && self.calls < self.fail_to {
                Err(PolicyError::Other("injected plan failure".into()))
            } else {
                Greedy.plan(view)
            }
        }
    }

    #[test]
    fn ladder_falls_back_when_first_epoch_fails() {
        let inst = staggered();
        // First epoch: the plan call and its one retry both fail; there is
        // no standing plan to reuse, so the fallback policy serves it.
        let mut pol = Flaky {
            calls: 0,
            fail_from: 1,
            fail_to: 3,
        };
        let out = run(&inst, &mut pol, &EngineConfig::default());
        assert!(out.flow_completion.iter().all(|&c| c > 0.0), "all complete");
        assert_eq!(out.engine.degraded_epochs, 1);
        assert_eq!(out.engine.fallback_policy_uses, 1);
        assert_eq!(out.engine.stale_schedule_ms, 0.0);
        let first = &out.engine.epoch_log[0];
        assert_eq!(first.retries, 1);
        assert!(first.fallback);
        assert!(first.degraded.as_deref().unwrap().starts_with("fallback"));
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn ladder_reuses_stale_plan_mid_run() {
        let inst = staggered();
        // Second epoch (the t=1 arrival) fails past its retry: the engine
        // keeps epoch 1's rate plan (stale by 1 time unit) and BFS-routes
        // the newly arrived flow so it still makes progress.
        let mut pol = Flaky {
            calls: 0,
            fail_from: 2,
            fail_to: 4,
        };
        let out = run(&inst, &mut pol, &EngineConfig::default());
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
        assert!(
            (out.flow_completion[1] - 3.0).abs() < 1e-9,
            "stale plan still serves the new flow"
        );
        assert!(out.engine.degraded_epochs >= 1);
        assert_eq!(out.engine.fallback_policy_uses, 0);
        assert!(out.engine.stale_schedule_ms > 0.0);
        let degraded = out
            .engine
            .epoch_log
            .iter()
            .find(|e| e.degraded.is_some())
            .unwrap();
        assert!(degraded
            .degraded
            .as_deref()
            .unwrap()
            .starts_with("stale-reuse"));
        assert!(degraded.stale_ms > 0.0);
        let routed = inst.with_paths(&out.paths);
        assert!(out.schedule.check(&routed, 1e-6, 1e-6).is_empty());
    }

    #[test]
    fn retry_rung_recovers_without_degrading() {
        let inst = staggered();
        // Each failure window is one call wide: the single retry succeeds,
        // so no epoch degrades and the run matches plain Greedy.
        let mut pol = Flaky {
            calls: 0,
            fail_from: 1,
            fail_to: 2,
        };
        let out = run(&inst, &mut pol, &EngineConfig::default());
        assert_eq!(out.engine.degraded_epochs, 0);
        assert_eq!(out.engine.epoch_log[0].retries, 1);
        assert!((out.flow_completion[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn custom_trace_delays_admission() {
        let inst = staggered();
        let trace = ArrivalTrace::from_events(vec![(3.0, 0), (3.0, 1)]);
        let out = run_trace(&inst, &trace, &mut Fifo, &EngineConfig::default());
        // Nothing runs before t=3 even though releases are 0 and 1.
        for fs in &out.schedule.flows {
            for s in &fs.segments {
                assert!(s.start >= 3.0 - 1e-9);
            }
        }
        assert!((out.flow_completion[0] - 5.0).abs() < 1e-9);
    }
}
