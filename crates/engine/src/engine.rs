//! The discrete-event online scheduling engine.
//!
//! The engine ingests coflow arrivals from an [`ArrivalTrace`], maintains
//! the live (admitted, not yet completed) flow set, and advances a fluid
//! executor between events. Two nested cadences:
//!
//! * **events** — flow completions, flow releases, coflow arrivals,
//!   periodic ticks. At every event the executor re-applies the standing
//!   [`RatePlan`] (the same shared allocators the offline simulator uses:
//!   [`coflow_sim::fluid::greedy_fill`] / [`fair_fill`]), so rates adapt
//!   as flows finish or appear;
//! * **epoch boundaries** — the subset of events selected by the
//!   [`EpochTrigger`]. There the engine admits newly arrived coflows,
//!   updates the [`residual instance`](coflow_core::residual) in place, and asks
//!   the [`OnlinePolicy`] for a fresh plan — for [`LpOrder`] that is a
//!   warm-started LP re-solve whose [`SolveStats`] land in the epoch log.
//!
//! [`fair_fill`]: coflow_sim::fluid::fair_fill
//! [`LpOrder`]: crate::policy::LpOrder
//! [`SolveStats`]: coflow_lp::SolveStats

use crate::epoch::EpochTrigger;
use crate::metrics::{EngineMetrics, EpochRecord};
use crate::policy::{EpochPlan, EpochView, OnlinePolicy, RatePlan};
use crate::trace::ArrivalTrace;
use coflow_core::objective::{metrics, Metrics};
use coflow_core::residual::ResidualState;
use coflow_core::schedule::{CircuitSchedule, FlowSchedule};
use coflow_core::Instance;
use coflow_net::Path;
use coflow_obs::{Counter as ObsCounter, HistId, Recorder, SpanName};
use coflow_sim::fluid::{fair_fill, greedy_fill, push_segment};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// When to re-optimize (see [`EpochTrigger`]).
    pub trigger: EpochTrigger,
    /// Relative volume tolerance for deeming a flow complete (matches
    /// [`coflow_sim::fluid::SimConfig::vol_eps`]).
    pub vol_eps: f64,
    /// What to do when the policy fails to plan an epoch (see
    /// [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            trigger: EpochTrigger::default(),
            vol_eps: 1e-9,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// The solver-free policy the degradation ladder's last rung plans with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Shortest-remaining-coflow-first ([`crate::policy::Greedy`]).
    #[default]
    Greedy,
    /// Weighted max–min fair sharing ([`crate::policy::WeightedFair`]).
    WeightedFair,
    /// Admission order ([`crate::policy::Fifo`]).
    Fifo,
}

impl FallbackPolicy {
    /// Display name recorded in the epoch log.
    pub fn name(self) -> &'static str {
        match self {
            FallbackPolicy::Greedy => "Greedy",
            FallbackPolicy::WeightedFair => "WeightedFair",
            FallbackPolicy::Fifo => "Fifo",
        }
    }

    fn plan(self, view: &EpochView<'_>) -> EpochPlan {
        use crate::policy::{Fifo, Greedy, WeightedFair};
        let planned = match self {
            FallbackPolicy::Greedy => Greedy.plan(view),
            FallbackPolicy::WeightedFair => WeightedFair.plan(view),
            FallbackPolicy::Fifo => Fifo.plan(view),
        };
        // lint: allow(no_panic) — the solver-free policies never return Err
        planned.expect("solver-free fallback policies are infallible")
    }
}

/// Per-epoch degradation ladder: what the engine does when
/// [`OnlinePolicy::plan`] fails.
///
/// The rungs, in order:
/// 1. **retry** the primary policy up to `retry` more times in the same
///    epoch (retries matter: LP failures are often transient — a warm
///    basis gone bad, an injected fault window, a budget raced by arrival
///    bursts);
/// 2. **reuse the standing plan** (`reuse_last_plan`): keep the previous
///    epoch's rate discipline, route newly arrived flows by BFS, and track
///    how stale the reused plan was;
/// 3. **fall back** to a solver-free policy (`fallback`) for this epoch —
///    always succeeds, so a run never dies at a plan failure.
///
/// Every degraded epoch is recorded in the epoch log, the aggregate
/// [`EngineMetrics`] (`degraded_epochs`, `fallback_policy_uses`,
/// `stale_schedule_ms`), and the engine trace (a `fallback` span plus the
/// `degraded_epochs` / `policy_fallbacks` counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Same-epoch retries of the primary policy after a failure.
    pub retry: usize,
    /// Reuse the previous epoch's plan before falling back.
    pub reuse_last_plan: bool,
    /// The ladder's last rung.
    pub fallback: FallbackPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            retry: 1,
            reuse_last_plan: true,
            fallback: FallbackPolicy::Greedy,
        }
    }
}

/// Result of an engine run.
#[derive(Clone, Debug)]
pub struct EngineOutcome {
    /// The realized piecewise-constant schedule (original flat indices).
    pub schedule: CircuitSchedule,
    /// Per-flow completion times (flat order).
    pub flow_completion: Vec<f64>,
    /// The path each flow committed to (empty for never-routed zero-size
    /// flows).
    pub paths: Vec<Path>,
    /// Objective metrics of the realized schedule.
    pub metrics: Metrics,
    /// Engine-level metrics: epochs, re-solve time, pivots, warm-start
    /// outcomes.
    pub engine: EngineMetrics,
    /// The engine's own trace: one `epoch` span per re-plan boundary with
    /// a nested `plan` span around the policy call, plus the `resolve`
    /// latency histogram. Under `COFLOW_OBS_CLOCK=logical` the rendered
    /// JSONL is byte-identical across runs.
    pub trace: coflow_obs::Trace,
}

/// Runs `policy` online over `instance`'s canonical arrival trace (each
/// coflow arrives at its earliest flow release).
pub fn run(
    instance: &Instance,
    policy: &mut dyn OnlinePolicy,
    cfg: &EngineConfig,
) -> EngineOutcome {
    run_trace(
        instance,
        &ArrivalTrace::from_instance(instance),
        policy,
        cfg,
    )
}

/// Runs `policy` online over an explicit arrival trace. A flow can start
/// no earlier than `max(its release, its coflow's trace arrival)`, so
/// traces can batch or delay admissions relative to the instance.
///
/// # Panics
/// * if the trace does not cover every coflow exactly once;
/// * if the policy tries to re-route a committed flow;
/// * if the engine deadlocks or exceeds its event budget (bugs).
pub fn run_trace(
    instance: &Instance,
    trace: &ArrivalTrace,
    policy: &mut dyn OnlinePolicy,
    cfg: &EngineConfig,
) -> EngineOutcome {
    let nf = instance.flow_count();
    let ncof = instance.coflow_count();
    assert_eq!(
        trace.len(),
        ncof,
        "trace must cover every coflow exactly once"
    );
    let g = &instance.graph;

    // Flat SoA view: the per-event loops below only touch scalar fields.
    let flat = instance.flatten();

    let mut admitted_at = vec![f64::INFINITY; ncof];
    let mut admission_order: Vec<usize> = Vec::with_capacity(ncof);
    let mut remaining = flat.sizes().to_vec();
    let mut rstate = ResidualState::new(instance);
    let mut done = vec![false; nf];
    let mut completion = vec![0.0_f64; nf];
    let mut paths_opt: Vec<Option<Path>> = vec![None; nf];
    let mut paths_flat: Vec<Path> = vec![Path::empty(); nf];
    let mut schedule = CircuitSchedule {
        flows: (0..nf).map(|_| FlowSchedule::default()).collect(),
    };

    let mut plan = EpochPlan {
        routes: Vec::new(),
        rates: RatePlan::Ordered(Vec::new()),
    };
    // Degradation-ladder state: when the standing plan was computed and
    // whether one exists at all (rung 2 reuses it; without one the ladder
    // goes straight to the fallback policy).
    let mut plan_birth = 0.0_f64;
    let mut have_plan = false;
    let mut epoch_log: Vec<EpochRecord> = Vec::new();
    // The engine's trace recorder: ring pre-allocated here, so recording
    // inside the event loop never allocates.
    let mut rec = Recorder::new();
    let mut t = 0.0_f64;
    let mut next_arr = 0usize;
    let mut events = 0usize;
    let mut epoch_due = true;

    let mut rates = vec![0.0_f64; nf];
    let mut residual_cap = vec![0.0_f64; g.edge_count()];
    let mut event_budget = 8 * (nf + ncof) + 64;
    if let Some(p) = cfg.trigger.period {
        event_budget += (instance.horizon() / p).ceil() as usize + 16;
    }

    // Effective release: a flow starts no earlier than its coflow's
    // admission.
    let eff_release =
        |f: usize, admitted_at: &[f64]| flat.release(f).max(admitted_at[flat.coflow_of(f)]);

    loop {
        if epoch_due {
            // --- Admission. ---
            while next_arr < trace.len() && trace.events()[next_arr].0 <= t + 1e-9 {
                let (at, ci) = trace.events()[next_arr];
                // `at` may predate this boundary under batching triggers;
                // the flow could not run before now because `admitted_at`
                // was infinite in every earlier activity check.
                admitted_at[ci] = at;
                admission_order.push(ci);
                // Zero-size flows complete the moment they exist.
                for fi in flat.flows_of(ci) {
                    if flat.size(fi) <= 0.0 {
                        done[fi] = true;
                        completion[fi] = flat.release(fi).max(t);
                    }
                }
                next_arr += 1;
            }

            // --- Re-plan (only when there is live work). ---
            let live = (0..nf).any(|f| !done[f] && admitted_at[flat.coflow_of(f)].is_finite());
            if live {
                rec.enter(SpanName::Epoch);
                let residual = rstate.update(instance, t, &admission_order, &remaining, &paths_opt);
                let live_flows = residual
                    .instance
                    .flows()
                    .filter(|&(_, rf, _)| !done[residual.flat_map[rf]])
                    .count();
                rec.enter(SpanName::Plan);
                let view = EpochView {
                    now: t,
                    original: instance,
                    residual,
                    paths: &paths_opt,
                };
                // --- Degradation ladder (see RecoveryPolicy). ---
                let mut retries = 0usize;
                let mut fresh = policy.plan(&view);
                while fresh.is_err() && retries < cfg.recovery.retry {
                    retries += 1;
                    rec.bump(ObsCounter::Recoveries, 1);
                    fresh = policy.plan(&view);
                }
                let mut degraded = None;
                let mut stale_ms = 0.0_f64;
                let mut fallback = false;
                match fresh {
                    Ok(p) => {
                        plan = p;
                        plan_birth = t;
                        have_plan = true;
                    }
                    Err(e) => {
                        rec.enter(SpanName::Fallback);
                        rec.bump(ObsCounter::DegradedEpochs, 1);
                        if cfg.recovery.reuse_last_plan && have_plan {
                            // Rung 2: keep the standing rate discipline,
                            // but flows that arrived after it was computed
                            // still need routes to make progress.
                            stale_ms = t - plan_birth;
                            plan.routes = crate::policy::route_missing(&view);
                            degraded = Some(format!("stale-reuse: {e}"));
                        } else {
                            // Rung 3: plan this epoch with the solver-free
                            // fallback policy.
                            rec.bump(ObsCounter::PolicyFallbacks, 1);
                            fallback = true;
                            plan = cfg.recovery.fallback.plan(&view);
                            plan_birth = t;
                            have_plan = true;
                            degraded =
                                Some(format!("fallback {}: {e}", cfg.recovery.fallback.name()));
                        }
                        rec.exit();
                    }
                }
                let plan_span = rec.exit();
                let resolve_ms = rec.mode().to_ms(plan_span.dur);
                rec.record_hist(HistId::Resolve, plan_span.dur);
                for (f, p) in std::mem::take(&mut plan.routes) {
                    if done[f] && flat.size(f) <= 0.0 {
                        continue; // zero-size flows never transmit
                    }
                    assert!(
                        paths_opt[f].is_none(),
                        "policy attempted to re-route committed flow {f}"
                    );
                    schedule.flows[f].path = p.clone();
                    paths_flat[f] = p.clone();
                    paths_opt[f] = Some(p);
                }
                epoch_log.push(EpochRecord {
                    time: t,
                    live_flows,
                    resolve_ms,
                    solve: policy.last_solve(),
                    colgen: policy.last_colgen(),
                    degraded,
                    retries,
                    stale_ms,
                    fallback,
                });
                rec.exit();
                rec.bump(ObsCounter::Epochs, 1);
            } else {
                plan = EpochPlan {
                    routes: Vec::new(),
                    rates: RatePlan::Ordered(Vec::new()),
                };
            }
            // (`epoch_due` is recomputed at the bottom of every iteration.)
        }

        if done.iter().all(|&d| d) && next_arr >= trace.len() {
            break;
        }
        events += 1;
        assert!(
            events <= event_budget,
            "online engine exceeded event budget (bug)"
        );

        // --- Allocate rates under the standing plan. ---
        for (e, r) in residual_cap.iter_mut().enumerate() {
            *r = g.capacity(coflow_net::EdgeId(e as u32));
        }
        rates.fill(0.0);
        let is_active = |f: usize| {
            !done[f]
                && admitted_at[flat.coflow_of(f)].is_finite()
                && eff_release(f, &admitted_at) <= t + 1e-12
                && paths_opt[f].is_some()
        };
        match &plan.rates {
            RatePlan::Ordered(order) => {
                let mut active: Vec<usize> =
                    order.iter().copied().filter(|&f| is_active(f)).collect();
                // Defensive: active flows the plan omitted go last, in flat
                // order (they will be ranked properly at the next epoch).
                // lint: allow(hash_order) — membership test only, never iterated
                let in_plan: std::collections::HashSet<usize> = active.iter().copied().collect();
                active.extend((0..nf).filter(|&f| is_active(f) && !in_plan.contains(&f)));
                greedy_fill(&paths_flat, &active, &mut rates, &mut residual_cap);
            }
            RatePlan::Fair(weights) => {
                let active: Vec<usize> = (0..nf).filter(|&f| is_active(f)).collect();
                fair_fill(
                    &paths_flat,
                    &active,
                    Some(weights),
                    &mut rates,
                    &mut residual_cap,
                );
            }
        }

        // --- Find the next event time. ---
        let mut next_t = f64::INFINITY;
        for f in 0..nf {
            if rates[f] > 1e-12 {
                next_t = next_t.min(t + remaining[f] / rates[f]);
            }
        }
        for f in 0..nf {
            if !done[f] && admitted_at[flat.coflow_of(f)].is_finite() {
                let r = eff_release(f, &admitted_at);
                if r > t + 1e-12 {
                    next_t = next_t.min(r);
                }
            }
        }
        let live_admitted = (0..nf).any(|f| !done[f] && admitted_at[flat.coflow_of(f)].is_finite());
        let next_arrival = (next_arr < trace.len()).then(|| trace.events()[next_arr].0);
        if let Some(at) = next_arrival {
            if cfg.trigger.on_arrival {
                next_t = next_t.min(at);
            }
        }
        let mut tick = None;
        if cfg.trigger.period.is_some() && (live_admitted || next_arrival.is_some()) {
            tick = cfg.trigger.next_tick(t);
            if let Some(tk) = tick {
                next_t = next_t.min(tk);
            }
        }
        if !next_t.is_finite() {
            // Last resort: idle until the next arrival and force an epoch
            // there (covers triggers that would otherwise sleep forever).
            if let Some(at) = next_arrival {
                next_t = at;
            }
        }
        assert!(
            next_t.is_finite(),
            "online engine deadlocked at t={t}: live flows starved"
        );
        // Guard against zero-length steps from numerical ties.
        let next_t = next_t.max(t + 1e-12);

        // --- Advance, record segments. ---
        let mut completed_any = false;
        for f in 0..nf {
            if rates[f] > 1e-12 {
                push_segment(&mut schedule.flows[f].segments, t, next_t, rates[f]);
                remaining[f] -= rates[f] * (next_t - t);
                let tol = cfg.vol_eps * (1.0 + flat.size(f));
                if remaining[f] <= tol {
                    remaining[f] = 0.0;
                    done[f] = true;
                    completion[f] = next_t;
                    completed_any = true;
                }
            }
        }
        t = next_t;

        // --- Does this event open an epoch? ---
        let arrived_now = next_arrival.is_some_and(|at| at <= t + 1e-9);
        let tick_hit = tick.is_some_and(|tk| t + 1e-12 >= tk);
        epoch_due = (completed_any && cfg.trigger.on_completion)
            || (arrived_now && cfg.trigger.on_arrival)
            || tick_hit
            || (arrived_now && !live_admitted);
    }

    let m = metrics(instance, &completion);
    let engine = EngineMetrics::collect(policy, &m, events, &epoch_log);
    EngineOutcome {
        schedule,
        flow_completion: completion,
        paths: paths_flat,
        metrics: m,
        engine,
        trace: rec.drain(),
    }
}
