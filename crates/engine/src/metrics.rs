//! Engine-level metrics and their JSON snapshot.
//!
//! [`EngineMetrics`] records what the *engine* did on top of what the
//! schedule achieved: epochs, per-epoch LP [`SolveStats`], re-solve wall
//! time, and warm-chain outcomes. The snapshot serializes through the
//! workspace's one hand-rolled JSON implementation
//! ([`coflow_workloads::io::Value`]), so `BENCH_online.json` is produced
//! and parsed by the same code as the instance snapshots.

use crate::policy::OnlinePolicy;
use coflow_core::Metrics;
use coflow_lp::{ColGenStats, SolveStats};
use coflow_obs::Histogram;
use coflow_workloads::io::Value;

/// One epoch boundary's record.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Boundary time.
    pub time: f64,
    /// Live (admitted, not completed) flows at the boundary.
    pub live_flows: usize,
    /// Wall time of the policy's plan call in milliseconds.
    pub resolve_ms: f64,
    /// LP statistics of the re-solve (`None` for solver-free policies).
    pub solve: Option<SolveStats>,
    /// Column-generation statistics of the re-solve (`None` for
    /// solver-free policies and eager column enumeration).
    pub colgen: Option<ColGenStats>,
    /// How the epoch was served when the primary policy failed: `None` for
    /// a fresh primary plan, otherwise a description of the degradation
    /// rung taken and the error that forced it.
    pub degraded: Option<String>,
    /// Primary-policy retries consumed at this boundary.
    pub retries: usize,
    /// How stale the reused plan was at this boundary (model-time units;
    /// 0 unless the stale-reuse rung was taken).
    pub stale_ms: f64,
    /// The epoch was planned by the fallback policy.
    pub fallback: bool,
}

/// Aggregate engine metrics for one run.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Policy display name.
    pub policy: String,
    /// Per-coflow completion times.
    pub coflow_completion: Vec<f64>,
    /// `Σ ω_k C_k` of the realized schedule.
    pub weighted_sum: f64,
    /// Unweighted mean coflow completion.
    pub avg_coflow_completion: f64,
    /// Epoch boundaries at which the policy re-planned.
    pub epochs: usize,
    /// Executor events processed (completions, releases, arrivals, ticks).
    pub events: usize,
    /// Total plan/re-solve wall time in milliseconds.
    pub total_resolve_ms: f64,
    /// Median per-epoch re-solve latency in milliseconds. Quantiles come
    /// from a deterministic power-of-two histogram over nanosecond
    /// samples ([`coflow_obs::Histogram`]), so the reported value is the
    /// inclusive upper edge of the bucket holding the requested rank —
    /// stable across runs and merge orders, coarse by design.
    pub resolve_ms_p50: f64,
    /// 90th-percentile per-epoch re-solve latency in milliseconds.
    pub resolve_ms_p90: f64,
    /// 99th-percentile per-epoch re-solve latency in milliseconds.
    pub resolve_ms_p99: f64,
    /// Total simplex pivots across all epoch re-solves.
    pub total_pivots: usize,
    /// Total phase-1 pivots across all epoch re-solves.
    pub total_phase1_pivots: usize,
    /// Epoch re-solves that attempted a warm start.
    pub warm_attempted: usize,
    /// Epoch re-solves whose warm basis was accepted.
    pub warm_used: usize,
    /// Total columns the epoch re-solves materialized in their restricted
    /// masters (seeded + generated; 0 for eager / solver-free policies).
    pub total_columns: usize,
    /// Columns injected by pricing across all epoch re-solves. With a
    /// cross-epoch [`PathPool`](coflow_core::circuit::lp_free::PathPool)
    /// later epochs are seeded with earlier epochs' discoveries, so this
    /// total shrinks relative to a cold pool.
    pub total_columns_generated: usize,
    /// Restricted-master pricing rounds across all epoch re-solves.
    pub total_colgen_rounds: usize,
    /// Epochs not served by a fresh primary-policy plan (the degradation
    /// ladder's stale-reuse or fallback rung fired).
    pub degraded_epochs: usize,
    /// Epochs planned by the fallback policy.
    pub fallback_policy_uses: usize,
    /// Total model time the executor ran under a stale (reused) plan,
    /// summed over degraded boundaries as `now − plan birth`.
    pub stale_schedule_ms: f64,
    /// The per-epoch log.
    pub epoch_log: Vec<EpochRecord>,
}

impl EngineMetrics {
    /// Folds the epoch log and objective metrics into the aggregate view.
    pub(crate) fn collect(
        policy: &dyn OnlinePolicy,
        m: &Metrics,
        events: usize,
        epoch_log: &[EpochRecord],
    ) -> Self {
        let solves: Vec<&SolveStats> = epoch_log.iter().filter_map(|e| e.solve.as_ref()).collect();
        let colgens: Vec<&ColGenStats> =
            epoch_log.iter().filter_map(|e| e.colgen.as_ref()).collect();
        // Latency quantiles over ns-scaled samples; the histogram's
        // integer bucket counts make the result independent of epoch
        // order and of how many threads each re-solve ran with.
        let mut resolve = Histogram::new();
        for e in epoch_log {
            resolve.record((e.resolve_ms * 1e6) as u64);
        }
        Self {
            policy: policy.name().to_string(),
            coflow_completion: m.coflow_completion.clone(),
            weighted_sum: m.weighted_sum,
            avg_coflow_completion: m.avg_coflow_completion,
            epochs: epoch_log.len(),
            events,
            total_resolve_ms: epoch_log.iter().map(|e| e.resolve_ms).sum(),
            resolve_ms_p50: resolve.quantile(0.5) as f64 / 1e6,
            resolve_ms_p90: resolve.quantile(0.9) as f64 / 1e6,
            resolve_ms_p99: resolve.quantile(0.99) as f64 / 1e6,
            total_pivots: solves.iter().map(|s| s.iterations).sum(),
            total_phase1_pivots: solves.iter().map(|s| s.phase1_iterations).sum(),
            warm_attempted: solves.iter().filter(|s| s.warm_attempted).count(),
            warm_used: solves.iter().filter(|s| s.warm_used).count(),
            total_columns: colgens.iter().map(|c| c.final_cols).sum(),
            total_columns_generated: colgens.iter().map(|c| c.generated_cols).sum(),
            total_colgen_rounds: colgens.iter().map(|c| c.rounds).sum(),
            degraded_epochs: epoch_log.iter().filter(|e| e.degraded.is_some()).count(),
            fallback_policy_uses: epoch_log.iter().filter(|e| e.fallback).count(),
            stale_schedule_ms: epoch_log.iter().map(|e| e.stale_ms).sum(),
            epoch_log: epoch_log.to_vec(),
        }
    }

    /// The JSON snapshot (schema used by `results/BENCH_online.json`).
    pub fn to_json(&self) -> Value {
        let solve_json = |s: &SolveStats| {
            Value::Obj(vec![
                ("iterations".into(), Value::Num(s.iterations as f64)),
                (
                    "phase1_iterations".into(),
                    Value::Num(s.phase1_iterations as f64),
                ),
                (
                    "refactorizations".into(),
                    Value::Num(s.refactorizations as f64),
                ),
                ("rows".into(), Value::Num(s.rows as f64)),
                ("cols".into(), Value::Num(s.cols as f64)),
                ("warm_attempted".into(), Value::Bool(s.warm_attempted)),
                ("warm_used".into(), Value::Bool(s.warm_used)),
                ("allocs".into(), Value::Num(s.allocs as f64)),
                ("scratch_reuse".into(), Value::Num(s.scratch_reuse as f64)),
                (
                    "pricing_full_scans".into(),
                    Value::Num(s.pricing_full_scans as f64),
                ),
                (
                    "pricing_list_hits".into(),
                    Value::Num(s.pricing_list_hits as f64),
                ),
                ("threads".into(), Value::Num(s.threads as f64)),
            ])
        };
        Value::Obj(vec![
            ("policy".into(), Value::Str(self.policy.clone())),
            ("weighted_sum".into(), Value::Num(self.weighted_sum)),
            (
                "avg_coflow_completion".into(),
                Value::Num(self.avg_coflow_completion),
            ),
            (
                "coflow_completion".into(),
                Value::Arr(
                    self.coflow_completion
                        .iter()
                        .map(|&c| Value::Num(c))
                        .collect(),
                ),
            ),
            ("epochs".into(), Value::Num(self.epochs as f64)),
            ("events".into(), Value::Num(self.events as f64)),
            ("total_resolve_ms".into(), Value::Num(self.total_resolve_ms)),
            ("resolve_ms_p50".into(), Value::Num(self.resolve_ms_p50)),
            ("resolve_ms_p90".into(), Value::Num(self.resolve_ms_p90)),
            ("resolve_ms_p99".into(), Value::Num(self.resolve_ms_p99)),
            (
                "total_columns".into(),
                Value::Num(self.total_columns as f64),
            ),
            (
                "total_columns_generated".into(),
                Value::Num(self.total_columns_generated as f64),
            ),
            (
                "total_colgen_rounds".into(),
                Value::Num(self.total_colgen_rounds as f64),
            ),
            ("total_pivots".into(), Value::Num(self.total_pivots as f64)),
            (
                "total_phase1_pivots".into(),
                Value::Num(self.total_phase1_pivots as f64),
            ),
            (
                "warm_attempted".into(),
                Value::Num(self.warm_attempted as f64),
            ),
            ("warm_used".into(), Value::Num(self.warm_used as f64)),
            (
                "degraded_epochs".into(),
                Value::Num(self.degraded_epochs as f64),
            ),
            (
                "fallback_policy_uses".into(),
                Value::Num(self.fallback_policy_uses as f64),
            ),
            (
                "stale_schedule_ms".into(),
                Value::Num(self.stale_schedule_ms),
            ),
            (
                "epoch_log".into(),
                Value::Arr(
                    self.epoch_log
                        .iter()
                        .map(|e| {
                            let mut pairs = vec![
                                ("time".into(), Value::Num(e.time)),
                                ("live_flows".into(), Value::Num(e.live_flows as f64)),
                                ("resolve_ms".into(), Value::Num(e.resolve_ms)),
                            ];
                            if let Some(d) = &e.degraded {
                                pairs.push(("degraded".into(), Value::Str(d.clone())));
                                pairs.push(("retries".into(), Value::Num(e.retries as f64)));
                                pairs.push(("stale_ms".into(), Value::Num(e.stale_ms)));
                                pairs.push(("fallback".into(), Value::Bool(e.fallback)));
                            }
                            if let Some(s) = &e.solve {
                                pairs.push(("solve".into(), solve_json(s)));
                            }
                            if let Some(c) = &e.colgen {
                                pairs.push((
                                    "colgen".into(),
                                    Value::Obj(vec![
                                        ("rounds".into(), Value::Num(c.rounds as f64)),
                                        ("seeded_cols".into(), Value::Num(c.seeded_cols as f64)),
                                        (
                                            "generated_cols".into(),
                                            Value::Num(c.generated_cols as f64),
                                        ),
                                        ("final_cols".into(), Value::Num(c.final_cols as f64)),
                                        ("pricing_ms".into(), Value::Num(c.pricing_ms)),
                                        ("master_ms".into(), Value::Num(c.master_ms)),
                                    ]),
                                ));
                            }
                            Value::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_workloads::io::parse_json;

    #[test]
    fn json_snapshot_roundtrips_and_exposes_fields() {
        let m = EngineMetrics {
            policy: "LpOrder".into(),
            coflow_completion: vec![2.0, 4.5],
            weighted_sum: 11.0,
            avg_coflow_completion: 3.25,
            epochs: 3,
            events: 9,
            total_resolve_ms: 1.5,
            resolve_ms_p50: 0.5,
            resolve_ms_p90: 1.0,
            resolve_ms_p99: 1.0,
            total_pivots: 120,
            total_phase1_pivots: 30,
            warm_attempted: 2,
            warm_used: 2,
            total_columns: 60,
            total_columns_generated: 12,
            total_colgen_rounds: 5,
            degraded_epochs: 1,
            fallback_policy_uses: 0,
            stale_schedule_ms: 0.25,
            epoch_log: vec![EpochRecord {
                time: 0.0,
                live_flows: 4,
                resolve_ms: 0.5,
                degraded: Some("stale-reuse: lp: numerical".into()),
                retries: 1,
                stale_ms: 0.25,
                fallback: false,
                solve: Some(SolveStats {
                    iterations: 40,
                    warm_attempted: true,
                    warm_used: true,
                    scratch_reuse: 7,
                    pricing_full_scans: 5,
                    pricing_list_hits: 35,
                    threads: 4,
                    ..Default::default()
                }),
                colgen: Some(ColGenStats {
                    rounds: 3,
                    seeded_cols: 16,
                    generated_cols: 12,
                    final_cols: 28,
                    ..Default::default()
                }),
            }],
        };
        let v = m.to_json();
        let back = parse_json(&v.render()).unwrap();
        assert_eq!(back.lookup("policy"), Some(&Value::Str("LpOrder".into())));
        assert_eq!(back.lookup("total_pivots"), Some(&Value::Num(120.0)));
        assert_eq!(back.lookup("resolve_ms_p50"), Some(&Value::Num(0.5)));
        assert_eq!(back.lookup("resolve_ms_p99"), Some(&Value::Num(1.0)));
        let log = match back.lookup("epoch_log") {
            Some(Value::Arr(items)) => items,
            other => panic!("expected epoch_log array, got {other:?}"),
        };
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].lookup("solve").unwrap().lookup("warm_used"),
            Some(&Value::Bool(true))
        );
        assert_eq!(
            log[0].lookup("solve").unwrap().lookup("scratch_reuse"),
            Some(&Value::Num(7.0))
        );
        assert_eq!(
            log[0].lookup("solve").unwrap().lookup("pricing_list_hits"),
            Some(&Value::Num(35.0))
        );
        assert_eq!(
            log[0].lookup("solve").unwrap().lookup("threads"),
            Some(&Value::Num(4.0))
        );
    }
}
