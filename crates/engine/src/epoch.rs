//! Epoch boundaries: when the engine re-optimizes.
//!
//! Between epoch boundaries the executor only *re-allocates* rates (cheap:
//! the same priority order or fair weights, re-applied as flows complete or
//! get released). At an epoch boundary the engine additionally admits newly
//! arrived coflows, rebuilds the residual instance, and asks the
//! [`crate::policy::OnlinePolicy`] for a fresh plan — for LP policies that
//! is a warm-started re-solve.

/// Pluggable epoch-boundary condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochTrigger {
    /// Re-plan whenever a coflow arrives.
    pub on_arrival: bool,
    /// Re-plan whenever a flow completes.
    pub on_completion: bool,
    /// Also re-plan at every multiple of this period (anchored at t = 0).
    pub period: Option<f64>,
}

impl Default for EpochTrigger {
    /// Re-plan on every arrival and completion (the most reactive setting).
    fn default() -> Self {
        Self {
            on_arrival: true,
            on_completion: true,
            period: None,
        }
    }
}

impl EpochTrigger {
    /// Re-plan on arrivals and completions (same as `Default`).
    pub fn events() -> Self {
        Self::default()
    }

    /// Re-plan only when new coflows arrive; completions just free
    /// bandwidth under the standing plan (this makes a batch instance with
    /// all releases at 0 run as a *single* epoch — the offline regime).
    pub fn arrivals_only() -> Self {
        Self {
            on_arrival: true,
            on_completion: false,
            period: None,
        }
    }

    /// Re-plan on a fixed timer only (arrivals wait for the next tick;
    /// the engine still forces an epoch if it would otherwise sit idle
    /// with work pending).
    ///
    /// # Panics
    /// If `period` is not positive and finite.
    pub fn periodic(period: f64) -> Self {
        assert!(
            period > 0.0 && period.is_finite(),
            "need a positive finite period, got {period}"
        );
        Self {
            on_arrival: false,
            on_completion: false,
            period: Some(period),
        }
    }

    /// The first tick strictly after `t` (`None` without a period).
    pub(crate) fn next_tick(&self, t: f64) -> Option<f64> {
        self.period.map(|p| {
            let k = (t / p).floor() + 1.0;
            let mut tick = k * p;
            // Guard against `t` sitting exactly on a boundary within fp
            // noise: ticks must be strictly in the future.
            if tick <= t + 1e-12 {
                tick += p;
            }
            tick
        })
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn default_fires_on_events() {
        let t = EpochTrigger::default();
        assert!(t.on_arrival && t.on_completion);
        assert_eq!(t.period, None);
        assert_eq!(t.next_tick(5.0), None);
    }

    #[test]
    fn periodic_ticks_strictly_advance() {
        let tr = EpochTrigger::periodic(2.0);
        assert_eq!(tr.next_tick(0.0), Some(2.0));
        assert_eq!(tr.next_tick(1.9), Some(2.0));
        assert_eq!(tr.next_tick(2.0), Some(4.0));
        assert_eq!(tr.next_tick(2.1), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "positive finite period")]
    fn bad_period_rejected() {
        let _ = EpochTrigger::periodic(0.0);
    }
}
