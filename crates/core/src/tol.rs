//! Unified numerical tolerances and float-comparison helpers.
//!
//! Every epsilon used by the algorithm layer lives here under a *name* that
//! says what kind of quantity it guards. Raw `==`/`!=` between floats and
//! ad-hoc per-file `1e-…` literals are banned in library code by the
//! in-tree `coflow-lint` pass (rules L2 and the tolerance-migration policy);
//! comparisons go through these constants and helpers instead, so the whole
//! workspace agrees on what "equal", "at most", and "zero" mean.
//!
//! The LP solver keeps its own [`coflow_lp::LP_TOL`](../../coflow_lp/constant.LP_TOL.html)
//! (it sits *below* this crate in the dependency graph); everything above the
//! solver — rounding, simulation, the online engine, benches — uses this
//! module. Callers that drive the solver pass these constants *down* (e.g.
//! [`OBJ_REL_EPS`] as the column-generation convergence tolerance).
//!
//! | constant | guards |
//! |----------|--------|
//! | [`FEAS_EPS`] | schedule-feasibility slack (capacity, demand, completion checks) |
//! | [`DUAL_EPS`] | dual-price significance (pricing oracles, reduced costs) |
//! | [`OBJ_REL_EPS`] | relative agreement between two objective values |
//! | [`TIME_EPS`] | event-time slack (releases, segment ordering, α-point accumulation) |
//! | [`ZERO_EPS`] | "effectively zero" sizes, rates, and weights |

/// Feasibility slack for schedule checking: capacity, per-flow demand and
/// completion-time constraints may be violated by at most this much before
/// the checker reports a violation. Also the absolute slack used when
/// comparing objective values whose scale is O(1)–O(100).
pub const FEAS_EPS: f64 = 1e-6;

/// Threshold below which a dual price (or reduced cost) is treated as zero
/// by pricing consumers — the column-generation oracles and the engine's
/// ordering heuristics. Matches the solver's internal pricing floor.
pub const DUAL_EPS: f64 = 1e-9;

/// Relative tolerance for declaring two objective values equal: used by the
/// bench equal-objective assertions, the colgen-vs-eager cross checks, and
/// (passed down) as the restricted-master convergence tolerance.
pub const OBJ_REL_EPS: f64 = 1e-6;

/// Slack on event times: release-date respect, segment start/end ordering,
/// and α-point accumulation all tolerate this much backwards drift from
/// floating-point summation.
pub const TIME_EPS: f64 = 1e-9;

/// Below this magnitude a size, rate, weight, or capacity divisor is
/// treated as exactly zero (avoids 0/0 and denormal-driven blowups).
pub const ZERO_EPS: f64 = 1e-12;

/// `a` and `b` agree within absolute slack `eps`.
///
/// NaN never compares equal to anything (mirrors IEEE `==`).
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// `a` and `b` agree within *relative* slack `eps`, on the scale
/// `1 + max(|a|, |b|)` — absolute near zero, relative for large values.
#[inline]
pub fn rel_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
}

/// `a <= b` up to slack `eps` (i.e. `a - b <= eps`).
#[inline]
pub fn approx_le(a: f64, b: f64, eps: f64) -> bool {
    a - b <= eps
}

/// `a >= b` up to slack `eps` (i.e. `b - a <= eps`).
#[inline]
pub fn approx_ge(a: f64, b: f64, eps: f64) -> bool {
    b - a <= eps
}

/// `|a|` is below the zero threshold `eps`.
#[inline]
pub fn is_zero(a: f64, eps: f64) -> bool {
    a.abs() <= eps
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn absolute_comparisons() {
        assert!(approx_eq(1.0, 1.0 + 0.5 * FEAS_EPS, FEAS_EPS));
        assert!(!approx_eq(1.0, 1.0 + 2.0 * FEAS_EPS, FEAS_EPS));
        assert!(approx_le(1.0 + 0.5 * FEAS_EPS, 1.0, FEAS_EPS));
        assert!(!approx_le(1.0 + 2.0 * FEAS_EPS, 1.0, FEAS_EPS));
        assert!(approx_ge(1.0 - 0.5 * TIME_EPS, 1.0, TIME_EPS));
        assert!(is_zero(0.5 * ZERO_EPS, ZERO_EPS));
        assert!(!is_zero(2.0 * ZERO_EPS, ZERO_EPS));
    }

    #[test]
    fn relative_scales_with_magnitude() {
        // 1e9 * (1 + 2e-7) differs absolutely by ~200 but relatively by 2e-7.
        let big = 1.0e9;
        assert!(rel_eq(big, big * (1.0 + 0.2 * OBJ_REL_EPS), OBJ_REL_EPS));
        assert!(!rel_eq(big, big * (1.0 + 3.0 * OBJ_REL_EPS), OBJ_REL_EPS));
        // Near zero it degrades to absolute tolerance.
        assert!(rel_eq(0.0, 0.5 * OBJ_REL_EPS, OBJ_REL_EPS));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, FEAS_EPS));
        assert!(!rel_eq(f64::NAN, 0.0, FEAS_EPS));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the ordering IS the invariant under test
    fn constants_are_ordered_sanely() {
        assert!(ZERO_EPS < TIME_EPS);
        assert!(TIME_EPS < FEAS_EPS);
        assert!(DUAL_EPS < FEAS_EPS);
    }
}
