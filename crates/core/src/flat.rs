//! Flat structure-of-arrays instance storage.
//!
//! [`Instance`] stores coflows as nested `Vec<Coflow>`/`Vec<FlowSpec>` —
//! convenient to build, but the engine's per-event hot loops (rate
//! allocation, completion detection, residual updates) only ever need four
//! scalars per flow (endpoints, size, release) plus the owning coflow, and
//! chasing two levels of pointers per access wrecks locality at
//! datacenter-fabric flow counts. [`FlatInstance`] is the flat view: one
//! contiguous array per field, indexed by the same **stable flat index**
//! the rest of the workspace uses (coflow-major, identical to
//! [`Instance::flat_index`]), with a CSR-style `flow_ptr` grouping flows
//! by coflow. Indices are `u32` — the paper's experiments top out far
//! below 4 billion flows, and halving index width doubles what fits in a
//! cache line.
//!
//! The flat view is *derived* storage behind the existing [`Instance`]
//! API: build it once with [`Instance::flatten`], then read (and, for
//! residual bookkeeping, update sizes) without touching the nested
//! representation. Prescribed paths stay on the nested side — they are
//! variable-length and cold.

use crate::model::{FlowId, Instance};
use coflow_net::NodeId;

/// Structure-of-arrays snapshot of an [`Instance`]'s flows and coflows.
///
/// Flat index = [`Instance::flat_index`]; coflow arrays are indexed by
/// coflow id. See the module docs for why this exists.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatInstance {
    /// Source node per flow.
    src: Vec<u32>,
    /// Destination node per flow.
    dst: Vec<u32>,
    /// Demand per flow.
    size: Vec<f64>,
    /// Release time per flow.
    release: Vec<f64>,
    /// Owning coflow per flow.
    coflow: Vec<u32>,
    /// Weight per coflow.
    weight: Vec<f64>,
    /// CSR offsets: coflow `c` owns flats `flow_ptr[c]..flow_ptr[c+1]`.
    flow_ptr: Vec<u32>,
}

impl FlatInstance {
    /// Builds the flat view of `inst` (coflow-major, matching
    /// [`Instance::flat_index`]).
    pub fn from_instance(inst: &Instance) -> Self {
        let nf = inst.flow_count();
        let nc = inst.coflow_count();
        let mut out = Self {
            src: Vec::with_capacity(nf),
            dst: Vec::with_capacity(nf),
            size: Vec::with_capacity(nf),
            release: Vec::with_capacity(nf),
            coflow: Vec::with_capacity(nf),
            weight: Vec::with_capacity(nc),
            flow_ptr: Vec::with_capacity(nc + 1),
        };
        out.flow_ptr.push(0);
        for (ci, c) in inst.coflows.iter().enumerate() {
            out.weight.push(c.weight);
            for f in &c.flows {
                out.src.push(f.src.index() as u32);
                out.dst.push(f.dst.index() as u32);
                out.size.push(f.size);
                out.release.push(f.release);
                out.coflow.push(ci as u32);
            }
            out.flow_ptr.push(out.src.len() as u32);
        }
        out
    }

    /// Total number of flows.
    #[inline]
    pub fn flow_count(&self) -> usize {
        self.src.len()
    }

    /// Number of coflows.
    #[inline]
    pub fn coflow_count(&self) -> usize {
        self.weight.len()
    }

    /// Source node of flow `flat`.
    #[inline]
    pub fn src(&self, flat: usize) -> NodeId {
        NodeId(self.src[flat])
    }

    /// Destination node of flow `flat`.
    #[inline]
    pub fn dst(&self, flat: usize) -> NodeId {
        NodeId(self.dst[flat])
    }

    /// Demand of flow `flat`.
    #[inline]
    pub fn size(&self, flat: usize) -> f64 {
        self.size[flat]
    }

    /// Release time of flow `flat`.
    #[inline]
    pub fn release(&self, flat: usize) -> f64 {
        self.release[flat]
    }

    /// Owning coflow of flow `flat`.
    #[inline]
    pub fn coflow_of(&self, flat: usize) -> usize {
        self.coflow[flat] as usize
    }

    /// Weight of coflow `c`.
    #[inline]
    pub fn weight(&self, c: usize) -> f64 {
        self.weight[c]
    }

    /// Flat-index range of coflow `c`'s flows.
    #[inline]
    pub fn flows_of(&self, c: usize) -> std::ops::Range<usize> {
        self.flow_ptr[c] as usize..self.flow_ptr[c + 1] as usize
    }

    /// All flow sizes, flat-indexed (e.g. to seed a remaining-size array).
    #[inline]
    pub fn sizes(&self) -> &[f64] {
        &self.size
    }

    /// All flow releases, flat-indexed.
    #[inline]
    pub fn releases(&self) -> &[f64] {
        &self.release
    }

    /// Overwrites the demand of flow `flat` (residual bookkeeping).
    #[inline]
    pub fn set_size(&mut self, flat: usize, v: f64) {
        self.size[flat] = v;
    }

    /// Flat index of a flow id (same mapping as [`Instance::flat_index`]).
    #[inline]
    pub fn flat_index(&self, id: FlowId) -> usize {
        self.flow_ptr[id.coflow as usize] as usize + id.flow as usize
    }

    /// Total demand across all flows.
    pub fn total_size(&self) -> f64 {
        self.size.iter().sum()
    }
}

impl Instance {
    /// Builds the flat structure-of-arrays view of this instance.
    pub fn flatten(&self) -> FlatInstance {
        FlatInstance::from_instance(self)
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec};
    use coflow_net::topo;

    fn tiny() -> Instance {
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(z, y, 1.0, 0.5)],
                ),
                Coflow::new(2.0, vec![FlowSpec::new(x, z, 4.0, 2.5)]),
            ],
        )
    }

    #[test]
    fn mirrors_instance_field_by_field() {
        let inst = tiny();
        let flat = inst.flatten();
        assert_eq!(flat.flow_count(), inst.flow_count());
        assert_eq!(flat.coflow_count(), inst.coflow_count());
        for (id, f, spec) in inst.flows() {
            assert_eq!(flat.flat_index(id), f);
            assert_eq!(flat.src(f), spec.src);
            assert_eq!(flat.dst(f), spec.dst);
            assert_eq!(flat.size(f), spec.size);
            assert_eq!(flat.release(f), spec.release);
            assert_eq!(flat.coflow_of(f), id.coflow as usize);
        }
        for c in 0..inst.coflow_count() {
            assert_eq!(flat.weight(c), inst.coflows[c].weight);
            assert_eq!(flat.flows_of(c).len(), inst.coflows[c].flows.len());
        }
        assert_eq!(flat.total_size(), inst.total_size());
        assert_eq!(flat.sizes().len(), 3);
        assert_eq!(flat.releases(), &[0.0, 0.5, 2.5]);
    }

    #[test]
    fn empty_coflows_keep_csr_consistent() {
        let t = topo::triangle();
        let (x, y) = (t.hosts[0], t.hosts[1]);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(1.0, vec![]),
                Coflow::new(2.0, vec![FlowSpec::new(x, y, 1.0, 0.0)]),
                Coflow::new(3.0, vec![]),
            ],
        );
        let flat = inst.flatten();
        assert_eq!(flat.flow_count(), 1);
        assert_eq!(flat.coflow_count(), 3);
        assert!(flat.flows_of(0).is_empty());
        assert_eq!(flat.flows_of(1), 0..1);
        assert!(flat.flows_of(2).is_empty());
        assert_eq!(flat.coflow_of(0), 1);
    }

    #[test]
    fn set_size_updates_totals() {
        let inst = tiny();
        let mut flat = inst.flatten();
        flat.set_size(0, 0.0);
        assert_eq!(flat.total_size(), 5.0);
        assert_eq!(flat.size(0), 0.0);
    }
}
