//! Schedule representations and feasibility checkers.
//!
//! Lemma 1 of the paper shows bandwidth functions can be assumed
//! piecewise-constant without loss of generality, so a circuit schedule
//! stores, per flow, a path and a list of constant-rate segments. The
//! checker enforces exactly the constraints of §2: demand delivery (Eq. 2),
//! edge capacities at all times (Eq. 3), and release times.
//!
//! Packet schedules store, per packet, the sequence of (time step, edge)
//! moves; the checker enforces store-and-forward semantics with unit edge
//! capacity per step (§3).

use crate::model::Instance;
use coflow_net::{EdgeId, Path};
use std::fmt;

/// A constant-bandwidth time segment `[start, end) × rate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Segment start time.
    pub start: f64,
    /// Segment end time (`> start`).
    pub end: f64,
    /// Allocated bandwidth during the segment.
    pub rate: f64,
}

impl Segment {
    /// Volume delivered by this segment.
    pub fn volume(&self) -> f64 {
        (self.end - self.start) * self.rate
    }
}

/// Per-flow circuit schedule: a path plus constant-rate segments.
#[derive(Clone, Debug, Default)]
pub struct FlowSchedule {
    /// The routed path.
    pub path: Path,
    /// Rate segments sorted by start, non-overlapping.
    pub segments: Vec<Segment>,
}

impl FlowSchedule {
    /// Total volume delivered.
    pub fn delivered(&self) -> f64 {
        self.segments.iter().map(Segment::volume).sum()
    }

    /// Completion time: earliest time by which `size` has been delivered
    /// (`None` if the schedule never delivers that much).
    pub fn completion(&self, size: f64) -> Option<f64> {
        if size <= 1e-12 {
            return Some(0.0);
        }
        let mut acc = 0.0;
        for s in &self.segments {
            let v = s.volume();
            if acc + v >= size - 1e-9 {
                let need = size - acc;
                let dt = if s.rate > 0.0 { need / s.rate } else { 0.0 };
                return Some(s.start + dt.clamp(0.0, s.end - s.start));
            }
            acc += v;
        }
        None
    }
}

/// A complete circuit schedule, flat-indexed like the instance's flows.
#[derive(Clone, Debug, Default)]
pub struct CircuitSchedule {
    /// Per-flow schedules (flat index order).
    pub flows: Vec<FlowSchedule>,
}

/// A violation found by the feasibility checker.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A flow's path is missing or not a simple src→dst path.
    BadPath {
        /// Flat index of the offending flow.
        flat: usize,
    },
    /// Segments overlap or are unordered for a flow.
    BadSegments {
        /// Flat index of the offending flow.
        flat: usize,
    },
    /// A segment starts before the flow's release time.
    ReleaseViolated {
        /// Flat index of the offending flow.
        flat: usize,
        /// Start time of the offending segment.
        start: f64,
        /// The flow's release time.
        release: f64,
    },
    /// Delivered volume differs from the demand by more than tolerance.
    WrongVolume {
        /// Flat index of the offending flow.
        flat: usize,
        /// Volume the schedule actually delivers.
        delivered: f64,
        /// Volume the flow demands.
        size: f64,
    },
    /// An edge is over capacity at some time.
    OverCapacity {
        /// The overloaded edge.
        edge: EdgeId,
        /// A time at which the overload occurs.
        time: f64,
        /// Aggregate bandwidth scheduled across the edge at `time`.
        load: f64,
        /// The edge's capacity.
        cap: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BadPath { flat } => write!(f, "flow {flat}: bad path"),
            Violation::BadSegments { flat } => write!(f, "flow {flat}: bad segments"),
            Violation::ReleaseViolated {
                flat,
                start,
                release,
            } => {
                write!(f, "flow {flat}: starts {start} before release {release}")
            }
            Violation::WrongVolume {
                flat,
                delivered,
                size,
            } => {
                write!(f, "flow {flat}: delivered {delivered} of {size}")
            }
            Violation::OverCapacity {
                edge,
                time,
                load,
                cap,
            } => {
                write!(f, "edge {edge:?} at t={time}: load {load} > cap {cap}")
            }
        }
    }
}

impl CircuitSchedule {
    /// Per-flow completion times (flat order). Flows that never finish get
    /// `f64::INFINITY`.
    pub fn completion_times(&self, instance: &Instance) -> Vec<f64> {
        let mut out = vec![0.0; instance.flow_count()];
        for (_, flat, spec) in instance.flows() {
            out[flat] = self.flows[flat]
                .completion(spec.size)
                .unwrap_or(f64::INFINITY);
        }
        out
    }

    /// Full feasibility check against `instance`:
    /// paths valid, segments ordered, releases respected, demand delivered
    /// (within `vol_tol` relative), and capacity respected everywhere
    /// (within `cap_tol` relative). Returns all violations found.
    pub fn check(&self, instance: &Instance, vol_tol: f64, cap_tol: f64) -> Vec<Violation> {
        let mut v = Vec::new();
        let g = &instance.graph;
        assert_eq!(self.flows.len(), instance.flow_count());

        for (_, flat, spec) in instance.flows() {
            let fs = &self.flows[flat];
            if spec.size > 1e-12 && !g.is_simple_path(&fs.path, spec.src, spec.dst) {
                v.push(Violation::BadPath { flat });
            }
            let mut prev_end = f64::NEG_INFINITY;
            let mut ok = true;
            for s in &fs.segments {
                if s.end <= s.start || s.rate < -1e-12 || s.start < prev_end - 1e-9 {
                    ok = false;
                    break;
                }
                prev_end = s.end;
            }
            if !ok {
                v.push(Violation::BadSegments { flat });
                continue;
            }
            if let Some(first) = fs.segments.iter().find(|s| s.rate > 1e-12) {
                if first.start < spec.release - 1e-9 {
                    v.push(Violation::ReleaseViolated {
                        flat,
                        start: first.start,
                        release: spec.release,
                    });
                }
            }
            let delivered = fs.delivered();
            let scale = 1.0 + spec.size;
            if (delivered - spec.size).abs() / scale > vol_tol {
                v.push(Violation::WrongVolume {
                    flat,
                    delivered,
                    size: spec.size,
                });
            }
        }

        // Capacity: per-edge sweep over segment events.
        let mut per_edge: Vec<Vec<(f64, f64)>> = vec![Vec::new(); g.edge_count()];
        for fs in &self.flows {
            for s in &fs.segments {
                if s.rate <= 1e-12 {
                    continue;
                }
                for &e in fs.path.edges.iter() {
                    per_edge[e.index()].push((s.start, s.rate));
                    per_edge[e.index()].push((s.end, -s.rate));
                }
            }
        }
        for (ei, events) in per_edge.iter_mut().enumerate() {
            if events.is_empty() {
                continue;
            }
            let e = EdgeId(ei as u32);
            let cap = g.capacity(e);
            events.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut load = 0.0;
            let mut i = 0;
            while i < events.len() {
                let t = events[i].0;
                // Apply all events at identical time together (exact equality:
                // we group events carrying the same stored value, not a tolerance).
                #[allow(clippy::float_cmp)]
                while i < events.len() && events[i].0 == t {
                    load += events[i].1;
                    i += 1;
                }
                if load > cap * (1.0 + cap_tol) + 1e-9 {
                    v.push(Violation::OverCapacity {
                        edge: e,
                        time: t,
                        load,
                        cap,
                    });
                    break; // one report per edge is enough
                }
            }
        }
        v
    }

    /// Latest segment end over all flows.
    pub fn makespan(&self) -> f64 {
        self.flows
            .iter()
            .flat_map(|f| f.segments.iter())
            .map(|s| s.end)
            .fold(0.0, f64::max)
    }
}

/// One move of a packet: it traverses `edge` during step `[depart, depart+1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketMove {
    /// The time step at whose start the packet leaves the edge's tail.
    pub depart: u64,
    /// The traversed edge.
    pub edge: EdgeId,
}

/// A complete packet schedule, flat-indexed like the instance's flows.
#[derive(Clone, Debug, Default)]
pub struct PacketSchedule {
    /// Per-packet move lists.
    pub packets: Vec<Vec<PacketMove>>,
}

/// Packet-schedule violations.
#[derive(Clone, Debug, PartialEq)]
pub enum PacketViolation {
    /// Moves don't form a contiguous src→dst walk in time order.
    BadRoute {
        /// Flat index of the offending packet.
        flat: usize,
    },
    /// First move departs before the packet's (integer-rounded-up) release.
    ReleaseViolated {
        /// Flat index of the offending packet.
        flat: usize,
    },
    /// Two packets cross the same edge in the same step.
    EdgeConflict {
        /// The doubly-used edge.
        edge: EdgeId,
        /// The step at which both packets cross it.
        step: u64,
    },
}

impl PacketSchedule {
    /// Completion time of each packet: `depart + 1` of its last move
    /// (a packet with no moves completes at its release).
    pub fn completion_times(&self, instance: &Instance) -> Vec<f64> {
        let mut out = vec![0.0; instance.flow_count()];
        for (_, flat, spec) in instance.flows() {
            out[flat] = self.packets[flat]
                .last()
                .map(|m| (m.depart + 1) as f64)
                .unwrap_or(spec.release);
        }
        out
    }

    /// Checks store-and-forward semantics (§3): contiguous routes, releases,
    /// strictly increasing departure steps, and at most one packet per edge
    /// per step.
    pub fn check(&self, instance: &Instance) -> Vec<PacketViolation> {
        let mut v = Vec::new();
        let g = &instance.graph;
        assert_eq!(self.packets.len(), instance.flow_count());
        use std::collections::BTreeMap;
        let mut usage: BTreeMap<(u64, u32), usize> = BTreeMap::new();

        for (_, flat, spec) in instance.flows() {
            let moves = &self.packets[flat];
            if moves.is_empty() {
                v.push(PacketViolation::BadRoute { flat });
                continue;
            }
            let release_step = spec.release.ceil() as u64;
            if moves[0].depart < release_step {
                v.push(PacketViolation::ReleaseViolated { flat });
            }
            let mut at = spec.src;
            let mut prev_depart: Option<u64> = None;
            let mut ok = true;
            for m in moves {
                if g.edge_src(m.edge) != at {
                    ok = false;
                    break;
                }
                if let Some(p) = prev_depart {
                    if m.depart <= p {
                        ok = false;
                        break;
                    }
                }
                prev_depart = Some(m.depart);
                at = g.edge_dst(m.edge);
                *usage.entry((m.depart, m.edge.0)).or_insert(0) += 1;
            }
            if !ok || at != spec.dst {
                v.push(PacketViolation::BadRoute { flat });
            }
        }
        // BTreeMap iteration is ordered by (step, edge), so conflicts come out
        // sorted without a post-pass.
        v.extend(
            usage
                .into_iter()
                .filter(|&(_, count)| count > 1)
                .map(|((s, e), _)| PacketViolation::EdgeConflict {
                    edge: EdgeId(e),
                    step: s,
                }),
        );
        v
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::{paths, topo, NodeId};

    fn line_instance() -> Instance {
        let t = topo::line(3, 1.0);
        Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![
                    FlowSpec::new(NodeId(0), NodeId(2), 2.0, 0.0),
                    FlowSpec::new(NodeId(0), NodeId(2), 1.0, 1.0),
                ],
            )],
        )
    }

    fn path02(inst: &Instance) -> Path {
        paths::bfs_shortest_path(&inst.graph, NodeId(0), NodeId(2)).unwrap()
    }

    #[test]
    fn feasible_serial_schedule_passes() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![Segment {
                        start: 0.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
                FlowSchedule {
                    path: p,
                    segments: vec![Segment {
                        start: 2.0,
                        end: 3.0,
                        rate: 1.0,
                    }],
                },
            ],
        };
        assert!(sched.check(&inst, 1e-6, 1e-6).is_empty());
        let c = sched.completion_times(&inst);
        assert_eq!(c, vec![2.0, 3.0]);
        assert_eq!(sched.makespan(), 3.0);
    }

    #[test]
    fn overcapacity_detected() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![Segment {
                        start: 0.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
                FlowSchedule {
                    path: p,
                    segments: vec![Segment {
                        start: 1.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
            ],
        };
        let v = sched.check(&inst, 1e-6, 1e-6);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::OverCapacity { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn parallel_half_rate_ok() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![Segment {
                        start: 1.0,
                        end: 5.0,
                        rate: 0.5,
                    }],
                },
                FlowSchedule {
                    path: p,
                    segments: vec![Segment {
                        start: 1.0,
                        end: 3.0,
                        rate: 0.5,
                    }],
                },
            ],
        };
        assert!(sched.check(&inst, 1e-6, 1e-6).is_empty());
        let c = sched.completion_times(&inst);
        assert_eq!(c, vec![5.0, 3.0]);
    }

    #[test]
    fn release_violation_detected() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![Segment {
                        start: 0.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
                FlowSchedule {
                    path: p,
                    // released at 1.0 but starts at 0.5 — violation even if
                    // capacity is free... capacity also violated; check both.
                    segments: vec![Segment {
                        start: 0.5,
                        end: 1.5,
                        rate: 1.0,
                    }],
                },
            ],
        };
        let v = sched.check(&inst, 1e-6, 1e-6);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ReleaseViolated { .. })));
    }

    #[test]
    fn wrong_volume_detected() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![Segment {
                        start: 0.0,
                        end: 1.0,
                        rate: 1.0,
                    }], // only 1 of 2
                },
                FlowSchedule {
                    path: p,
                    segments: vec![Segment {
                        start: 1.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
            ],
        };
        let v = sched.check(&inst, 1e-6, 1e-6);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::WrongVolume { flat: 0, .. })));
    }

    #[test]
    fn bad_segments_detected() {
        let inst = line_instance();
        let p = path02(&inst);
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: p.clone(),
                    segments: vec![
                        Segment {
                            start: 1.0,
                            end: 2.0,
                            rate: 1.0,
                        },
                        Segment {
                            start: 0.0,
                            end: 1.5,
                            rate: 1.0,
                        }, // overlap + unordered
                    ],
                },
                FlowSchedule {
                    path: p,
                    segments: vec![Segment {
                        start: 2.0,
                        end: 3.0,
                        rate: 1.0,
                    }],
                },
            ],
        };
        let v = sched.check(&inst, 1e-6, 1e-6);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BadSegments { flat: 0 })));
    }

    #[test]
    fn bad_path_detected() {
        let inst = line_instance();
        let sched = CircuitSchedule {
            flows: vec![
                FlowSchedule {
                    path: Path::empty(), // not a src->dst path
                    segments: vec![Segment {
                        start: 0.0,
                        end: 2.0,
                        rate: 1.0,
                    }],
                },
                FlowSchedule {
                    path: path02(&inst),
                    segments: vec![Segment {
                        start: 2.0,
                        end: 3.0,
                        rate: 1.0,
                    }],
                },
            ],
        };
        let v = sched.check(&inst, 1e-6, 1e-6);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::BadPath { flat: 0 })));
    }

    #[test]
    fn completion_interpolates_within_segment() {
        let fs = FlowSchedule {
            path: Path::empty(),
            segments: vec![Segment {
                start: 1.0,
                end: 5.0,
                rate: 0.5,
            }],
        };
        // size 1 delivered after 2 time units at rate 0.5 => t = 3.
        assert!((fs.completion(1.0).unwrap() - 3.0).abs() < 1e-9);
        assert_eq!(fs.completion(3.0), None); // only 2.0 deliverable
        assert_eq!(fs.completion(0.0), Some(0.0));
    }

    // ---- packet schedules ----

    fn packet_instance() -> Instance {
        let t = topo::line(3, 1.0);
        Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![
                    FlowSpec::new(NodeId(0), NodeId(2), 1.0, 0.0),
                    FlowSpec::new(NodeId(1), NodeId(2), 1.0, 0.0),
                ],
            )],
        )
    }

    #[test]
    fn packet_schedule_valid() {
        let inst = packet_instance();
        let e01 = inst.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = inst.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        let sched = PacketSchedule {
            packets: vec![
                vec![
                    PacketMove {
                        depart: 0,
                        edge: e01,
                    },
                    PacketMove {
                        depart: 2,
                        edge: e12,
                    },
                ],
                vec![PacketMove {
                    depart: 0,
                    edge: e12,
                }],
            ],
        };
        assert!(sched.check(&inst).is_empty());
        let c = sched.completion_times(&inst);
        assert_eq!(c, vec![3.0, 1.0]);
    }

    #[test]
    fn packet_edge_conflict_detected() {
        let inst = packet_instance();
        let e01 = inst.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = inst.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        let sched = PacketSchedule {
            packets: vec![
                vec![
                    PacketMove {
                        depart: 0,
                        edge: e01,
                    },
                    PacketMove {
                        depart: 1,
                        edge: e12,
                    },
                ],
                vec![PacketMove {
                    depart: 1,
                    edge: e12,
                }], // same edge, same step
            ],
        };
        let v = sched.check(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, PacketViolation::EdgeConflict { .. })));
    }

    #[test]
    fn packet_bad_route_detected() {
        let inst = packet_instance();
        let e12 = inst.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        let sched = PacketSchedule {
            packets: vec![
                vec![PacketMove {
                    depart: 0,
                    edge: e12,
                }], // starts at node 1, packet is at 0
                vec![PacketMove {
                    depart: 1,
                    edge: e12,
                }],
            ],
        };
        let v = sched.check(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, PacketViolation::BadRoute { flat: 0 })));
    }

    #[test]
    fn packet_nondecreasing_times_enforced() {
        let inst = packet_instance();
        let e01 = inst.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = inst.graph.find_edge(NodeId(1), NodeId(2)).unwrap();
        let sched = PacketSchedule {
            packets: vec![
                // second move departs at the same step it arrives: illegal
                // (store-and-forward: one edge per step, arrival at depart+1)
                vec![
                    PacketMove {
                        depart: 0,
                        edge: e01,
                    },
                    PacketMove {
                        depart: 0,
                        edge: e12,
                    },
                ],
                vec![PacketMove {
                    depart: 3,
                    edge: e12,
                }],
            ],
        };
        let v = sched.check(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, PacketViolation::BadRoute { flat: 0 })));
    }

    #[test]
    fn packet_release_violation() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 2.5)],
            )],
        );
        let e01 = inst.graph.find_edge(NodeId(0), NodeId(1)).unwrap();
        let sched = PacketSchedule {
            packets: vec![vec![PacketMove {
                depart: 2,
                edge: e01,
            }]],
        };
        let v = sched.check(&inst);
        assert!(v
            .iter()
            .any(|x| matches!(x, PacketViolation::ReleaseViolated { flat: 0 })));
        let ok = PacketSchedule {
            packets: vec![vec![PacketMove {
                depart: 3,
                edge: e01,
            }]],
        };
        assert!(ok.check(&inst).is_empty());
    }
}
