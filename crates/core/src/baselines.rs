//! The heuristics the paper's evaluation compares against (§4.3), plus two
//! standard coflow heuristics from prior work as extensions:
//!
//! * **Baseline** — "flows are routed and ordered randomly".
//! * **Schedule-only** — "flows are routed randomly; ordering is by minimum
//!   completion time which is computed as the ratio of flow size to path
//!   bandwidth".
//! * **Route-only** — "flows are routed for achieving good load balance and
//!   edge utilization; ordering is arbitrary".
//! * **SEBF** (extension; Varys \[8\]) — coflows ordered by smallest
//!   effective bottleneck completion estimate.
//! * **WSJF** (extension) — coflows ordered by total size over weight.
//!
//! All of these produce a routing plus a [`Priority`]; the fluid simulator
//! (`coflow-sim`) executes them identically to the LP-based schedule, which
//! keeps the comparison honest.

use crate::model::Instance;
use crate::order::Priority;
use coflow_net::{paths as netpaths, Path};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Routing plus ordering: the full "scheme" input to the simulator.
#[derive(Clone, Debug)]
pub struct Scheme {
    /// Human-readable name.
    pub name: &'static str,
    /// Path per flow (flat order).
    pub paths: Vec<Path>,
    /// Flow priority order.
    pub order: Priority,
}

/// Candidate-path enumeration budget shared by all baselines (matches the
/// LP's defaults so no scheme gets a richer path set).
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Extra hops over shortest allowed.
    pub path_slack: usize,
    /// Maximum candidates per flow.
    pub max_paths: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            path_slack: 0,
            max_paths: 32,
            seed: 0,
        }
    }
}

fn candidates(instance: &Instance, cfg: &BaselineConfig, flat: usize) -> Vec<Path> {
    let spec = instance.flow(instance.id_of_flat(flat));
    if let Some(p) = &spec.path {
        return vec![p.clone()];
    }
    let ps = netpaths::candidate_paths(
        &instance.graph,
        spec.src,
        spec.dst,
        cfg.path_slack,
        cfg.max_paths,
    );
    assert!(!ps.is_empty(), "flow {flat}: endpoints disconnected");
    ps
}

fn random_paths(instance: &Instance, cfg: &BaselineConfig, rng: &mut StdRng) -> Vec<Path> {
    (0..instance.flow_count())
        .map(|flat| {
            let ps = candidates(instance, cfg, flat);
            ps[rng.random_range(0..ps.len())].clone()
        })
        .collect()
}

/// Random routing, random order.
pub fn baseline_random(instance: &Instance, cfg: &BaselineConfig) -> Scheme {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let paths = random_paths(instance, cfg, &mut rng);
    let mut order: Vec<usize> = (0..instance.flow_count()).collect();
    order.shuffle(&mut rng);
    Scheme {
        name: "Baseline",
        paths,
        order: Priority { order },
    }
}

/// Random routing; order by standalone completion estimate
/// `σ_f / bottleneck(p_f)` ascending (a per-flow SJF that ignores coflow
/// structure — that blindness is exactly what the LP-based scheme exploits).
pub fn schedule_only(instance: &Instance, cfg: &BaselineConfig) -> Scheme {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let paths = random_paths(instance, cfg, &mut rng);
    let g = &instance.graph;
    let order = Priority::by_key(instance.flow_count(), |flat| {
        let spec = instance.flow(instance.id_of_flat(flat));
        let bw = g.path_bottleneck(&paths[flat]);
        if bw > 0.0 {
            spec.size / bw
        } else {
            f64::INFINITY
        }
    });
    Scheme {
        name: "Schedule-only",
        paths,
        order,
    }
}

/// Load-balanced routing (greedy least-loaded path, processing flows in
/// release order); **arbitrary ordering** (§4.3: "ordering is arbitrary"),
/// realized as a seeded random permutation — the same neutral ordering
/// Baseline uses, so the Route-only-vs-Baseline gap isolates the routing
/// contribution and the LP-vs-Route-only gap isolates scheduling.
pub fn route_only(instance: &Instance, cfg: &BaselineConfig) -> Scheme {
    let mut s = route_only_with_order(instance, cfg, false);
    s.name = "Route-only";
    s
}

/// Route-only with a choice of ordering: `arrival = true` serves flows
/// FIFO by release (a strictly stronger variant used in the ordering
/// ablation), `false` uses the arbitrary (random) ordering.
pub fn route_only_with_order(instance: &Instance, cfg: &BaselineConfig, arrival: bool) -> Scheme {
    let g = &instance.graph;
    let mut load = vec![0.0_f64; g.edge_count()];
    let mut paths: Vec<Option<Path>> = vec![None; instance.flow_count()];
    // Process in release order so earlier flows grab capacity first.
    let release_order = Priority::by_key(instance.flow_count(), |flat| {
        instance.flow(instance.id_of_flat(flat)).release
    });
    for &flat in &release_order.order {
        let spec = instance.flow(instance.id_of_flat(flat));
        let ps = candidates(instance, cfg, flat);
        // Cost of a path: worst resulting edge utilization, tie-broken by
        // total utilization. The tie-break matters: every candidate shares
        // the host up/down links, so the max alone cannot distinguish core
        // choices once the uplink dominates.
        let cost = |p: &Path| -> (f64, f64) {
            let mut worst = 0.0_f64;
            let mut total = 0.0_f64;
            for &e in p.edges.iter() {
                let u = (load[e.index()] + spec.size) / g.capacity(e).max(1e-12);
                worst = worst.max(u);
                total += u;
            }
            (worst, total)
        };
        #[allow(clippy::unwrap_used)]
        let best = ps
            .into_iter()
            .min_by(|a, b| {
                let (ka, kb) = (cost(a), cost(b));
                ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
            })
            // lint: allow(no_panic) — candidates() asserts the path set is non-empty
            .unwrap();
        for &e in best.edges.iter() {
            load[e.index()] += spec.size;
        }
        paths[flat] = Some(best);
    }
    let paths: Vec<Path> = paths.into_iter().map(Option::unwrap).collect();
    let order = if arrival {
        Priority::by_key(instance.flow_count(), |flat| {
            (instance.flow(instance.id_of_flat(flat)).release, flat)
        })
    } else {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x05EE_D0B0);
        let mut order: Vec<usize> = (0..instance.flow_count()).collect();
        order.shuffle(&mut rng);
        Priority { order }
    };
    Scheme {
        name: if arrival {
            "Route-only(FIFO)"
        } else {
            "Route-only"
        },
        paths,
        order,
    }
}

/// SEBF (smallest effective bottleneck first, Varys-like): coflows ordered
/// by their bottleneck completion estimate given a routing; flows within a
/// coflow keep index order. Coflow-aware but LP-free.
pub fn sebf(instance: &Instance, paths: &[Path]) -> Scheme {
    let g = &instance.graph;
    let nc = instance.coflow_count();
    let mut edge_demand: Vec<std::collections::BTreeMap<u32, f64>> =
        vec![std::collections::BTreeMap::new(); nc];
    for (id, flat, spec) in instance.flows() {
        for &e in paths[flat].edges.iter() {
            *edge_demand[id.coflow as usize].entry(e.0).or_insert(0.0) += spec.size;
        }
    }
    let gamma: Vec<f64> = edge_demand
        .iter()
        .map(|per_edge| {
            per_edge
                .iter()
                .map(|(&e, &d)| d / g.capacity(coflow_net::EdgeId(e)).max(1e-12))
                .fold(0.0, f64::max)
        })
        .collect();
    let order = Priority::by_key(instance.flow_count(), |flat| {
        let id = instance.id_of_flat(flat);
        (gamma[id.coflow as usize], id.coflow, id.flow)
    });
    Scheme {
        name: "SEBF",
        paths: paths.to_vec(),
        order,
    }
}

/// Weighted shortest job first at coflow granularity: key is
/// `total_size / weight` ascending. Flows within a coflow keep index order.
pub fn wsjf(instance: &Instance, paths: &[Path]) -> Scheme {
    let key: Vec<f64> = instance
        .coflows
        .iter()
        .map(|c| {
            if c.weight > 0.0 {
                c.total_size() / c.weight
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let order = Priority::by_key(instance.flow_count(), |flat| {
        let id = instance.id_of_flat(flat);
        (key[id.coflow as usize], id.coflow, id.flow)
    });
    Scheme {
        name: "WSJF",
        paths: paths.to_vec(),
        order,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::topo;

    fn fat_tree_instance() -> Instance {
        let t = topo::fat_tree(4, 1.0);
        let h = &t.hosts;
        Instance::new(
            t.graph.clone(),
            vec![
                Coflow::new(
                    1.0,
                    vec![
                        FlowSpec::new(h[0], h[15], 4.0, 0.0),
                        FlowSpec::new(h[1], h[14], 2.0, 0.0),
                    ],
                ),
                Coflow::new(3.0, vec![FlowSpec::new(h[2], h[13], 1.0, 0.0)]),
            ],
        )
    }

    #[test]
    fn baseline_produces_valid_paths() {
        let inst = fat_tree_instance();
        let s = baseline_random(&inst, &BaselineConfig::default());
        for (_, flat, spec) in inst.flows() {
            assert!(inst
                .graph
                .is_simple_path(&s.paths[flat], spec.src, spec.dst));
        }
        assert_eq!(s.order.len(), 3);
    }

    #[test]
    fn baseline_deterministic_per_seed() {
        let inst = fat_tree_instance();
        let a = baseline_random(
            &inst,
            &BaselineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let b = baseline_random(
            &inst,
            &BaselineConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.order, b.order);
    }

    #[test]
    fn schedule_only_orders_by_standalone_time() {
        let inst = fat_tree_instance();
        let s = schedule_only(&inst, &BaselineConfig::default());
        // Unit capacities: standalone times are just sizes: 4, 2, 1 =>
        // order should be flat indices [2, 1, 0].
        assert_eq!(s.order.order, vec![2, 1, 0]);
    }

    #[test]
    fn route_only_spreads_load() {
        // Many equal flows between the same inter-pod host pair: the greedy
        // balancer must not put them all on one core path.
        let t = topo::fat_tree(4, 1.0);
        let h = &t.hosts;
        let flows: Vec<FlowSpec> = (0..8)
            .map(|_| FlowSpec::new(h[0], h[15], 1.0, 0.0))
            .collect();
        let inst = Instance::new(t.graph.clone(), vec![Coflow::new(1.0, flows)]);
        let s = route_only(&inst, &BaselineConfig::default());
        let distinct: std::collections::HashSet<_> =
            s.paths.iter().map(|p| p.edges.clone()).collect();
        assert!(
            distinct.len() >= 2,
            "expected load balancing across core paths"
        );
    }

    #[test]
    fn sebf_orders_coflows_by_bottleneck() {
        let inst = fat_tree_instance();
        let r = route_only(&inst, &BaselineConfig::default());
        let s = sebf(&inst, &r.paths);
        // Coflow 1 (1 unit) has smaller bottleneck than coflow 0 (up to 6
        // units sharing links): coflow 1's flow must come first.
        assert_eq!(s.order.order[0], 2);
    }

    #[test]
    fn wsjf_uses_weight() {
        let inst = fat_tree_instance();
        let r = route_only(&inst, &BaselineConfig::default());
        let s = wsjf(&inst, &r.paths);
        // Keys: coflow0 = 6/1 = 6, coflow1 = 1/3 => coflow1 first.
        assert_eq!(s.order.order[0], 2);
    }

    #[test]
    fn given_paths_respected() {
        let t = topo::triangle();
        let (x, y) = (t.hosts[0], t.hosts[1]);
        let p = coflow_net::paths::bfs_shortest_path(&t.graph, x, y).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(x, y, 1.0, 0.0, p.clone())],
            )],
        );
        let s = baseline_random(&inst, &BaselineConfig::default());
        assert_eq!(s.paths[0], p, "prescribed path must pass through unchanged");
    }
}
