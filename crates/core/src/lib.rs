//! # coflow-core
//!
//! The primary contribution of Jahanjou, Kantor & Rajaraman,
//! *Asymptotically Optimal Approximation Algorithms for Coflow Scheduling*
//! (SPAA 2017), implemented in full:
//!
//! | paper | module | what it does |
//! |-------|--------|--------------|
//! | §1.1  | [`model`], [`objective`] | coflow instances; `Σ ω_k max_f c_f` |
//! | §2.1  | [`circuit::lp_given`], [`circuit::round_given`] | interval-indexed LP (4)–(10) + α-point rounding, O(1)-approx for circuit coflows with given paths |
//! | §2.2  | [`circuit::lp_free`], [`circuit::round_free`] | LP (15)–(23) with edge-flow (or path) variables, flow decomposition, Raghavan–Thompson randomized path selection — Algorithm 1 |
//! | §3.1  | [`packet::jobshop`] | packet coflows with given paths as unit job-shop |
//! | §3.2  | [`packet::free`], [`packet::timexp_lp`] | time-expanded-graph LP + per-interval routing & scheduling |
//! | §4    | [`baselines`], [`order`] | Baseline / Schedule-only / Route-only heuristics and LP-completion-time orderings |
//! | §1.3  | [`switch`] | the non-blocking-switch (task-based / concurrent-open-shop) special case |
//! | Lem. 4/5/7 | [`bounds`] | LP-derived lower bounds for empirical approximation ratios |
//! | online | [`residual`] | residual instances (remaining sizes, frozen completed flows) updated in place for the online engine's epoch re-solves |
//! | —     | [`flat`] | structure-of-arrays [`FlatInstance`] view for allocation-free hot loops |
//!
//! Schedules are explicit, checkable artifacts: [`schedule::CircuitSchedule`]
//! (piecewise-constant bandwidths, Lemma 1) and
//! [`schedule::PacketSchedule`] (store-and-forward moves), each with a
//! feasibility checker enforcing the §1.1/§3 constraints.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod bounds;
pub mod circuit;
pub mod flat;
pub mod intervals;
pub mod model;
pub mod objective;
pub mod order;
pub mod packet;
pub mod residual;
pub mod schedule;
pub mod switch;
pub mod tol;

pub use flat::FlatInstance;
pub use intervals::IntervalGrid;
pub use model::{Coflow, FlowId, FlowSpec, Instance};
pub use objective::{metrics, Metrics};
pub use order::Priority;
pub use schedule::{CircuitSchedule, PacketSchedule};

/// The paper's optimized rounding parameters for §2.1 (below Eq. 14):
/// `α = 0.5`, `D = 3`, `ε ≈ 0.5436` give the 17.54 approximation factor.
pub const PAPER_ALPHA: f64 = 0.5;
/// See [`PAPER_ALPHA`].
pub const PAPER_DISPLACEMENT: usize = 3;
/// See [`PAPER_ALPHA`].
pub const PAPER_EPS: f64 = 0.5436;
/// §2.2 fixes `ε = 1` for the paths-not-given LP.
pub const FREE_PATHS_EPS: f64 = 1.0;
