//! The objective: total weighted coflow completion time (Eq. 1 of the
//! paper), `C = Σ_k ω_k · C_k` with `C_k = max_{f ∈ F_k} c_f`.
//!
//! Also computed: total weighted *response* time `Σ_k ω_k (C_k − r_k)`
//! (completion minus release), the objective §5 names as the next research
//! target; it falls out of the same completion vector for free.

use crate::model::Instance;

/// Summary metrics of a realized schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Per-coflow completion times `C_k`.
    pub coflow_completion: Vec<f64>,
    /// `Σ_k ω_k C_k` — the optimization objective.
    pub weighted_sum: f64,
    /// Unweighted mean of `C_k` (the quantity plotted in Figures 3–4,
    /// "Average completion time").
    pub avg_coflow_completion: f64,
    /// `Σ_k ω_k (C_k − r_k)` with `r_k` the coflow's earliest flow release
    /// — the §5 "total weighted response time" objective.
    pub weighted_response: f64,
    /// Completion time of the last flow overall.
    pub makespan: f64,
}

/// Folds flat per-flow completion times into coflow completions and the
/// objective. Empty coflows complete at 0.
pub fn metrics(instance: &Instance, flow_completion: &[f64]) -> Metrics {
    assert_eq!(
        flow_completion.len(),
        instance.flow_count(),
        "completion vector must be flat-indexed over all flows"
    );
    let mut coflow_completion = vec![0.0_f64; instance.coflow_count()];
    for (id, flat, _) in instance.flows() {
        let c = flow_completion[flat];
        let slot = &mut coflow_completion[id.coflow as usize];
        if c > *slot {
            *slot = c;
        }
    }
    let weighted_sum = instance
        .coflows
        .iter()
        .zip(&coflow_completion)
        .map(|(c, &t)| c.weight * t)
        .sum();
    let weighted_response = instance
        .coflows
        .iter()
        .zip(&coflow_completion)
        .map(|(c, &t)| {
            let r = c.earliest_release();
            let r = if r.is_finite() { r } else { 0.0 };
            c.weight * (t - r).max(0.0)
        })
        .sum();
    let avg = if coflow_completion.is_empty() {
        0.0
    } else {
        coflow_completion.iter().sum::<f64>() / coflow_completion.len() as f64
    };
    let makespan = flow_completion.iter().copied().fold(0.0, f64::max);
    Metrics {
        coflow_completion,
        weighted_sum,
        avg_coflow_completion: avg,
        weighted_response,
        makespan,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::topo;

    fn inst() -> Instance {
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(z, y, 1.0, 0.0)],
                ),
                Coflow::new(2.0, vec![FlowSpec::new(x, z, 1.0, 0.0)]),
            ],
        )
    }

    #[test]
    fn coflow_completion_is_max_of_members() {
        let m = metrics(&inst(), &[4.0, 2.0, 1.0]);
        assert_eq!(m.coflow_completion, vec![4.0, 1.0]);
        assert_eq!(m.weighted_sum, 4.0 + 2.0);
        assert_eq!(m.makespan, 4.0);
        assert!((m.avg_coflow_completion - 2.5).abs() < 1e-12);
    }

    #[test]
    fn figure1_solutions() {
        // Figure 1, with unit weights: (s1) = 10, (s2) = 8, (s3) = 7 for
        // *sum* of completion times. Our instance groups A=(A1,A2), B, C.
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(y, z, 1.0, 0.0)],
                ),
                Coflow::new(1.0, vec![FlowSpec::new(z, x, 1.0, 0.0)]),
                Coflow::new(1.0, vec![FlowSpec::new(y, x, 2.0, 0.0)]),
            ],
        );
        // (s1): everything at bandwidth 1/2: A1 ends 4, A2 ends 2, B ends 2, C ends 4.
        let s1 = metrics(&inst, &[4.0, 2.0, 2.0, 4.0]);
        assert_eq!(s1.weighted_sum, 4.0 + 2.0 + 4.0);
        // (s2): priorities A, B, C: A done at 2, B at 2, C at 4.
        let s2 = metrics(&inst, &[2.0, 1.0, 2.0, 4.0]);
        assert_eq!(s2.weighted_sum, 2.0 + 2.0 + 4.0);
        // (s3): optimal: A done at 4? no — C || A2, B: A at 2? The paper:
        // total 4 + 2 + 1 = 7 with coflow A finishing at 4... re-reading:
        // (s3) has A = 4, B = 2, C = 1? 4 + 2 + 1 = 7.
        let s3 = metrics(&inst, &[2.0, 4.0, 2.0, 1.0]);
        assert_eq!(s3.weighted_sum, 4.0 + 2.0 + 1.0);
    }

    #[test]
    fn weights_scale_objective() {
        let mut i = inst();
        i.coflows[0].weight = 10.0;
        let m = metrics(&i, &[1.0, 1.0, 1.0]);
        assert_eq!(m.weighted_sum, 10.0 + 2.0);
    }

    #[test]
    fn response_time_subtracts_release() {
        let mut i = inst();
        // Push coflow 1's release to 3; completion 5 => response 2.
        i.coflows[1].flows[0].release = 3.0;
        let m = metrics(&i, &[4.0, 2.0, 5.0]);
        assert_eq!(m.weighted_sum, 4.0 + 2.0 * 5.0);
        // coflow 0: release 0, completion 4, weight 1 => 4;
        // coflow 1: release 3, completion 5, weight 2 => 4.
        assert_eq!(m.weighted_response, 4.0 + 4.0);
    }

    #[test]
    fn response_never_negative() {
        let mut i = inst();
        i.coflows[0].flows[0].release = 10.0;
        // Completion reported before release (degenerate input): clamp to 0.
        let m = metrics(&i, &[1.0, 1.0, 1.0]);
        assert!(m.weighted_response >= 0.0);
    }

    #[test]
    #[should_panic(expected = "flat-indexed")]
    fn wrong_length_panics() {
        metrics(&inst(), &[1.0]);
    }
}
