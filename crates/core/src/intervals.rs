//! The geometric interval grid of the interval-indexed LPs (§2.1).
//!
//! The time line is divided into `[0, 1], (1, 1+ε], (1+ε, (1+ε)²], ...`
//! with boundaries `τ_0 = 0` and `τ_ℓ = (1+ε)^{ℓ-1}` for `ℓ >= 1`.
//! Interval `ℓ` is `(τ_ℓ, τ_{ℓ+1}]` for `ℓ ∈ {0, 1, ..., L}`.

/// A geometric time grid.
#[derive(Clone, Debug)]
pub struct IntervalGrid {
    /// The `ε` of the geometric growth (interval `ℓ+1` is `(1+ε)` times
    /// longer than interval `ℓ`, for `ℓ >= 1`).
    pub eps: f64,
    /// Boundaries `τ_0 .. τ_{L+1}` (length `L + 2`).
    boundaries: Vec<f64>,
}

impl IntervalGrid {
    /// Builds a grid with growth `1 + eps` covering `[0, horizon]`: the last
    /// boundary `τ_{L+1}` is `>= horizon`.
    ///
    /// # Panics
    /// If `eps <= 0` or `horizon` is not positive/finite.
    pub fn cover(eps: f64, horizon: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "need eps > 0, got {eps}");
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "need positive finite horizon"
        );
        let mut boundaries = vec![0.0, 1.0];
        let growth = 1.0 + eps;
        #[allow(clippy::unwrap_used)]
        // lint: allow(no_panic) — boundaries starts with two elements and only grows
        while *boundaries.last().unwrap() < horizon {
            // lint: allow(no_panic) — boundaries starts with two elements and only grows
            let next = boundaries.last().unwrap() * growth;
            boundaries.push(next);
        }
        Self { eps, boundaries }
    }

    /// Number of intervals `L + 1` (indices `0 ..= L`).
    pub fn count(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// `τ_ℓ`, the lower boundary of interval `ℓ` (0 for `ℓ = 0`).
    #[inline]
    pub fn lower(&self, l: usize) -> f64 {
        self.boundaries[l]
    }

    /// `τ_{ℓ+1}`, the upper boundary of interval `ℓ`.
    #[inline]
    pub fn upper(&self, l: usize) -> f64 {
        self.boundaries[l + 1]
    }

    /// Interval length `τ_{ℓ+1} − τ_ℓ`.
    #[inline]
    pub fn length(&self, l: usize) -> f64 {
        self.upper(l) - self.lower(l)
    }

    /// The interval `(τ_ℓ, τ_{ℓ+1}]` containing time `t > 0`
    /// (t = 0 maps to interval 0).
    pub fn index_of(&self, t: f64) -> usize {
        assert!(t >= 0.0, "negative time {t}");
        // boundaries are strictly increasing from index 1 on.
        match self.boundaries.binary_search_by(|b| b.total_cmp(&t)) {
            Ok(0) => 0,
            // t equals τ_i exactly: belongs to interval i-1 = (τ_{i-1}, τ_i].
            Ok(i) => (i - 1).min(self.count() - 1),
            Err(i) => (i - 1).min(self.count() - 1),
        }
    }

    /// First interval in which a flow released at `r` may make progress:
    /// the smallest `ℓ` with `τ_{ℓ+1} >= r` (the paper moves releases to the
    /// end of the interval in which they occur — Lemma 4's `(1+ε)` loss).
    pub fn first_usable(&self, release: f64) -> usize {
        for l in 0..self.count() {
            if self.upper(l) >= release {
                return l;
            }
        }
        self.count() - 1
    }

    /// All boundaries (read-only).
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn cover_reaches_horizon() {
        let g = IntervalGrid::cover(1.0, 100.0);
        assert!(*g.boundaries().last().unwrap() >= 100.0);
        assert_eq!(g.lower(0), 0.0);
        assert_eq!(g.upper(0), 1.0);
        // eps = 1 doubles: 0, 1, 2, 4, 8, ...
        assert_eq!(g.upper(1), 2.0);
        assert_eq!(g.upper(2), 4.0);
    }

    #[test]
    fn paper_epsilon_geometry() {
        // The paper's optimized ε ≈ 0.5436 (§2.1).
        let g = IntervalGrid::cover(0.5436, 50.0);
        for l in 1..g.count() - 1 {
            let ratio = g.length(l + 1) / g.length(l);
            assert!((ratio - 1.5436).abs() < 1e-9);
        }
    }

    #[test]
    fn index_of_boundaries_and_interiors() {
        let g = IntervalGrid::cover(1.0, 16.0);
        assert_eq!(g.index_of(0.0), 0);
        assert_eq!(g.index_of(0.5), 0);
        assert_eq!(g.index_of(1.0), 0); // (0,1] is interval 0
        assert_eq!(g.index_of(1.5), 1); // (1,2]
        assert_eq!(g.index_of(2.0), 1);
        assert_eq!(g.index_of(2.0001), 2);
        assert_eq!(g.index_of(16.0), g.count() - 1);
    }

    #[test]
    fn first_usable_monotone() {
        let g = IntervalGrid::cover(1.0, 64.0);
        assert_eq!(g.first_usable(0.0), 0);
        assert_eq!(g.first_usable(1.0), 0);
        assert_eq!(g.first_usable(1.1), 1);
        assert_eq!(g.first_usable(3.0), 2); // τ_3 = 4 >= 3
        let mut prev = 0;
        for r in [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 9.0, 33.0] {
            let l = g.first_usable(r);
            assert!(l >= prev);
            assert!(g.upper(l) >= r);
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "eps > 0")]
    fn zero_eps_rejected() {
        IntervalGrid::cover(0.0, 10.0);
    }

    #[test]
    fn lengths_sum_to_last_boundary() {
        let g = IntervalGrid::cover(0.7, 40.0);
        let total: f64 = (0..g.count()).map(|l| g.length(l)).sum();
        assert!((total - g.upper(g.count() - 1)).abs() < 1e-9);
    }
}
