//! Coflow problem instances (§1.1 of the paper).
//!
//! A *flow* `f_j^i` has a source, a destination, a size `σ`, and — unlike
//! prior work, which releases whole coflows — an individual release time
//! `r_j^i`. A *coflow* `F_i` is a set of flows sharing a weight `ω_i`; it
//! completes when its last flow completes. An [`Instance`] bundles the
//! network and the coflow set and is the input to every algorithm in this
//! crate.

use coflow_net::{Graph, NodeId, Path};

/// Identifies a flow as (coflow index, flow index within the coflow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId {
    /// Coflow index in [`Instance::coflows`].
    pub coflow: u32,
    /// Flow index within the coflow.
    pub flow: u32,
}

/// A single flow (connection request in the circuit model, packet in the
/// packet model — for packets, `size` is 1 by convention).
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source node `s`.
    pub src: NodeId,
    /// Destination node `d != s`.
    pub dst: NodeId,
    /// Demand `σ >= 0` (data volume for circuits, 1 for packets).
    pub size: f64,
    /// Release time `r >= 0` at which the flow becomes available.
    pub release: f64,
    /// Optional prescribed path (the "paths are given" problem variants).
    pub path: Option<Path>,
}

impl FlowSpec {
    /// A flow without a prescribed path.
    pub fn new(src: NodeId, dst: NodeId, size: f64, release: f64) -> Self {
        Self {
            src,
            dst,
            size,
            release,
            path: None,
        }
    }

    /// A flow with a prescribed path.
    pub fn with_path(src: NodeId, dst: NodeId, size: f64, release: f64, path: Path) -> Self {
        Self {
            src,
            dst,
            size,
            release,
            path: Some(path),
        }
    }
}

/// A coflow: a weighted set of flows sharing a completion-time goal.
#[derive(Clone, Debug)]
pub struct Coflow {
    /// Weight `ω >= 0` in the objective `Σ ω_k C_k`.
    pub weight: f64,
    /// Member flows.
    pub flows: Vec<FlowSpec>,
}

impl Coflow {
    /// Creates a coflow.
    pub fn new(weight: f64, flows: Vec<FlowSpec>) -> Self {
        Self { weight, flows }
    }

    /// Earliest release among member flows (`inf` when empty).
    pub fn earliest_release(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| f.release)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total demand of member flows.
    pub fn total_size(&self) -> f64 {
        self.flows.iter().map(|f| f.size).sum()
    }
}

/// A complete problem instance: network plus coflows.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The capacitated network `G`.
    pub graph: Graph,
    /// The coflow set `\mathcal{F}`.
    pub coflows: Vec<Coflow>,
    /// Flat-index offsets: flow `(i, j)` has flat index `offsets[i] + j`.
    offsets: Vec<usize>,
}

impl Instance {
    /// Builds an instance and its flat index.
    pub fn new(graph: Graph, coflows: Vec<Coflow>) -> Self {
        let mut offsets = Vec::with_capacity(coflows.len() + 1);
        let mut acc = 0usize;
        for c in &coflows {
            offsets.push(acc);
            acc += c.flows.len();
        }
        offsets.push(acc);
        Self {
            graph,
            coflows,
            offsets,
        }
    }

    /// Appends a coflow, extending the flat index (existing flat indices
    /// are unchanged — the append-only growth the online engine's residual
    /// bookkeeping relies on).
    pub fn push_coflow(&mut self, c: Coflow) {
        let total = *self.offsets.last().unwrap_or(&0);
        self.offsets.push(total + c.flows.len());
        self.coflows.push(c);
    }

    /// Removes every coflow (the flat index becomes empty); the graph is
    /// kept. Retains allocated capacity for re-population.
    pub fn clear_coflows(&mut self) {
        self.coflows.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Total number of flows across all coflows.
    pub fn flow_count(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of coflows.
    pub fn coflow_count(&self) -> usize {
        self.coflows.len()
    }

    /// Flat index of a flow id (stable, contiguous, coflow-major).
    #[inline]
    pub fn flat_index(&self, id: FlowId) -> usize {
        self.offsets[id.coflow as usize] + id.flow as usize
    }

    /// Inverse of [`Instance::flat_index`].
    pub fn id_of_flat(&self, flat: usize) -> FlowId {
        // offsets is sorted; find the owning coflow.
        let coflow = match self.offsets.binary_search(&flat) {
            Ok(mut i) => {
                // Land on the first coflow whose offset equals `flat` and is
                // non-empty (empty coflows share offsets).
                while i + 1 < self.offsets.len() - 1 && self.offsets[i + 1] == flat {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        FlowId {
            coflow: coflow as u32,
            flow: (flat - self.offsets[coflow]) as u32,
        }
    }

    /// The spec of flow `id`.
    #[inline]
    pub fn flow(&self, id: FlowId) -> &FlowSpec {
        &self.coflows[id.coflow as usize].flows[id.flow as usize]
    }

    /// Iterates `(id, flat index, spec)` over all flows, coflow-major.
    pub fn flows(&self) -> impl Iterator<Item = (FlowId, usize, &FlowSpec)> + '_ {
        self.coflows.iter().enumerate().flat_map(move |(i, c)| {
            c.flows.iter().enumerate().map(move |(j, f)| {
                let id = FlowId {
                    coflow: i as u32,
                    flow: j as u32,
                };
                (id, self.flat_index(id), f)
            })
        })
    }

    /// True when every flow has a prescribed path.
    pub fn has_all_paths(&self) -> bool {
        self.flows().all(|(_, _, f)| f.path.is_some())
    }

    /// Largest release time.
    pub fn max_release(&self) -> f64 {
        self.flows().map(|(_, _, f)| f.release).fold(0.0, f64::max)
    }

    /// Total demand of all flows.
    pub fn total_size(&self) -> f64 {
        self.flows().map(|(_, _, f)| f.size).sum()
    }

    /// A safe horizon: every schedule produced by the algorithms in this
    /// crate finishes by `max_release + total_size / min_capacity` (run the
    /// flows one at a time at the bottleneck rate), so interval grids are
    /// built to cover it.
    pub fn horizon(&self) -> f64 {
        let min_cap = self.graph.min_capacity();
        let serial = if min_cap > 0.0 && min_cap.is_finite() {
            self.total_size() / min_cap
        } else {
            self.total_size()
        };
        (self.max_release() + serial).max(1.0)
    }

    /// Structural validation; returns a list of human-readable problems
    /// (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let n = self.graph.node_count();
        for (id, _, f) in self.flows() {
            if f.src.index() >= n || f.dst.index() >= n {
                errs.push(format!("{id:?}: endpoint out of range"));
                continue;
            }
            if f.src == f.dst {
                errs.push(format!("{id:?}: src == dst"));
            }
            // `!(x >= 0)` (rather than `x < 0`) so NaN — which fails every
            // comparison — lands in the same rejection path as negatives.
            if !(f.size >= 0.0 && f.size.is_finite()) {
                errs.push(format!(
                    "{id:?}: bad size {} (must be finite and >= 0)",
                    f.size
                ));
            }
            if !(f.release >= 0.0 && f.release.is_finite()) {
                errs.push(format!(
                    "{id:?}: bad release {} (must be finite and >= 0)",
                    f.release
                ));
            }
            if let Some(p) = &f.path {
                if !self.graph.is_simple_path(p, f.src, f.dst) {
                    errs.push(format!(
                        "{id:?}: prescribed path is not a simple src->dst path"
                    ));
                }
            } else if coflow_net::paths::bfs_shortest_path(&self.graph, f.src, f.dst).is_none() {
                errs.push(format!("{id:?}: destination unreachable"));
            }
        }
        for (i, c) in self.coflows.iter().enumerate() {
            if c.weight < 0.0 || !c.weight.is_finite() {
                errs.push(format!("coflow {i}: bad weight {}", c.weight));
            }
            if c.flows.is_empty() {
                errs.push(format!("coflow {i}: empty"));
            }
        }
        errs
    }

    /// Returns a copy whose flows all carry the given paths.
    pub fn with_paths(&self, paths: &[Path]) -> Instance {
        assert_eq!(paths.len(), self.flow_count());
        let mut out = self.clone();
        for i in 0..out.coflows.len() {
            for j in 0..out.coflows[i].flows.len() {
                let id = FlowId {
                    coflow: i as u32,
                    flow: j as u32,
                };
                let flat = self.flat_index(id);
                out.coflows[i].flows[j].path = Some(paths[flat].clone());
            }
        }
        out
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use coflow_net::topo;

    fn tiny() -> Instance {
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    1.0,
                    vec![FlowSpec::new(x, y, 2.0, 0.0), FlowSpec::new(z, y, 1.0, 0.0)],
                ),
                Coflow::new(2.0, vec![FlowSpec::new(x, z, 1.0, 0.5)]),
            ],
        )
    }

    #[test]
    fn flat_index_roundtrip() {
        let inst = tiny();
        assert_eq!(inst.flow_count(), 3);
        for (id, flat, _) in inst.flows() {
            assert_eq!(inst.flat_index(id), flat);
            assert_eq!(inst.id_of_flat(flat), id);
        }
    }

    #[test]
    fn flows_iterate_coflow_major() {
        let inst = tiny();
        let flats: Vec<usize> = inst.flows().map(|(_, f, _)| f).collect();
        assert_eq!(flats, vec![0, 1, 2]);
    }

    #[test]
    fn stats() {
        let inst = tiny();
        assert_eq!(inst.coflow_count(), 2);
        assert_eq!(inst.total_size(), 4.0);
        assert_eq!(inst.max_release(), 0.5);
        assert!(inst.horizon() >= 4.5);
        assert_eq!(inst.coflows[0].total_size(), 3.0);
        assert_eq!(inst.coflows[0].earliest_release(), 0.0);
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_empty());
    }

    #[test]
    fn validate_catches_bad_flows() {
        let t = topo::triangle();
        let x = t.hosts[0];
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(-1.0, vec![FlowSpec::new(x, x, -2.0, f64::NAN)]),
                Coflow::new(1.0, vec![]),
            ],
        );
        let errs = inst.validate();
        assert!(errs.iter().any(|e| e.contains("src == dst")));
        assert!(errs.iter().any(|e| e.contains("bad size")));
        assert!(errs.iter().any(|e| e.contains("bad release")));
        assert!(errs.iter().any(|e| e.contains("bad weight")));
        assert!(errs.iter().any(|e| e.contains("empty")));
    }

    #[test]
    fn validate_rejects_negative_and_nan_releases() {
        let t = topo::triangle();
        let (x, y) = (t.hosts[0], t.hosts[1]);
        for bad in [-1.0, -1e-9, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let inst = Instance::new(
                t.graph.clone(),
                vec![Coflow::new(1.0, vec![FlowSpec::new(x, y, 1.0, bad)])],
            );
            let errs = inst.validate();
            assert!(
                errs.iter().any(|e| e.contains("bad release")),
                "release {bad} must be rejected, got {errs:?}"
            );
        }
        // NaN size takes the same rejection path.
        let inst = Instance::new(
            t.graph.clone(),
            vec![Coflow::new(1.0, vec![FlowSpec::new(x, y, f64::NAN, 0.0)])],
        );
        assert!(inst.validate().iter().any(|e| e.contains("bad size")));
    }

    #[test]
    fn validate_catches_bad_path() {
        let t = topo::triangle();
        let (x, y, z) = (t.hosts[0], t.hosts[1], t.hosts[2]);
        // Path from x to y but flow claims z -> y.
        let p = coflow_net::paths::bfs_shortest_path(&t.graph, x, y).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(z, y, 1.0, 0.0, p)],
            )],
        );
        assert!(!inst.validate().is_empty());
    }

    #[test]
    fn with_paths_assigns_in_flat_order() {
        let inst = tiny();
        let paths: Vec<Path> = inst
            .flows()
            .map(|(_, _, f)| {
                coflow_net::paths::bfs_shortest_path(&inst.graph, f.src, f.dst).unwrap()
            })
            .collect();
        let with = inst.with_paths(&paths);
        assert!(with.has_all_paths());
        assert!(with.validate().is_empty());
        assert!(!inst.has_all_paths());
    }

    #[test]
    fn empty_instance() {
        let g = Graph::with_nodes(2);
        let inst = Instance::new(g, vec![]);
        assert_eq!(inst.flow_count(), 0);
        assert_eq!(inst.horizon(), 1.0);
        assert!(inst.validate().is_empty());
    }
}
