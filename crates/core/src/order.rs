//! Flow orderings ("the ordering prescribed by a scheduling algorithm",
//! §4.1). Algorithm 1 returns "flow paths and ordering based on c_f"; the
//! fluid simulator serves flows greedily in this order.

use crate::circuit::lp_given::CircuitLpSolution;
use crate::model::Instance;

/// A total priority order over flows (flat indices, highest priority
/// first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Priority {
    /// Flat flow indices from highest to lowest priority.
    pub order: Vec<usize>,
}

impl Priority {
    /// Identity order (flat index = priority).
    pub fn identity(n: usize) -> Self {
        Self {
            order: (0..n).collect(),
        }
    }

    /// Builds an order by sorting flat indices by a key (ascending:
    /// smaller key = higher priority). Ties broken by flat index, so the
    /// result is deterministic.
    pub fn by_key<K: PartialOrd, F: Fn(usize) -> K>(n: usize, key: F) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self { order }
    }

    /// Rank lookup: `rank[flat]` = position in the order (0 = highest).
    pub fn ranks(&self) -> Vec<usize> {
        let mut r = vec![0usize; self.order.len()];
        for (pos, &flat) in self.order.iter().enumerate() {
            r[flat] = pos;
        }
        r
    }

    /// Number of flows ordered.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// The LP-based ordering of Algorithm 1: flows sorted by their coflow's LP
/// completion time `ĉ_{i0}`, then by their own LP completion `ĉ_f`, then by
/// flat index. Serving whole coflows contiguously is what makes the
/// ordering *coflow-aware* (the max-structure of the objective rewards
/// finishing a coflow's last flow early).
pub fn lp_order(instance: &Instance, lp: &CircuitLpSolution) -> Priority {
    let nf = instance.flow_count();
    Priority::by_key(nf, |flat| {
        let id = instance.id_of_flat(flat);
        (
            lp.coflow_completion[id.coflow as usize],
            lp.flow_completion[flat],
        )
    })
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::intervals::IntervalGrid;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::{topo, NodeId};

    #[test]
    fn by_key_sorts_ascending_stable() {
        let p = Priority::by_key(4, |i| [3.0, 1.0, 1.0, 0.5][i]);
        assert_eq!(p.order, vec![3, 1, 2, 0]);
        assert_eq!(p.ranks(), vec![3, 1, 2, 0]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn identity_order() {
        assert_eq!(Priority::identity(3).order, vec![0, 1, 2]);
    }

    #[test]
    fn lp_order_groups_by_coflow() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    1.0,
                    vec![
                        FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0),
                        FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0),
                    ],
                ),
                Coflow::new(1.0, vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)]),
            ],
        );
        // Fake LP: coflow 1 finishes earlier; inside coflow 0, flow 1
        // earlier than flow 0.
        let lp = CircuitLpSolution {
            grid: IntervalGrid::cover(1.0, 8.0),
            x: vec![vec![]; 3],
            flow_completion: vec![5.0, 2.0, 1.0],
            coflow_completion: vec![5.0, 1.0],
            objective: 0.0,
            iterations: 0,
            stats: Default::default(),
        };
        let p = lp_order(&inst, &lp);
        assert_eq!(p.order, vec![2, 1, 0]);
    }
}
