//! The non-blocking switch ("big switch") special case — the setting of
//! Varys \[8\], Qiu–Stein–Zhong \[24\] and the concurrent-open-shop connection
//! discussed in §1.3.
//!
//! On an `n × n` non-blocking switch every flow's path is the unique
//! 2-hop `ingress(src) -> egress(dst)` route, so the §2.1 given-paths
//! machinery applies verbatim; this module provides the instance builder
//! and a convenience wrapper running LP + rounding, demonstrating that the
//! general-topology framework subsumes the classic coflow model.

use crate::circuit::lp_given::{solve_given_paths_lp, CircuitLpSolution, GivenPathsLpConfig};
use crate::circuit::round_given::{round_given_paths, RoundedSchedule, RoundingConfig};
use crate::model::{Coflow, FlowSpec, Instance};
use coflow_lp::LpError;
use coflow_net::{topo, Path};

/// A flow demand on the switch: `(src port, dst port, size, release)`.
pub type PortDemand = (usize, usize, f64, f64);

/// Builds a big-switch instance. Each coflow is `(weight, demands)`;
/// every flow gets its unique 2-hop path attached.
///
/// # Panics
/// If a demand references an out-of-range port or has `src == dst`.
pub fn switch_instance(
    ports: usize,
    port_cap: f64,
    coflows: &[(f64, Vec<PortDemand>)],
) -> Instance {
    let t = topo::big_switch(ports, port_cap);
    let g = t.graph.clone();
    let built: Vec<Coflow> = coflows
        .iter()
        .map(|(w, demands)| {
            let flows = demands
                .iter()
                .map(|&(s, d, size, rel)| {
                    assert!(
                        s < ports && d < ports && s != d,
                        "bad port demand ({s},{d})"
                    );
                    let src = t.hosts[s];
                    let dst = t.hosts[d];
                    #[allow(clippy::unwrap_used)]
                    // lint: allow(no_panic) — every host in the synthetic fabric has an uplink
                    let up = g.find_edge(src, g.edge_dst(g.out_edges(src)[0])).unwrap();
                    // lint: allow(no_panic) — every host in the synthetic fabric has a downlink
                    let down = g.in_edges(dst).first().copied().expect("egress edge");
                    let path = Path::new(vec![up, down]);
                    debug_assert!(g.is_simple_path(&path, src, dst));
                    FlowSpec::with_path(src, dst, size, rel, path)
                })
                .collect();
            Coflow::new(*w, flows)
        })
        .collect();
    Instance::new(g, built)
}

/// Runs the §2.1 pipeline (LP + α-point rounding) on a switch instance.
pub fn schedule_switch(
    instance: &Instance,
    lp_cfg: &GivenPathsLpConfig,
    round_cfg: &RoundingConfig,
) -> Result<(CircuitLpSolution, RoundedSchedule), LpError> {
    let lp = solve_given_paths_lp(instance, lp_cfg)?;
    let rounded = round_given_paths(instance, &lp, round_cfg);
    Ok((lp, rounded))
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_unique_paths() {
        let inst = switch_instance(
            4,
            1.0,
            &[
                (1.0, vec![(0, 1, 2.0, 0.0), (2, 3, 1.0, 0.0)]),
                (2.0, vec![(1, 0, 1.0, 0.5)]),
            ],
        );
        assert!(inst.validate().is_empty(), "{:?}", inst.validate());
        assert!(inst.has_all_paths());
        for (_, _, f) in inst.flows() {
            assert_eq!(f.path.as_ref().unwrap().len(), 2, "switch paths are 2 hops");
        }
    }

    #[test]
    fn pipeline_produces_feasible_schedule() {
        let inst = switch_instance(
            3,
            1.0,
            &[
                (1.0, vec![(0, 1, 1.0, 0.0), (0, 2, 2.0, 0.0)]),
                (1.0, vec![(1, 2, 1.0, 0.0)]),
                (3.0, vec![(2, 0, 1.0, 0.0)]),
            ],
        );
        let (lp, rounded) = schedule_switch(
            &inst,
            &GivenPathsLpConfig::default(),
            &RoundingConfig::default(),
        )
        .unwrap();
        assert!(rounded.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        let lb = crate::bounds::circuit_lower_bound(lp.objective, lp.grid.eps);
        assert!(rounded.metrics.weighted_sum >= lb - 1e-6);
    }

    /// Port contention structure: coflow completion is governed by the most
    /// loaded port (the concurrent-open-shop "machine load" bound). The LP
    /// must see it.
    #[test]
    fn port_load_lower_bound_respected() {
        // Port 0 egress receives 4 units total => makespan >= 4 for the
        // union; single coflow so its completion >= 4.
        let inst = switch_instance(3, 1.0, &[(1.0, vec![(1, 0, 2.0, 0.0), (2, 0, 2.0, 0.0)])]);
        let (lp, _) = schedule_switch(
            &inst,
            &GivenPathsLpConfig::default(),
            &RoundingConfig::default(),
        )
        .unwrap();
        // Interval LP bound: the 4 units must spill into later intervals;
        // the boundary-priced bound comes out ≈ 1.5 with the paper's ε.
        assert!(lp.objective >= 1.4, "objective {}", lp.objective);
    }

    #[test]
    #[should_panic(expected = "bad port demand")]
    fn bad_ports_rejected() {
        switch_instance(2, 1.0, &[(1.0, vec![(0, 0, 1.0, 0.0)])]);
    }
}
