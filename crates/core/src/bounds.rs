//! Lower bounds on the optimal weighted coflow completion time, derived
//! from the interval-indexed LPs.
//!
//! * Lemma 4: for circuit coflows with given paths, `LP* / (1+ε)` lower
//!   bounds the optimum (the `(1+ε)` pays for moving release times to
//!   interval boundaries).
//! * Lemma 5: for circuit coflows without paths (ε = 1), `LP* / 2`.
//! * Lemma 7: for packet coflows, the time-expanded LP value itself.
//!
//! These are what the experiment harness divides by to report *empirical
//! approximation ratios* (the Table 1 counterpart experiment).

/// Lemma 4 / Lemma 5 bound: `LP* / (1 + ε)`.
pub fn circuit_lower_bound(lp_objective: f64, eps: f64) -> f64 {
    lp_objective / (1.0 + eps)
}

/// Lemma 7 bound: the packet LP optimum is itself a lower bound.
pub fn packet_lower_bound(lp_objective: f64) -> f64 {
    lp_objective
}

/// A trivial combinatorial lower bound needing no LP: every coflow must
/// wait for its last release and then push each flow's volume through that
/// flow's best possible bottleneck; weighted sum of those.
///
/// Useful as a sanity floor and to validate the LP bounds (`LP`-based bound
/// must dominate on given-path instances when strengthening is enabled).
pub fn trivial_lower_bound(instance: &crate::model::Instance) -> f64 {
    let g = &instance.graph;
    let mut total = 0.0;
    for (i, c) in instance.coflows.iter().enumerate() {
        let _ = i;
        let mut coflow_c = 0.0_f64;
        for f in &c.flows {
            let bw = match &f.path {
                Some(p) => g.path_bottleneck(p),
                None => {
                    // Best case: the widest out-edge of the source (any
                    // path must leave the source).
                    g.out_edges(f.src)
                        .iter()
                        .map(|&e| g.capacity(e))
                        .fold(0.0, f64::max)
                }
            };
            let t = if bw > 0.0 && bw.is_finite() {
                f.release + f.size / bw
            } else {
                f.release
            };
            coflow_c = coflow_c.max(t);
        }
        total += c.weight * coflow_c;
    }
    total
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::{paths, topo, NodeId};

    #[test]
    fn bound_arithmetic() {
        assert!((circuit_lower_bound(10.0, 1.0) - 5.0).abs() < 1e-12);
        assert!((circuit_lower_bound(10.0, 0.5436) - 10.0 / 1.5436).abs() < 1e-12);
        assert_eq!(packet_lower_bound(7.0), 7.0);
    }

    #[test]
    fn trivial_bound_counts_release_and_bottleneck() {
        let t = topo::line(2, 0.5);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                2.0,
                vec![FlowSpec::with_path(NodeId(0), NodeId(1), 2.0, 1.0, p)],
            )],
        );
        // release 1 + 2/0.5 = 5; weight 2 => 10.
        assert!((trivial_lower_bound(&inst) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_bound_without_paths_uses_widest_out_edge() {
        let t = topo::triangle();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(t.hosts[0], t.hosts[1], 3.0, 0.0)],
            )],
        );
        // Widest out-edge capacity 1 => bound 3.
        assert!((trivial_lower_bound(&inst) - 3.0).abs() < 1e-12);
    }

    /// The LP bound must dominate zero and respect the trivial bound on a
    /// single-flow instance (where the LP with strengthening sees the
    /// bottleneck exactly).
    #[test]
    fn lp_bound_vs_trivial() {
        use crate::circuit::lp_given::{solve_given_paths_lp, GivenPathsLpConfig};
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(NodeId(0), NodeId(1), 4.0, 0.0, p)],
            )],
        );
        let lp = solve_given_paths_lp(
            &inst,
            &GivenPathsLpConfig {
                strengthen: true,
                ..Default::default()
            },
        )
        .unwrap();
        let lb = circuit_lower_bound(lp.objective, lp.grid.eps);
        assert!(lb > 0.0);
        // Strengthened LP includes c >= sigma/bottleneck = 4.
        assert!(lp.objective >= 4.0 - 1e-6);
        let triv = trivial_lower_bound(&inst);
        assert!((triv - 4.0).abs() < 1e-9);
    }
}
