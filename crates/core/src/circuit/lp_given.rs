//! The interval-indexed LP for circuit coflows with **given paths**
//! (§2.1, constraints (4)–(10)).
//!
//! Variables, per flow `f` and usable interval `ℓ`:
//! `x_{fℓ} ∈ [0,1]` — fraction of `f` completed in `(τ_ℓ, τ_{ℓ+1}]`.
//! Per flow: completion `c_f`; per coflow: dummy completion `c_{i0}`
//! (the reformulation's depth-1 in-tree: `c_f <= c_{i0}`, weight on the
//! dummy only).
//!
//! Constraints:
//! * (4) `Σ_ℓ x_{fℓ} = 1`
//! * (5) `Σ_ℓ τ_ℓ x_{fℓ} <= c_f`
//! * (6) `c_f <= c_{i0}`
//! * (7)+(8) capacity per edge and interval:
//!   `Σ_{f ∈ P(e)} σ_f x_{fℓ} / Δ_ℓ <= c(e)` where `Δ_ℓ = τ_{ℓ+1} − τ_ℓ`.
//!   *Deviation:* the paper divides by `τ_ℓ` (Eq. 7), which is 0 for
//!   `ℓ = 0` and looser than the interval length for `ε < 1`; dividing by
//!   the interval length keeps Lemma 4 valid (any schedule still maps into
//!   the LP: the volume a flow can move within an interval is at most
//!   `rate × Δ_ℓ`) and tightens the relaxation.
//! * (9) release: no `x_{fℓ}` variable exists for intervals ending before
//!   `r_f`; additionally `c_f >= r_f` (valid: completions follow releases).
//! * (10) nonnegativity via variable bounds.

use crate::intervals::IntervalGrid;
use crate::model::Instance;
use coflow_lp::{LpError, Model, SolveStats, SolverOptions, VarId, WarmChain};

/// Configuration for the §2.1 LP.
#[derive(Clone, Debug)]
pub struct GivenPathsLpConfig {
    /// Geometric growth `ε` of the interval grid (paper: 0.5436).
    pub eps: f64,
    /// Add the valid inequality `c_f >= r_f + σ_f / bottleneck(p_f)`
    /// (not in the paper; tightens lower bounds; off by default).
    pub strengthen: bool,
    /// Simplex options.
    pub solver: SolverOptions,
}

impl Default for GivenPathsLpConfig {
    fn default() -> Self {
        Self {
            eps: crate::PAPER_EPS,
            strengthen: false,
            solver: SolverOptions::default(),
        }
    }
}

/// Solution of the §2.1 LP (also reused by the path-based §2.2 LP).
#[derive(Clone, Debug)]
pub struct CircuitLpSolution {
    /// The interval grid used.
    pub grid: IntervalGrid,
    /// `x[flat][ℓ]` — completion fractions (0 for unusable intervals).
    pub x: Vec<Vec<f64>>,
    /// LP completion time `c_f` per flow (flat order).
    pub flow_completion: Vec<f64>,
    /// LP coflow completion `c_{i0}`.
    pub coflow_completion: Vec<f64>,
    /// LP objective `Σ ω_i c_{i0}`.
    pub objective: f64,
    /// Simplex pivots.
    pub iterations: usize,
    /// Detailed solver statistics (factorization fill-in, refactorization
    /// count, warm-start outcome, ...).
    pub stats: SolveStats,
}

impl CircuitLpSolution {
    /// The α-interval `h^α_f` of a flow: the earliest interval by whose end
    /// a cumulative α-fraction is completed (§2.1, Rounding).
    pub fn alpha_interval(&self, flat: usize, alpha: f64) -> usize {
        let xs = &self.x[flat];
        let mut acc = 0.0;
        for (l, &v) in xs.iter().enumerate() {
            acc += v;
            if acc >= alpha - 1e-9 {
                return l;
            }
        }
        xs.len().saturating_sub(1)
    }
}

/// Builds and solves the §2.1 LP for an instance whose flows all carry
/// prescribed paths, on the canonical grid covering the instance horizon.
///
/// # Errors
/// [`LpError`] from the solver (the LP is feasible by construction for any
/// valid instance, so errors indicate mis-built instances or solver limits).
///
/// # Panics
/// If some flow lacks a path.
pub fn solve_given_paths_lp(
    instance: &Instance,
    cfg: &GivenPathsLpConfig,
) -> Result<CircuitLpSolution, LpError> {
    let grid = IntervalGrid::cover(cfg.eps, instance.horizon());
    solve_given_paths_lp_on_grid(instance, cfg, grid, &mut WarmChain::new())
}

/// [`solve_given_paths_lp`] on an explicit interval grid, warm-started
/// through `chain`.
///
/// All variables and rows carry names that are stable when the grid *grows*
/// (boundaries are a prefix of the grown grid's boundaries), so threading
/// one [`WarmChain`] through a sequence of growing grids reuses each
/// optimal basis instead of cold-starting — the LP-sequence pattern of the
/// paper's algorithms.
///
/// # Panics
/// If some flow lacks a path.
pub fn solve_given_paths_lp_on_grid(
    instance: &Instance,
    cfg: &GivenPathsLpConfig,
    grid: IntervalGrid,
    chain: &mut WarmChain,
) -> Result<CircuitLpSolution, LpError> {
    assert!(
        instance.has_all_paths(),
        "given-paths LP requires a path on every flow"
    );
    let nl = grid.count();
    let nf = instance.flow_count();
    let mut m = Model::new();

    // Completion variables.
    let c_cof: Vec<VarId> = instance
        .coflows
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let lb = c.earliest_release();
            m.add_var(
                c.weight,
                if lb.is_finite() { lb } else { 0.0 },
                f64::INFINITY,
                format!("C{i}"),
            )
        })
        .collect();
    let mut c_flow: Vec<VarId> = Vec::with_capacity(nf);
    let mut x: Vec<Vec<Option<VarId>>> = vec![vec![None; nl]; nf];

    for (id, flat, spec) in instance.flows() {
        let mut lb = spec.release;
        if cfg.strengthen {
            let path = spec
                .path
                .as_ref()
                .ok_or_else(|| LpError::Numerical(format!("flow {flat} has no prescribed path")))?;
            let bottleneck = instance.graph.path_bottleneck(path);
            if bottleneck.is_finite() && bottleneck > 0.0 {
                lb += spec.size / bottleneck;
            }
        }
        let cf = m.add_var(0.0, lb, f64::INFINITY, format!("c{flat}"));
        c_flow.push(cf);
        let first = grid.first_usable(spec.release);
        for (l, slot) in x[flat].iter_mut().enumerate().skip(first) {
            *slot = Some(m.add_unit(0.0, format!("x{flat}:{l}")));
        }
        // (4) completion fractions sum to one.
        #[allow(clippy::unwrap_used)]
        // lint: allow(no_panic) — x[flat][l] is Some for every l >= first (loop above)
        let terms: Vec<_> = (first..nl).map(|l| (x[flat][l].unwrap(), 1.0)).collect();
        m.add_row_named(coflow_lp::Cmp::Eq, 1.0, &terms, format!("sum{flat}"));
        // (5) completion definition.
        #[allow(clippy::unwrap_used)]
        let mut terms: Vec<_> = (first..nl)
            // lint: allow(no_panic) — x[flat][l] is Some for every l >= first (loop above)
            .map(|l| (x[flat][l].unwrap(), grid.lower(l)))
            .collect();
        terms.push((cf, -1.0));
        m.add_row_named(coflow_lp::Cmp::Le, 0.0, &terms, format!("cmp{flat}"));
        // (6) dummy-flow precedence.
        m.add_row_named(
            coflow_lp::Cmp::Le,
            0.0,
            &[(cf, 1.0), (c_cof[id.coflow as usize], -1.0)],
            format!("prec{flat}"),
        );
    }

    // (7)+(8) capacity rows: group flows by edge.
    let g = &instance.graph;
    let mut edge_flows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); g.edge_count()];
    for (_, flat, spec) in instance.flows() {
        if spec.size <= 0.0 {
            continue;
        }
        let path = spec
            .path
            .as_ref()
            .ok_or_else(|| LpError::Numerical(format!("flow {flat} has no prescribed path")))?;
        for &e in path.edges.iter() {
            edge_flows[e.index()].push((flat, spec.size));
        }
    }
    for (ei, users) in edge_flows.iter().enumerate() {
        if users.is_empty() {
            continue;
        }
        let cap = g.capacity(coflow_net::EdgeId(ei as u32));
        #[allow(clippy::needless_range_loop)]
        for l in 0..nl {
            let len = grid.length(l);
            let terms: Vec<_> = users
                .iter()
                .filter_map(|&(flat, size)| x[flat][l].map(|v| (v, size / len)))
                .collect();
            // Redundant-row pruning: x ∈ [0,1], so the row can only bind if
            // the coefficients could sum past the capacity.
            let max_lhs: f64 = terms.iter().map(|&(_, c)| c).sum();
            if !terms.is_empty() && max_lhs > cap {
                m.add_row_named(coflow_lp::Cmp::Le, cap, &terms, format!("cap{ei}:{l}"));
            }
        }
    }

    let sol = chain.solve(&m, &cfg.solver)?;

    let xs: Vec<Vec<f64>> = x
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.map(|id| sol.value(id)).unwrap_or(0.0))
                .collect()
        })
        .collect();
    Ok(CircuitLpSolution {
        grid,
        x: xs,
        flow_completion: c_flow.iter().map(|&v| sol.value(v)).collect(),
        coflow_completion: c_cof.iter().map(|&v| sol.value(v)).collect(),
        objective: sol.objective,
        iterations: sol.iterations,
        stats: sol.stats,
    })
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::{paths, topo, NodeId};

    /// Single unit flow on a unit edge: LP must say completion 1
    /// (it fits entirely in interval 0 = (0,1]).
    #[test]
    fn single_flow_completes_in_first_interval() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(NodeId(0), NodeId(1), 1.0, 0.0, p)],
            )],
        );
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        // x mass should sit entirely in interval 0; c >= 0 only is implied,
        // so the LP reports c = 0 (interval lower boundary): the classic
        // interval-LP slack. Objective is a *lower bound*.
        let total: f64 = lp.x[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(lp.objective <= 1.0 + 1e-6);
        assert_eq!(lp.alpha_interval(0, 0.5), 0);
    }

    /// Two unit flows sharing one unit edge: they cannot both finish in
    /// interval 0 — capacity allows 1 unit of volume in (0,1].
    #[test]
    fn capacity_forces_spill_to_later_intervals() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let mk = |_| FlowSpec::with_path(NodeId(0), NodeId(1), 1.0, 0.0, p.clone());
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(1.0, vec![mk(0)]), Coflow::new(1.0, vec![mk(1)])],
        );
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        // Volume in interval 0 across both flows is at most len_0 * cap = 1.
        let v0 = lp.x[0][0] + lp.x[1][0];
        assert!(v0 <= 1.0 + 1e-6, "interval-0 volume {v0} exceeds capacity");
        // Total objective must exceed the single-flow bound.
        assert!(lp.objective >= 1.0 - 1e-6, "objective {}", lp.objective);
    }

    /// Release times forbid early intervals.
    #[test]
    fn release_times_zero_out_early_intervals() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(NodeId(0), NodeId(1), 1.0, 5.0, p)],
            )],
        );
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        let first = lp.grid.first_usable(5.0);
        for l in 0..first {
            assert_eq!(lp.x[0][l], 0.0, "interval {l} before release must be empty");
        }
        assert!(lp.flow_completion[0] >= 5.0 - 1e-6, "c_f >= r_f");
    }

    /// Coflow completion dominates member flows (constraint 6).
    #[test]
    fn coflow_completion_dominates() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![
                    FlowSpec::with_path(NodeId(0), NodeId(1), 3.0, 0.0, p.clone()),
                    FlowSpec::with_path(NodeId(0), NodeId(1), 1.0, 0.0, p),
                ],
            )],
        );
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        for f in 0..2 {
            assert!(lp.flow_completion[f] <= lp.coflow_completion[0] + 1e-6);
        }
        // 4 units through a unit edge: completion at least 4 in any
        // schedule. The LP prices completions at interval *lower*
        // boundaries, so its bound is weaker; with ε ≈ 0.5436 the geometry
        // gives ≈ 1.527 here.
        assert!(
            lp.coflow_completion[0] >= 1.5,
            "got {}",
            lp.coflow_completion[0]
        );
    }

    /// Weights steer the LP: heavy coflow should finish earlier.
    #[test]
    fn weights_prioritize() {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let mk = |w: f64| {
            Coflow::new(
                w,
                vec![FlowSpec::with_path(
                    NodeId(0),
                    NodeId(1),
                    2.0,
                    0.0,
                    p.clone(),
                )],
            )
        };
        let inst = Instance::new(t.graph, vec![mk(10.0), mk(0.1)]);
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        assert!(
            lp.coflow_completion[0] <= lp.coflow_completion[1] + 1e-6,
            "heavy coflow should not finish later: {} vs {}",
            lp.coflow_completion[0],
            lp.coflow_completion[1]
        );
    }

    /// The strengthen option only increases (tightens) the lower bound.
    #[test]
    fn strengthening_tightens() {
        let t = topo::line(2, 0.5); // slow edge: bottleneck matters
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::with_path(NodeId(0), NodeId(1), 4.0, 0.0, p)],
            )],
        );
        let base = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        let strong = solve_given_paths_lp(
            &inst,
            &GivenPathsLpConfig {
                strengthen: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(strong.objective >= base.objective - 1e-9);
        // σ/bottleneck = 8: strengthened LP must see at least that.
        assert!(strong.objective >= 8.0 - 1e-6);
    }

    #[test]
    fn alpha_interval_accumulates() {
        let sol = CircuitLpSolution {
            grid: IntervalGrid::cover(1.0, 8.0),
            x: vec![vec![0.25, 0.25, 0.5, 0.0]],
            flow_completion: vec![0.0],
            coflow_completion: vec![0.0],
            objective: 0.0,
            iterations: 0,
            stats: SolveStats::default(),
        };
        assert_eq!(sol.alpha_interval(0, 0.25), 0);
        assert_eq!(sol.alpha_interval(0, 0.5), 1);
        assert_eq!(sol.alpha_interval(0, 0.75), 2);
        assert_eq!(sol.alpha_interval(0, 1.0), 2);
    }

    /// A growing interval grid warm-started through one [`WarmChain`] must
    /// reproduce the cold objectives while spending strictly fewer total
    /// iterations than cold-starting every solve.
    #[test]
    fn warm_chain_on_growing_grids_matches_cold() {
        let t = topo::line(3, 1.0);
        let p01 = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(2)).unwrap();
        let p12 = paths::bfs_shortest_path(&t.graph, NodeId(1), NodeId(2)).unwrap();
        let inst = Instance::new(
            t.graph,
            vec![
                Coflow::new(
                    2.0,
                    vec![FlowSpec::with_path(NodeId(0), NodeId(2), 3.0, 0.0, p01)],
                ),
                Coflow::new(
                    1.0,
                    vec![FlowSpec::with_path(NodeId(1), NodeId(2), 2.0, 1.0, p12)],
                ),
            ],
        );
        let cfg = GivenPathsLpConfig::default();
        let h = inst.horizon();
        let scales = [1.0, 2.0, 4.0];

        let mut chain = WarmChain::new();
        let mut warm_sols = Vec::new();
        for s in scales {
            let grid = IntervalGrid::cover(cfg.eps, h * s);
            warm_sols.push(solve_given_paths_lp_on_grid(&inst, &cfg, grid, &mut chain).unwrap());
        }
        // Every solve after the first attempted (and took) the warm start.
        assert_eq!(chain.stats().warm_attempted, scales.len() - 1);
        assert_eq!(chain.stats().warm_used, scales.len() - 1);

        let mut cold_total = 0usize;
        for (s, warm) in scales.iter().zip(&warm_sols) {
            let grid = IntervalGrid::cover(cfg.eps, h * s);
            let cold =
                solve_given_paths_lp_on_grid(&inst, &cfg, grid, &mut WarmChain::new()).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "scale {s}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            cold_total += cold.iterations;
        }
        assert!(
            chain.stats().total_iterations < cold_total,
            "warm chain {} iters vs cold {}",
            chain.stats().total_iterations,
            cold_total
        );
    }

    #[test]
    #[should_panic(expected = "requires a path")]
    fn missing_paths_panic() {
        let t = topo::line(2, 1.0);
        let inst = Instance::new(
            t.graph,
            vec![Coflow::new(
                1.0,
                vec![FlowSpec::new(NodeId(0), NodeId(1), 1.0, 0.0)],
            )],
        );
        let _ = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default());
    }
}
