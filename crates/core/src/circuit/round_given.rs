//! α-point rounding for circuit coflows with given paths (§2.1, Rounding).
//!
//! Each connection request is scheduled to run *entirely* inside the `D`-th
//! interval after its α-interval. Within a target interval, every member
//! flow gets a constant bandwidth proportional to its size; if the summed
//! loads exceed an edge capacity the whole interval is *stretched* by the
//! overload factor — this is the same scale-bandwidth/stretch-time step the
//! paper applies after rounding, and it makes the produced schedule feasible
//! **by construction** (the checker in [`crate::schedule`] verifies it in
//! tests). The theory (Eq. 12–14) bounds the stretch by a constant
//! (≈ 17.54 total with `α = 1/2`, `D = 3`, `ε ≈ 0.5436`); we also report
//! the stretch actually incurred.

use crate::circuit::lp_given::CircuitLpSolution;
use crate::model::Instance;
use crate::objective::{metrics, Metrics};
use crate::schedule::{CircuitSchedule, FlowSchedule, Segment};

/// Rounding parameters (defaults are the paper's optimized constants).
#[derive(Clone, Debug)]
pub struct RoundingConfig {
    /// The α of the α-point (paper: 0.5).
    pub alpha: f64,
    /// Displacement `D >= 1` (paper: 3).
    pub displacement: usize,
}

impl Default for RoundingConfig {
    fn default() -> Self {
        Self {
            alpha: crate::PAPER_ALPHA,
            displacement: crate::PAPER_DISPLACEMENT,
        }
    }
}

/// Output of the rounding step.
#[derive(Clone, Debug)]
pub struct RoundedSchedule {
    /// The feasible schedule.
    pub schedule: CircuitSchedule,
    /// α-interval per flow (flat order).
    pub alpha_interval: Vec<usize>,
    /// Target interval (`α-interval + D`) per flow.
    pub target_interval: Vec<usize>,
    /// Largest per-interval stretch factor applied (1.0 = no stretching).
    pub max_stretch: f64,
    /// Objective metrics of the realized schedule.
    pub metrics: Metrics,
}

/// `τ_k` for an arbitrary (possibly beyond-grid) index under growth `1+ε`.
fn tau(eps: f64, k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        (1.0 + eps).powi(k as i32 - 1)
    }
}

/// Rounds an LP solution into a feasible [`CircuitSchedule`].
///
/// # Panics
/// If the instance lacks paths, or `cfg.displacement == 0` (displacement
/// `>= 1` is required for release times to be respected: the target window
/// starts at `τ_{h+D} >= τ_{h+1} >= r_f`).
pub fn round_given_paths(
    instance: &Instance,
    lp: &CircuitLpSolution,
    cfg: &RoundingConfig,
) -> RoundedSchedule {
    assert!(instance.has_all_paths());
    assert!(cfg.displacement >= 1, "displacement must be >= 1");
    assert!(cfg.alpha > 0.0 && cfg.alpha <= 1.0);
    let eps = lp.grid.eps;
    let nf = instance.flow_count();

    let mut alpha_interval = vec![0usize; nf];
    let mut target_interval = vec![0usize; nf];
    let mut max_k = 0usize;
    for flat in 0..nf {
        let h = lp.alpha_interval(flat, cfg.alpha);
        alpha_interval[flat] = h;
        target_interval[flat] = h + cfg.displacement;
        max_k = max_k.max(target_interval[flat]);
    }

    // Group flows by target interval.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max_k + 1];
    for flat in 0..nf {
        groups[target_interval[flat]].push(flat);
    }

    let g = &instance.graph;
    #[allow(clippy::unwrap_used)]
    let mut schedule = CircuitSchedule {
        flows: instance
            .flows()
            .map(|(_, _, spec)| FlowSchedule {
                // lint: allow(no_panic) — has_all_paths() is asserted at function entry
                path: spec.path.clone().unwrap(),
                segments: Vec::new(),
            })
            .collect(),
    };
    let mut max_stretch = 1.0_f64;
    let mut cursor = 0.0_f64;

    let mut edge_load = vec![0.0_f64; g.edge_count()];
    for (k, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let len = tau(eps, k + 1) - tau(eps, k);
        // Edge loads at the nominal per-flow rate σ/len.
        edge_load.fill(0.0);
        for &flat in group {
            let spec = instance.flow(instance.id_of_flat(flat));
            if spec.size <= 0.0 {
                continue;
            }
            let rate = spec.size / len;
            for &e in schedule.flows[flat].path.edges.iter() {
                edge_load[e.index()] += rate;
            }
        }
        let mut stretch = 1.0_f64;
        for e in g.edges() {
            let cap = g.capacity(e);
            if cap > 0.0 {
                stretch = stretch.max(edge_load[e.index()] / cap);
            } else if edge_load[e.index()] > 0.0 {
                // lint: allow(no_panic) — a loaded zero-capacity edge is a malformed instance
                panic!("flow routed through zero-capacity edge {e:?}");
            }
        }
        max_stretch = max_stretch.max(stretch);

        let start = tau(eps, k).max(cursor);
        let duration = len * stretch;
        let end = start + duration;
        for &flat in group {
            let spec = instance.flow(instance.id_of_flat(flat));
            let rate = spec.size / duration;
            debug_assert!(
                start >= spec.release - 1e-9,
                "window starts before release: D >= 1 should prevent this"
            );
            schedule.flows[flat]
                .segments
                .push(Segment { start, end, rate });
        }
        cursor = end;
    }

    let completions = schedule.completion_times(instance);
    let metrics = metrics(instance, &completions);
    RoundedSchedule {
        schedule,
        alpha_interval,
        target_interval,
        max_stretch,
        metrics,
    }
}

#[cfg(test)]
// Unit tests assert exact expected values; strict float equality is the point.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::circuit::lp_given::{solve_given_paths_lp, GivenPathsLpConfig};
    use crate::model::{Coflow, FlowSpec, Instance};
    use coflow_net::{paths, topo, NodeId};

    fn solve_and_round(inst: &Instance) -> RoundedSchedule {
        let lp = solve_given_paths_lp(inst, &GivenPathsLpConfig::default()).unwrap();
        round_given_paths(inst, &lp, &RoundingConfig::default())
    }

    fn line_inst(sizes_releases: &[(f64, f64)]) -> Instance {
        let t = topo::line(2, 1.0);
        let p = paths::bfs_shortest_path(&t.graph, NodeId(0), NodeId(1)).unwrap();
        let coflows = sizes_releases
            .iter()
            .map(|&(s, r)| {
                Coflow::new(
                    1.0,
                    vec![FlowSpec::with_path(NodeId(0), NodeId(1), s, r, p.clone())],
                )
            })
            .collect();
        Instance::new(t.graph, coflows)
    }

    #[test]
    fn rounded_schedule_is_feasible() {
        let inst = line_inst(&[(1.0, 0.0), (2.0, 0.0), (0.5, 1.0)]);
        let r = solve_and_round(&inst);
        let v = r.schedule.check(&inst, 1e-6, 1e-6);
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(r.max_stretch >= 1.0);
    }

    #[test]
    fn single_flow_cost_within_constant_of_lp() {
        let inst = line_inst(&[(1.0, 0.0)]);
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        let r = round_given_paths(&inst, &lp, &RoundingConfig::default());
        assert!(r.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        // Optimal is 1.0; theory bound ~17.54 of LP LB; our construction
        // lands the flow in interval h+3 so completion <= tau(4+1) ~ 5.7.
        assert!(
            r.metrics.weighted_sum <= 17.54,
            "got {}",
            r.metrics.weighted_sum
        );
        assert!(r.metrics.weighted_sum >= 1.0 - 1e-9);
    }

    #[test]
    fn stretch_reported_when_overloaded() {
        // 8 unit flows on one unit edge all with alpha-interval near 0:
        // the LP spreads them, but identical flows may collapse into the
        // same target interval and require stretching; in all cases the
        // schedule stays feasible and stretch is finite.
        let inst = line_inst(&[(1.0, 0.0); 8]);
        let r = solve_and_round(&inst);
        assert!(r.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        assert!(r.max_stretch.is_finite());
    }

    #[test]
    fn respects_release_times() {
        let inst = line_inst(&[(1.0, 7.0)]);
        let r = solve_and_round(&inst);
        assert!(r.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        let c = r.schedule.completion_times(&inst)[0];
        assert!(c >= 7.0, "completion {c} before release");
    }

    #[test]
    fn windows_never_overlap() {
        let inst = line_inst(&[(1.0, 0.0), (4.0, 0.0), (2.0, 2.0), (1.0, 5.0)]);
        let r = solve_and_round(&inst);
        // Collect all distinct windows and check pairwise disjointness
        // (the cursor construction sequentializes them).
        let mut windows: Vec<(f64, f64)> = r
            .schedule
            .flows
            .iter()
            .flat_map(|f| f.segments.iter().map(|s| (s.start, s.end)))
            .collect();
        windows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        windows.dedup();
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-9, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn alpha_one_uses_full_mass_interval() {
        let inst = line_inst(&[(1.0, 0.0), (1.0, 0.0)]);
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        let r1 = round_given_paths(
            &inst,
            &lp,
            &RoundingConfig {
                alpha: 1.0,
                displacement: 1,
            },
        );
        assert!(r1.schedule.check(&inst, 1e-6, 1e-6).is_empty());
        for flat in 0..2 {
            assert!(r1.alpha_interval[flat] >= lp.alpha_interval(flat, 0.5));
        }
    }

    #[test]
    #[should_panic(expected = "displacement must be >= 1")]
    fn zero_displacement_rejected() {
        let inst = line_inst(&[(1.0, 0.0)]);
        let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
        let _ = round_given_paths(
            &inst,
            &lp,
            &RoundingConfig {
                alpha: 0.5,
                displacement: 0,
            },
        );
    }

    /// End-to-end approximation sanity on a batch of mixed instances:
    /// cost(rounded) / LP-lower-bound stays within the proven constant.
    #[test]
    fn approximation_ratio_within_theory() {
        for (sizes, eps_expect) in [
            (vec![(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)], 17.54),
            (vec![(5.0, 0.0), (1.0, 4.0)], 17.54),
            (vec![(0.5, 0.0), (0.5, 0.0), (0.5, 0.0), (0.5, 0.0)], 17.54),
        ] {
            let inst = line_inst(&sizes);
            let lp = solve_given_paths_lp(&inst, &GivenPathsLpConfig::default()).unwrap();
            let r = round_given_paths(&inst, &lp, &RoundingConfig::default());
            assert!(r.schedule.check(&inst, 1e-6, 1e-6).is_empty());
            let lb = crate::bounds::circuit_lower_bound(lp.objective, lp.grid.eps);
            if lb > 1e-9 {
                let ratio = r.metrics.weighted_sum / lb;
                assert!(
                    ratio <= eps_expect + 1e-6,
                    "ratio {ratio} exceeds theory bound for {sizes:?}"
                );
            }
        }
    }
}
